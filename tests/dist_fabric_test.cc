// Distributed fabric, process layer: real aptrace_shardd daemons (forked
// via ShardFleet from the APTRACE_SHARDD_BIN compile definition) behind a
// coordinator-side store whose shards are RemoteShardBackends. The
// tentpole invariant: a graph computed over the distributed fabric is
// byte-identical to the in-process --shards=N store and to the monolithic
// store — both backends, any scan-thread count. The degraded-mode
// contract: SIGKILLing one daemon mid-query fails the session with a
// typed DST-E00x detail, never a hang.

#include <signal.h>

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.h"
#include "dist/dist_error.h"
#include "dist/fleet.h"
#include "dist/remote_backend.h"
#include "dist/shard_client.h"
#include "graph/json_writer.h"
#include "tests/random_trace_util.h"
#include "util/clock.h"

namespace aptrace::dist {
namespace {

constexpr size_t kFleetShards = 4;

FleetOptions MakeFleetOptions(StorageBackendKind backend) {
  FleetOptions options;
  options.shardd_bin = APTRACE_SHARDD_BIN;
  options.shards = kFleetShards;
  options.backend = backend;
  // Match MakeRandomTrace's layout knobs so the remote shards produce the
  // same probe/partition structure as the in-process reference.
  if (backend == StorageBackendKind::kColumnar) {
    options.extra_args = {"--segment-rows=64"};
  } else {
    options.extra_args = {"--partition-micros=500"};
  }
  return options;
}

ShardClientOptions FabricClientOptions() {
  ShardClientOptions options;
  options.deadline_micros = 5'000'000;
  options.max_attempts = 2;
  options.retry_backoff_micros = 5'000;
  return options;
}

/// The same random trace, but stored in the distributed fabric: every
/// store shard is a RemoteShardBackend talking to one fleet daemon.
RandomTrace MakeDistributedTrace(uint64_t seed, size_t num_events,
                                 StorageBackendKind backend,
                                 const ShardFleet& fleet) {
  std::vector<ShardEndpoint> endpoints;
  for (const ShardProcess& p : fleet.shards()) {
    auto ep = ParseShardEndpoint(p.endpoint);
    EXPECT_TRUE(ep.ok()) << ep.status();
    endpoints.push_back(std::move(ep).value());
  }
  return MakeRandomTrace(
      seed, num_events, backend, kFleetShards,
      [endpoints](EventStoreOptions& options) {
        options.dist_fanout_threads = kFleetShards;
        options.shard_backend_factory =
            [endpoints](size_t shard, const EventStoreOptions& o)
            -> std::unique_ptr<StorageBackend> {
          auto client = std::make_shared<ShardClient>(
              endpoints[shard], static_cast<uint32_t>(shard), o.backend,
              FabricClientOptions());
          return std::make_unique<RemoteShardBackend>(
              std::move(client), o.backend, o.cost_model);
        };
      });
}

std::string RunGraph(const RandomTrace& t, const std::string& script,
                     int scan_threads) {
  SimClock clock;
  SessionOptions options;
  options.scan_threads = scan_threads;
  Session session(t.store.get(), &clock, options);
  EXPECT_TRUE(session.Start(script, t.alert).ok());
  auto reason = session.Step();
  EXPECT_TRUE(reason.ok()) << reason.status();
  EXPECT_TRUE(session.Finish(/*prune_to_matched_paths=*/true).ok());
  std::ostringstream os;
  WriteGraphJson(session.graph(), t.store->catalog(), os);
  return os.str();
}

class DistFabric : public testing::TestWithParam<StorageBackendKind> {};

TEST_P(DistFabric, GraphBytesIdenticalToInProcessAndMonolithic) {
  const StorageBackendKind backend = GetParam();
  auto fleet = ShardFleet::Launch(MakeFleetOptions(backend));
  ASSERT_TRUE(fleet.ok()) << fleet.status();

  const uint64_t seed = 97;
  const size_t num_events = 400;
  const RandomTrace mono = MakeRandomTrace(seed, num_events, backend, 1);
  const RandomTrace sharded =
      MakeRandomTrace(seed, num_events, backend, kFleetShards);
  const RandomTrace dist =
      MakeDistributedTrace(seed, num_events, backend, *fleet.value());
  ASSERT_EQ(dist.store->NumEvents(), mono.store->NumEvents());

  const std::string base = UnconstrainedScript(mono);
  const std::vector<std::string> variants = {
      base,
      base + " where file.path != \"*.dll\"",
      base + " where hop <= 3",
  };
  for (const std::string& script : variants) {
    for (const int threads : {1, 4}) {
      const std::string want = RunGraph(mono, script, threads);
      EXPECT_EQ(RunGraph(sharded, script, threads), want)
          << "in-process sharded drifted: threads=" << threads
          << " script=" << script;
      EXPECT_EQ(RunGraph(dist, script, threads), want)
          << "distributed drifted: threads=" << threads
          << " script=" << script;
    }
  }
}

TEST_P(DistFabric, KilledShardFailsQueryWithTypedErrorNotAHang) {
  const StorageBackendKind backend = GetParam();
  auto fleet = ShardFleet::Launch(MakeFleetOptions(backend));
  ASSERT_TRUE(fleet.ok()) << fleet.status();

  const RandomTrace dist =
      MakeDistributedTrace(11, 300, backend, *fleet.value());
  const std::string script = UnconstrainedScript(dist);

  // A healthy fleet answers first, proving the store works before the
  // fault is injected.
  EXPECT_FALSE(RunGraph(dist, script, 4).empty());

  // SIGKILL one daemon: no drain, its connections die mid-stream. The
  // next query must come back as a typed degraded error within the
  // client's bounded retry budget.
  ASSERT_TRUE(fleet.value()->Kill(2, SIGKILL).ok());

  SimClock clock;
  SessionOptions options;
  options.scan_threads = 4;
  Session session(dist.store.get(), &clock, options);
  ASSERT_TRUE(session.Start(script, dist.alert).ok());
  const auto reason = session.Step();
  ASSERT_FALSE(reason.ok())
      << "query over a killed shard should fail, not succeed";
  EXPECT_NE(reason.status().message().find("DST-"), std::string::npos)
      << reason.status();

  // Starting a fresh session without a start override makes the
  // start-point resolution itself scan the store — that path must also
  // come back as a typed Status, not an escaped exception (an uncaught
  // throw in the daemon kills the process).
  Session fresh(dist.store.get(), &clock, options);
  const Status start = fresh.Start(script, std::nullopt);
  ASSERT_FALSE(start.ok())
      << "start-point scan over a killed shard should fail";
  EXPECT_NE(start.message().find("DST-"), std::string::npos) << start;
}

TEST_P(DistFabric, ColdStoreRejectsIdentityMismatchedFleet) {
  const StorageBackendKind backend = GetParam();
  auto fleet = ShardFleet::Launch(MakeFleetOptions(backend));
  ASSERT_TRUE(fleet.ok()) << fleet.status();

  // Swap two endpoints: shard 0's client dials the daemon that announces
  // itself as shard 1. The handshake must refuse with DST-E004 before
  // any row crosses.
  std::vector<ShardEndpoint> endpoints;
  for (const ShardProcess& p : fleet.value()->shards()) {
    auto ep = ParseShardEndpoint(p.endpoint);
    ASSERT_TRUE(ep.ok());
    endpoints.push_back(std::move(ep).value());
  }
  std::swap(endpoints[0], endpoints[1]);
  ShardClient client(endpoints[0], 0, backend, FabricClientOptions());
  try {
    client.Call("shard.hello");
    FAIL() << "expected DistError";
  } catch (const DistError& e) {
    EXPECT_EQ(e.code(), std::string(kDistErrIdentity)) << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, DistFabric,
                         testing::Values(StorageBackendKind::kRow,
                                         StorageBackendKind::kColumnar),
                         [](const auto& info) {
                           return std::string(
                               StorageBackendName(info.param));
                         });

}  // namespace
}  // namespace aptrace::dist
