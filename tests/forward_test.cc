// Forward (impact) tracking: the extension analysis that shares the
// engine with backward tracking but follows the data flow. Covers the
// forward window generator, both engines, state propagation, and the
// forward/backward duality on the mini trace.

#include <gtest/gtest.h>

#include <set>

#include "bdl/analyzer.h"
#include "core/baseline_executor.h"
#include "core/executor.h"
#include "tests/test_trace.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

Event Ev(EventId id, ObjectId subject, ObjectId object, TimeMicros t) {
  Event e;
  e.id = id;
  e.subject = subject;
  e.object = object;
  e.timestamp = t;
  e.action = ActionType::kWrite;
  e.direction = FlowDirection::kSubjectToObject;
  return e;
}

// ------------------------------------------------ forward windows

TEST(GenExeWindowsForwardTest, GeometricLengthsForward) {
  // Event at t=0, range end 256: sigma = 255/255 = 1; windows 1,2,...,128
  // starting at t=1.
  const Event e = Ev(1, 10, 20, 0);
  const auto windows = GenExeWindowsForward(e, 256, 256, 8);
  ASSERT_EQ(windows.size(), 8u);
  TimeMicros expected_len = 1;
  TimeMicros expected_begin = 1;
  for (const auto& w : windows) {
    EXPECT_EQ(w.begin, expected_begin);
    EXPECT_EQ(w.finish - w.begin, expected_len);
    EXPECT_EQ(w.frontier, 20u);  // flow destination is the frontier
    EXPECT_EQ(w.priority_key, -w.begin);
    expected_begin = w.finish;
    expected_len *= 2;
  }
}

TEST(GenExeWindowsForwardTest, TilesExactlyToEnd) {
  const Event e = Ev(1, 10, 20, 1234);
  const auto windows = GenExeWindowsForward(e, 1000003, 1000003, 8);
  ASSERT_FALSE(windows.empty());
  EXPECT_EQ(windows.front().begin, 1235);
  for (size_t i = 1; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].begin, windows[i - 1].finish);
  }
  EXPECT_EQ(windows.back().finish, 1000003);
}

TEST(GenExeWindowsForwardTest, ClipDropsCoveredFuture) {
  // The object's future from t=500 on is already scheduled: only
  // (100, 500) remains.
  const Event e = Ev(1, 10, 20, 100);
  const auto windows = GenExeWindowsForward(e, 1000, 500, 8);
  ASSERT_FALSE(windows.empty());
  EXPECT_EQ(windows.front().begin, 101);
  EXPECT_EQ(windows.back().finish, 500);
  for (const auto& w : windows) EXPECT_LE(w.finish, 500);
}

TEST(GenExeWindowsForwardTest, EmptyWhenFullyCovered) {
  const Event e = Ev(1, 10, 20, 100);
  EXPECT_TRUE(GenExeWindowsForward(e, 1000, 101, 8).empty());
  EXPECT_TRUE(GenExeWindowsForward(e, 100, 100, 8).empty());  // at the end
}

TEST(GenExeWindowsForwardTest, PriorityPrefersEarlierWindows) {
  const Event e = Ev(1, 10, 20, 0);
  const auto windows = GenExeWindowsForward(e, 1000, 1000, 4);
  ASSERT_GE(windows.size(), 2u);
  ExecWindowLess less;
  // The earliest window must outrank the later one (it is "greater").
  EXPECT_TRUE(less(windows[1], windows[0]));
  EXPECT_FALSE(less(windows[0], windows[1]));
}

// ------------------------------------------------ engines on MiniTrace

bdl::TrackingSpec Spec(const std::string& text) {
  auto spec = bdl::CompileBdl(text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return spec.ok() ? std::move(spec.value()) : bdl::TrackingSpec{};
}

std::set<EventId> EdgeSet(const DepGraph& g) {
  std::set<EventId> out;
  g.ForEachEdge([&](const DepGraph::Edge& e) { out.insert(e.event); });
  return out;
}

class ForwardTrackingTest : public testing::Test {
 protected:
  // The taint source: outlook writes the attachment (event id 2, t=20).
  Event TaintEvent() { return trace_.store->Get(2); }

  TrackingContext Ctx(const std::string& script) {
    auto ctx = ResolveContext(*trace_.store, Spec(script), &clock_,
                              TaintEvent());
    EXPECT_TRUE(ctx.ok()) << ctx.status();
    return std::move(ctx.value());
  }

  MiniTrace trace_ = MakeMiniTrace();
  SimClock clock_;
};

TEST_F(ForwardTrackingTest, BdlParsesForwardKeyword) {
  const bdl::TrackingSpec spec = Spec("forward file f[] -> *");
  EXPECT_EQ(spec.direction, bdl::TrackDirection::kForward);
  const bdl::TrackingSpec back = Spec("backward file f[] -> *");
  EXPECT_EQ(back.direction, bdl::TrackDirection::kBackward);
}

TEST_F(ForwardTrackingTest, TaintClosureExact) {
  Executor exec(Ctx("forward file f[] -> *"), &clock_, 8);
  EXPECT_EQ(exec.Run({}), StopReason::kCompleted);

  const DepGraph& g = exec.graph();
  // Tainted: attach -> excel -> {java_file, java} -> ext_sock; the start
  // edge's writer (outlook) is a node of the seed edge.
  for (ObjectId id : {trace_.attach, trace_.excel, trace_.java_file,
                      trace_.java, trace_.ext_sock, trace_.outlook}) {
    EXPECT_TRUE(g.HasNode(id)) << id;
  }
  // NOT tainted: dlls (they flow INTO java), the mail socket (flowed into
  // outlook before the taint), noise, post-taint unrelated reads.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(g.HasNode(trace_.dll[i]));
  EXPECT_FALSE(g.HasNode(trace_.mail_sock));
  EXPECT_FALSE(g.HasNode(trace_.benign));
  EXPECT_FALSE(g.HasNode(trace_.doc1));
  // late_file is read BY java after the alert: flow late_file -> java is
  // not an out-flow of java, so it is not tainted either.
  EXPECT_FALSE(g.HasNode(trace_.late_file));

  // Exact edge set: seed write(2), attach read(4), java_file write(5),
  // java start(6), java_file read(7), ext connect(alert).
  EXPECT_EQ(EdgeSet(g),
            (std::set<EventId>{2, 4, 5, 6, 7, trace_.alert_event}));
  // Hops follow the taint chain.
  EXPECT_EQ(g.HopOf(trace_.attach), 0);  // start node
  EXPECT_EQ(g.HopOf(trace_.excel), 1);
  EXPECT_EQ(g.HopOf(trace_.java), 2);
  EXPECT_EQ(g.HopOf(trace_.ext_sock), 3);
}

TEST_F(ForwardTrackingTest, BaselineMatches) {
  Executor exec(Ctx("forward file f[] -> *"), &clock_, 8);
  exec.Run({});
  SimClock clock2;
  auto ctx = ResolveContext(*trace_.store, Spec("forward file f[] -> *"),
                            &clock2, TaintEvent());
  ASSERT_TRUE(ctx.ok());
  BaselineExecutor baseline(std::move(ctx.value()), &clock2);
  EXPECT_EQ(baseline.Run({}), StopReason::kCompleted);
  EXPECT_EQ(EdgeSet(baseline.graph()), EdgeSet(exec.graph()));
}

class ForwardKSweep : public testing::TestWithParam<int> {};

TEST_P(ForwardKSweep, ClosureIndependentOfK) {
  MiniTrace trace = MakeMiniTrace();
  SimClock clock;
  auto spec = bdl::CompileBdl("forward file f[] -> *");
  ASSERT_TRUE(spec.ok());
  auto ctx = ResolveContext(*trace.store, std::move(spec.value()), &clock,
                            trace.store->Get(2));
  ASSERT_TRUE(ctx.ok());
  Executor exec(std::move(ctx.value()), &clock, GetParam());
  EXPECT_EQ(exec.Run({}), StopReason::kCompleted);
  EXPECT_EQ(exec.graph().NumEdges(), 6u);
}

INSTANTIATE_TEST_SUITE_P(K, ForwardKSweep, testing::Values(1, 2, 4, 8, 16));

TEST_F(ForwardTrackingTest, WhereFilterApplies) {
  Executor exec(
      Ctx("forward file f[] -> * where proc.exename != \"java.exe\""),
      &clock_, 8);
  EXPECT_EQ(exec.Run({}), StopReason::kCompleted);
  EXPECT_FALSE(exec.graph().HasNode(trace_.java));
  EXPECT_FALSE(exec.graph().HasNode(trace_.ext_sock));
  EXPECT_TRUE(exec.graph().HasNode(trace_.excel));
  EXPECT_TRUE(exec.graph().HasNode(trace_.java_file));
}

TEST_F(ForwardTrackingTest, StatePropagationAlongForwardChain) {
  // file -> proc[java.exe] -> ip[185.*]: the exfil socket completes it.
  Executor exec(Ctx("forward file f[] -> proc p[exename = \"java.exe\"] -> "
                    "ip i[dst_ip = \"185.*\"]"),
                &clock_, 8);
  EXPECT_EQ(exec.Run({}), StopReason::kCompleted);
  const DepGraph& g = exec.graph();
  EXPECT_EQ(g.StateOf(trace_.attach), 1);
  EXPECT_EQ(g.StateOf(trace_.excel), 1);     // carries
  EXPECT_EQ(g.StateOf(trace_.java), 2);      // matches n2
  EXPECT_EQ(g.StateOf(trace_.ext_sock), 3);  // full chain
  EXPECT_TRUE(exec.maintainer().end_point_reached());

  // Every node of this closure lies on a matched taint path (java_file is
  // a legitimate intermediate hop attach -> excel -> java_file -> java),
  // so pruning removes nothing and the chain survives.
  exec.maintainer().PruneToMatchedPaths();
  EXPECT_TRUE(g.HasNode(trace_.ext_sock));
  EXPECT_TRUE(g.HasNode(trace_.java));
  EXPECT_TRUE(g.HasNode(trace_.java_file));
  EXPECT_TRUE(g.HasNode(trace_.attach));
}

TEST_F(ForwardTrackingTest, HopLimitBounds) {
  Executor exec(Ctx("forward file f[] -> * where hop <= 1"), &clock_, 8);
  EXPECT_EQ(exec.Run({}), StopReason::kCompleted);
  EXPECT_TRUE(exec.graph().HasNode(trace_.excel));    // hop 1
  EXPECT_FALSE(exec.graph().HasNode(trace_.java));    // hop 2
  EXPECT_FALSE(exec.graph().HasNode(trace_.ext_sock));
}

TEST_F(ForwardTrackingTest, RoundTripBackwardFindsTaintSource) {
  // Duality check: backward from the exfil alert reaches the attachment;
  // forward from the attachment write reaches the exfil socket.
  Executor forward(Ctx("forward file f[] -> *"), &clock_, 8);
  forward.Run({});
  EXPECT_TRUE(forward.graph().HasNode(trace_.ext_sock));

  SimClock clock2;
  auto ctx = ResolveContext(*trace_.store, Spec("backward ip x[] -> *"),
                            &clock2, trace_.store->Get(trace_.alert_event));
  ASSERT_TRUE(ctx.ok());
  Executor backward(std::move(ctx.value()), &clock2, 8);
  backward.Run({});
  EXPECT_TRUE(backward.graph().HasNode(trace_.attach));
}

}  // namespace
}  // namespace aptrace
