// Property tests over randomized traces: APTrace's windowed executor and
// the execute-to-complete baseline must compute exactly the closure that
// the paper's backward-dependency definition prescribes, for any trace,
// any window count k, any step schedule, and either priority policy.

#include <gtest/gtest.h>

#include <deque>
#include <limits>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "bdl/analyzer.h"
#include "core/baseline_executor.h"
#include "core/refiner.h"
#include "core/session.h"
#include "core/executor.h"
#include "tests/random_trace_util.h"
#include "util/rng.h"

namespace aptrace {
namespace {

class ClosureProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(ClosureProperty, EnginesMatchReference) {
  const RandomTrace t = MakeRandomTrace(GetParam(), 400);
  const std::string script = UnconstrainedScript(t);
  const auto reference =
      ReferenceClosure(t, [](ObjectId) { return true; });

  SimClock c1, c2;
  Executor aptrace(Ctx(t, script), &c1, 8);
  ASSERT_EQ(aptrace.Run({}), StopReason::kCompleted);
  BaselineExecutor baseline(Ctx(t, script), &c2);
  ASSERT_EQ(baseline.Run({}), StopReason::kCompleted);

  EXPECT_EQ(EdgeSet(aptrace.graph()), reference);
  EXPECT_EQ(EdgeSet(baseline.graph()), reference);
}

TEST_P(ClosureProperty, WhereFilterMatchesReference) {
  const RandomTrace t = MakeRandomTrace(GetParam() ^ 0x9e37, 400);
  const std::string script =
      UnconstrainedScript(t) +
      " where file.path != \"*.dll\" and proc.exename != \"svc.exe\"";

  const ObjectCatalog& cat = t.store->catalog();
  const auto allowed = [&](ObjectId id) {
    const SystemObject& o = cat.Get(id);
    if (id == t.alert.FlowDest() || id == t.alert.FlowSource()) {
      // Start-event endpoints are seeded before filtering.
      return true;
    }
    if (o.is_file() && o.file().path.size() >= 4 &&
        o.file().path.substr(o.file().path.size() - 4) == ".dll") {
      return false;
    }
    if (o.is_process() && o.process().exename == "svc.exe") return false;
    return true;
  };

  SimClock c1, c2;
  Executor aptrace(Ctx(t, script), &c1, 8);
  ASSERT_EQ(aptrace.Run({}), StopReason::kCompleted);
  BaselineExecutor baseline(Ctx(t, script), &c2);
  ASSERT_EQ(baseline.Run({}), StopReason::kCompleted);

  const auto reference = ReferenceClosure(t, allowed);
  EXPECT_EQ(EdgeSet(aptrace.graph()), reference);
  EXPECT_EQ(EdgeSet(baseline.graph()), reference);
}

TEST_P(ClosureProperty, ClosureIndependentOfKAndPolicy) {
  const RandomTrace t = MakeRandomTrace(GetParam() ^ 0xabcd, 300);
  const std::string script = UnconstrainedScript(t);
  std::set<EventId> first;
  bool have_first = false;
  for (int k : {1, 3, 8, 17}) {
    for (bool temporal : {true, false}) {
      SimClock clock;
      Executor exec(Ctx(t, script), &clock, k, temporal);
      ASSERT_EQ(exec.Run({}), StopReason::kCompleted);
      if (!have_first) {
        first = EdgeSet(exec.graph());
        have_first = true;
      } else {
        EXPECT_EQ(EdgeSet(exec.graph()), first)
            << "k=" << k << " temporal=" << temporal;
      }
    }
  }
}

TEST_P(ClosureProperty, ClosureIndependentOfStepSchedule) {
  const RandomTrace t = MakeRandomTrace(GetParam() ^ 0x5555, 300);
  const std::string script = UnconstrainedScript(t);

  SimClock c1;
  Executor one_shot(Ctx(t, script), &c1, 8);
  ASSERT_EQ(one_shot.Run({}), StopReason::kCompleted);

  SimClock c2;
  Executor stepped(Ctx(t, script), &c2, 8);
  Rng rng(GetParam());
  int guard = 0;
  for (;;) {
    RunLimits limits;
    limits.max_updates = 1 + rng.Uniform(3);
    const StopReason r = stepped.Run(limits);
    if (r == StopReason::kCompleted) break;
    ASSERT_EQ(r, StopReason::kUpdateCap);
    ASSERT_LT(guard++, 10000);
  }
  EXPECT_EQ(EdgeSet(stepped.graph()), EdgeSet(one_shot.graph()));
}

TEST_P(ClosureProperty, UpdateLogInvariants) {
  const RandomTrace t = MakeRandomTrace(GetParam() ^ 0x7777, 300);
  SimClock clock;
  Executor exec(Ctx(t, UnconstrainedScript(t)), &clock, 8);
  ASSERT_EQ(exec.Run({}), StopReason::kCompleted);

  const UpdateLog& log = exec.update_log();
  TimeMicros prev = log.run_start();
  size_t edge_sum = 1;  // the bootstrap alert edge
  size_t prev_total = 1;
  for (const UpdateBatch& b : log.batches()) {
    EXPECT_GE(b.sim_time, prev);
    EXPECT_GT(b.new_edges, 0u);  // empty batches are not updates
    EXPECT_GE(b.total_edges, prev_total);
    prev = b.sim_time;
    prev_total = b.total_edges;
    edge_sum += b.new_edges;
  }
  EXPECT_EQ(edge_sum, exec.graph().NumEdges());
}

// Every event in the closure is justified: its flow destination is
// reachable, and its timestamp precedes some dependent event on that
// object (soundness of the backward-dependency semantics).
TEST_P(ClosureProperty, EveryEdgeIsJustified) {
  const RandomTrace t = MakeRandomTrace(GetParam() ^ 0x1212, 300);
  SimClock clock;
  Executor exec(Ctx(t, UnconstrainedScript(t)), &clock, 8);
  ASSERT_EQ(exec.Run({}), StopReason::kCompleted);

  const auto edges = EdgeSet(exec.graph());
  for (EventId id : edges) {
    if (id == t.alert.id) continue;
    const Event& a = t.store->Get(id);
    bool justified = false;
    for (EventId other : edges) {
      const Event& b = t.store->Get(other);
      if (BackwardDependsOn(b, a)) {
        justified = true;
        break;
      }
    }
    EXPECT_TRUE(justified) << "edge " << id << " has no dependent in graph";
  }
}

/// Forward reference: the mirror of ReferenceClosure, following the data
/// flow (events whose source is the explored object, strictly later).
std::set<EventId> ReferenceForwardClosure(const RandomTrace& t) {
  std::set<EventId> closure{t.alert.id};
  std::unordered_map<ObjectId, TimeMicros> low_mark;  // min explore-from
  std::deque<ObjectId> queue;

  const auto want = [&](ObjectId o, TimeMicros from) {
    auto [it, inserted] = low_mark.try_emplace(o, from);
    if (!inserted) {
      if (from >= it->second) return;
      it->second = from;
    }
    queue.push_back(o);
  };
  want(t.alert.FlowDest(), t.alert.timestamp + 1);

  std::unordered_map<ObjectId, TimeMicros> covered_down;
  while (!queue.empty()) {
    const ObjectId o = queue.front();
    queue.pop_front();
    const TimeMicros from = low_mark[o];
    auto [cit, cinserted] = covered_down.try_emplace(
        o, std::numeric_limits<TimeMicros>::max());
    if (from >= cit->second) continue;
    const TimeMicros upper = cit->second;
    for (const Event& e : t.events) {
      if (e.FlowSource() != o) continue;
      if (e.timestamp < from ||
          (upper != std::numeric_limits<TimeMicros>::max() &&
           e.timestamp >= upper)) {
        continue;
      }
      closure.insert(e.id);
      want(e.FlowDest(), e.timestamp + 1);
    }
    cit->second = from;
  }
  return closure;
}

TEST_P(ClosureProperty, ForwardEnginesMatchReference) {
  const RandomTrace t = MakeRandomTrace(GetParam() ^ 0x4444, 400);
  // Forward from the EARLIEST process-sourced event instead, so there is
  // a future to explore.
  RandomTrace ft = MakeRandomTrace(GetParam() ^ 0x4444, 400);
  TimeMicros best = std::numeric_limits<TimeMicros>::max();
  for (const Event& e : ft.events) {
    if (ft.store->catalog().Get(e.FlowSource()).is_process() &&
        e.timestamp < best) {
      best = e.timestamp;
      ft.alert = e;
    }
  }
  (void)t;
  const ObjectType type =
      ft.store->catalog().Get(ft.alert.FlowDest()).type();
  const std::string script =
      std::string("forward ") + ObjectTypeName(type) + " x[] -> *";
  const auto reference = ReferenceForwardClosure(ft);

  SimClock c1, c2;
  Executor aptrace(Ctx(ft, script), &c1, 8);
  ASSERT_EQ(aptrace.Run({}), StopReason::kCompleted);
  BaselineExecutor baseline(Ctx(ft, script), &c2);
  ASSERT_EQ(baseline.Run({}), StopReason::kCompleted);

  EXPECT_EQ(EdgeSet(aptrace.graph()), reference);
  EXPECT_EQ(EdgeSet(baseline.graph()), reference);
}

// The Refiner's reuse path is equivalent to a fresh run of the refined
// script, no matter where the analyst paused.
TEST_P(ClosureProperty, RefineEquivalentToFreshRun) {
  const RandomTrace t = MakeRandomTrace(GetParam() ^ 0xfeed, 350);
  const std::string v1 = UnconstrainedScript(t);
  const std::string v2 = v1 + " where file.path != \"*.dll\"";

  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 3; ++trial) {
    SimClock c1;
    Session refined(t.store.get(), &c1);
    ASSERT_TRUE(refined.Start(v1, t.alert).ok());
    RunLimits pause;
    pause.max_updates = 1 + rng.Uniform(6);  // random pause point
    (void)refined.Step(pause);
    ASSERT_TRUE(refined.UpdateScript(v2).ok());
    ASSERT_TRUE(refined.Step({}).ok());

    SimClock c2;
    Session fresh(t.store.get(), &c2);
    ASSERT_TRUE(fresh.Start(v2, t.alert).ok());
    ASSERT_TRUE(fresh.Step({}).ok());

    EXPECT_EQ(EdgeSet(refined.graph()), EdgeSet(fresh.graph()))
        << "seed=" << GetParam() << " trial=" << trial;
  }
}

// Narrowing the time range mid-run through the Refiner is equivalent to a
// fresh run of the narrowed script, for any pause point.
TEST_P(ClosureProperty, NarrowedRangeEquivalentToFreshRun) {
  const RandomTrace t = MakeRandomTrace(GetParam() ^ 0x3c3c, 350);
  // Timestamps are in [0, 20000) micros; BDL ranges are date-based, so
  // build the narrowed spec programmatically.
  const std::string script = UnconstrainedScript(t);
  auto narrowed_spec = Spec(script);
  // Keep roughly the most recent two thirds of the history, making sure
  // the alert stays inside.
  const TimeMicros cut = std::min<TimeMicros>(6000, t.alert.timestamp);
  narrowed_spec.time_from = cut;

  Rng rng(GetParam() * 17 + 3);
  for (int trial = 0; trial < 3; ++trial) {
    SimClock c1;
    Session refined(t.store.get(), &c1);
    ASSERT_TRUE(refined.Start(script, t.alert).ok());
    RunLimits pause;
    pause.max_updates = 1 + rng.Uniform(5);
    (void)refined.Step(pause);
    // Route the narrowed spec through the Refiner by hand: UpdateScript
    // takes text, so resolve + apply directly on the executor.
    auto* executor = dynamic_cast<Executor*>(refined.engine());
    ASSERT_NE(executor, nullptr);
    SimClock rc;
    auto new_ctx = ResolveContext(*t.store, narrowed_spec, &rc, t.alert);
    ASSERT_TRUE(new_ctx.ok());
    const RefineResult r =
        Refiner::Classify(executor->context(), new_ctx.value());
    ASSERT_EQ(r.action, RefineAction::kReuse);
    ASSERT_TRUE(r.delta.range_narrowed);
    executor->ApplyRefinedContext(std::move(new_ctx.value()), r.delta);
    ASSERT_TRUE(refined.Step({}).ok());

    SimClock c2;
    Session fresh(t.store.get(), &c2);
    ASSERT_TRUE(fresh.StartWithSpec(narrowed_spec, t.alert).ok());
    ASSERT_TRUE(fresh.Step({}).ok());

    EXPECT_EQ(EdgeSet(refined.graph()), EdgeSet(fresh.graph()))
        << "seed=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureProperty,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace aptrace
