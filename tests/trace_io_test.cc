#include <gtest/gtest.h>

#include <sstream>

#include "storage/trace_io.h"
#include "tests/test_trace.h"
#include "workload/scenario.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

TEST(TraceIoTest, RoundTripPreservesEverything) {
  MiniTrace t = MakeMiniTrace();
  std::stringstream buf;
  ASSERT_TRUE(SaveTrace(*t.store, buf).ok());

  auto loaded = LoadTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const EventStore& a = *t.store;
  const EventStore& b = **loaded;

  ASSERT_EQ(a.NumEvents(), b.NumEvents());
  ASSERT_EQ(a.catalog().size(), b.catalog().size());
  ASSERT_EQ(a.catalog().NumHosts(), b.catalog().NumHosts());
  EXPECT_EQ(a.MinTime(), b.MinTime());
  EXPECT_EQ(a.MaxTime(), b.MaxTime());

  for (EventId id = 0; id < a.NumEvents(); ++id) {
    const Event& ea = a.Get(id);
    const Event& eb = b.Get(id);
    EXPECT_EQ(ea.subject, eb.subject);
    EXPECT_EQ(ea.object, eb.object);
    EXPECT_EQ(ea.timestamp, eb.timestamp);
    EXPECT_EQ(ea.amount, eb.amount);
    EXPECT_EQ(ea.action, eb.action);
    EXPECT_EQ(ea.direction, eb.direction);
    EXPECT_EQ(ea.host, eb.host);
  }
  for (ObjectId id = 0; id < a.catalog().size(); ++id) {
    const SystemObject& oa = a.catalog().Get(id);
    const SystemObject& ob = b.catalog().Get(id);
    EXPECT_EQ(oa.type(), ob.type());
    EXPECT_EQ(oa.host(), ob.host());
    EXPECT_EQ(oa.Label(), ob.Label());
  }

  // Queries agree too.
  std::vector<EventId> got_a, got_b;
  a.ScanDest(t.java, 0, 1000, nullptr,
             [&](const Event& e) { got_a.push_back(e.id); });
  b.ScanDest(t.java, 0, 1000, nullptr,
             [&](const Event& e) { got_b.push_back(e.id); });
  EXPECT_EQ(got_a, got_b);
}

TEST(TraceIoTest, RoundTripOfStagedAttackCase) {
  auto built = workload::BuildAttackCase("excel_macro",
                                         workload::TraceConfig::Small());
  ASSERT_TRUE(built.ok());
  std::stringstream buf;
  ASSERT_TRUE(SaveTrace(*built->store, buf).ok());
  auto loaded = LoadTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->NumEvents(), built->store->NumEvents());
  // The alert event survives with the same id and shape.
  const Event& alert = (*loaded)->Get(built->scenario.alert_event);
  EXPECT_EQ(alert.timestamp, built->scenario.alert.timestamp);
  EXPECT_EQ(alert.subject, built->scenario.alert.subject);
}

TEST(TraceIoTest, SaveRequiresSealedStore) {
  EventStore store;
  std::stringstream buf;
  EXPECT_FALSE(SaveTrace(store, buf).ok());
}

TEST(TraceIoTest, SpecialCharactersInPaths) {
  EventStore store;
  const HostId h = store.catalog().InternHost("weird host name");
  const ObjectId p = store.catalog().AddProcess(h, {.exename = "a b.exe"});
  const ObjectId f = store.catalog().AddFile(
      h, {.path = "C://spaces and \"quotes\"/file.txt"});
  Event e;
  e.subject = p;
  e.object = f;
  e.timestamp = 42;
  e.action = ActionType::kWrite;
  e.direction = FlowDirection::kSubjectToObject;
  e.host = h;
  store.Append(e);
  store.Seal();

  std::stringstream buf;
  ASSERT_TRUE(SaveTrace(store, buf).ok());
  auto loaded = LoadTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->catalog().Get(f).file().path,
            "C://spaces and \"quotes\"/file.txt");
  EXPECT_EQ((*loaded)->catalog().HostName(h), "weird host name");
}

struct BadTrace {
  const char* text;
  const char* why;
  /// Required substring of the error: the 1-based line number plus the
  /// record tag of the offending line, "at line N [TAG]".
  const char* want;
};

class TraceIoErrorTest : public testing::TestWithParam<BadTrace> {};

TEST_P(TraceIoErrorTest, RejectedWithLineAndTag) {
  std::stringstream buf(GetParam().text);
  auto loaded = LoadTrace(buf);
  ASSERT_FALSE(loaded.ok()) << GetParam().why;
  const std::string message = loaded.status().ToString();
  EXPECT_NE(message.find(GetParam().want), std::string::npos)
      << GetParam().why << ": got '" << message << "', want substring '"
      << GetParam().want << "'";
}

// One malformed input per record type (H, P, F, I, E), plus header and
// unknown-kind failures: every diagnostic must name the offending line
// (1-based, header = line 1) and the record tag.
INSTANTIATE_TEST_SUITE_P(
    Corpus, TraceIoErrorTest,
    testing::Values(
        BadTrace{"", "empty input", "at line 1 [header]"},
        BadTrace{"not a trace\n", "wrong header", "at line 1 [header]"},
        BadTrace{"aptrace-trace v1\nX\t1\t2\n", "unknown record",
                 "at line 2 [X]"},
        BadTrace{"aptrace-trace v1\nH\t5\thost\n", "non-dense host id",
                 "at line 2 [H]"},
        BadTrace{"aptrace-trace v1\nH\t0\n", "truncated host record",
                 "at line 2 [H]"},
        BadTrace{"aptrace-trace v1\nH\t0\th\nP\t7\t0\t1\t2\tp\n",
                 "non-dense object id", "at line 3 [P]"},
        BadTrace{"aptrace-trace v1\nH\t0\th\nP\t0\t0\txx\t2\tp\n",
                 "non-numeric pid", "at line 3 [P]"},
        BadTrace{"aptrace-trace v1\nH\t0\th\nF\t0\t0\t0\t0\t0\n",
                 "truncated file record", "at line 3 [F]"},
        BadTrace{"aptrace-trace v1\nH\t0\th\nP\t0\t0\t1\t2\tp\n"
                 "F\t1\t0\tzz\t0\t0\t/f\n",
                 "non-numeric file field", "at line 4 [F]"},
        BadTrace{"aptrace-trace v1\nH\t0\th\nI\t0\t0\n",
                 "truncated ip record", "at line 3 [I]"},
        BadTrace{"aptrace-trace v1\nH\t0\th\nP\t0\t0\t1\t2\tp\n"
                 "I\t1\t0\t0\tzz\ta\tb\n",
                 "non-numeric ip field", "at line 4 [I]"},
        BadTrace{"aptrace-trace v1\nH\t0\th\nE\t0\t1\t5\t0\t0\t0\t0\n",
                 "event references unknown object", "at line 3 [E]"},
        BadTrace{"aptrace-trace v1\nH\t0\th\nP\t0\t0\t1\t2\tp\n"
                 "F\t1\t0\t0\t0\t0\t/f\nE\t0\t1\t5\t0\t99\t0\t0\n",
                 "bad action code", "at line 5 [E]"}));

// ---------------------------------------------------------------------
// Binary v2 container.

std::string SaveV2(const EventStore& store) {
  std::stringstream buf;
  EXPECT_TRUE(SaveTrace(store, buf, TraceFormat::kBinaryV2).ok());
  return buf.str();
}

TEST(TraceIoV2Test, RoundTripPreservesEverything) {
  MiniTrace t = MakeMiniTrace();
  std::stringstream buf(SaveV2(*t.store));
  auto loaded = LoadTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const EventStore& a = *t.store;
  const EventStore& b = **loaded;

  ASSERT_EQ(a.NumEvents(), b.NumEvents());
  ASSERT_EQ(a.catalog().size(), b.catalog().size());
  ASSERT_EQ(a.catalog().NumHosts(), b.catalog().NumHosts());
  EXPECT_EQ(a.MinTime(), b.MinTime());
  EXPECT_EQ(a.MaxTime(), b.MaxTime());
  for (EventId id = 0; id < a.NumEvents(); ++id) {
    const Event ea = a.Get(id);
    const Event eb = b.Get(id);
    EXPECT_EQ(ea.subject, eb.subject);
    EXPECT_EQ(ea.object, eb.object);
    EXPECT_EQ(ea.timestamp, eb.timestamp);
    EXPECT_EQ(ea.amount, eb.amount);
    EXPECT_EQ(ea.action, eb.action);
    EXPECT_EQ(ea.direction, eb.direction);
    EXPECT_EQ(ea.host, eb.host);
  }
  for (ObjectId id = 0; id < a.catalog().size(); ++id) {
    const SystemObject& oa = a.catalog().Get(id);
    const SystemObject& ob = b.catalog().Get(id);
    EXPECT_EQ(oa.type(), ob.type());
    EXPECT_EQ(oa.host(), ob.host());
    EXPECT_EQ(oa.Label(), ob.Label());
  }
}

// Acceptance criterion: save -> load -> save must be byte-stable (the
// writer is deterministic and ids are implicit in file order).
TEST(TraceIoV2Test, RoundTripIsByteStable) {
  MiniTrace t = MakeMiniTrace();
  const std::string first = SaveV2(*t.store);
  std::stringstream buf(first);
  auto loaded = LoadTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(SaveV2(**loaded), first);
}

// The container is backend-neutral: a v2 file written from a columnar
// store loads into a row store (and vice versa) with identical bytes on
// re-save and identical rows.
TEST(TraceIoV2Test, CrossBackendRoundTrip) {
  MiniTrace t = MakeMiniTrace();
  const std::string bytes = SaveV2(*t.store);
  for (const auto kind :
       {StorageBackendKind::kRow, StorageBackendKind::kColumnar}) {
    std::stringstream buf(bytes);
    EventStoreOptions options;
    options.backend = kind;
    auto loaded = LoadTrace(buf, options);
    ASSERT_TRUE(loaded.ok())
        << StorageBackendName(kind) << ": " << loaded.status();
    EXPECT_EQ((*loaded)->backend_kind(), kind);
    EXPECT_EQ((*loaded)->NumEvents(), t.store->NumEvents());
    EXPECT_EQ(SaveV2(**loaded), bytes) << StorageBackendName(kind);
  }
}

TEST(TraceIoV2Test, SpecialCharactersSurvive) {
  EventStore store;
  const HostId h = store.catalog().InternHost("weird host name");
  const ObjectId p = store.catalog().AddProcess(h, {.exename = "a b.exe"});
  const ObjectId f = store.catalog().AddFile(
      h, {.path = "C://spaces and \"quotes\"\tand tabs/file.txt"});
  Event e;
  e.subject = p;
  e.object = f;
  e.timestamp = 42;
  e.action = ActionType::kWrite;
  e.direction = FlowDirection::kSubjectToObject;
  e.host = h;
  store.Append(e);
  store.Seal();

  std::stringstream buf(SaveV2(store));
  auto loaded = LoadTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->catalog().Get(f).file().path,
            "C://spaces and \"quotes\"\tand tabs/file.txt");
}

// Corrupt v2 inputs are rejected with the byte offset and the section
// tag of the failure.
TEST(TraceIoV2Test, TruncationReportsByteOffsetAndSection) {
  MiniTrace t = MakeMiniTrace();
  const std::string bytes = SaveV2(*t.store);

  {  // Nothing after the magic line: the hosts section is truncated.
    std::stringstream buf(std::string("aptrace-trace v2\n"));
    auto loaded = LoadTrace(buf);
    ASSERT_FALSE(loaded.ok());
    const std::string message = loaded.status().ToString();
    EXPECT_NE(message.find("at byte"), std::string::npos) << message;
    EXPECT_NE(message.find("[hosts]"), std::string::npos) << message;
  }
  {  // Mid-file truncation lands in the events section.
    std::stringstream buf(bytes.substr(0, bytes.size() - 3));
    auto loaded = LoadTrace(buf);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().ToString().find("[events]"),
              std::string::npos)
        << loaded.status();
  }
  {  // Trailing garbage after the event columns.
    std::stringstream buf(bytes + "x");
    auto loaded = LoadTrace(buf);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().ToString().find("trailing bytes"),
              std::string::npos)
        << loaded.status();
  }
}

}  // namespace
}  // namespace aptrace
