#include <gtest/gtest.h>

#include <sstream>

#include "storage/trace_io.h"
#include "tests/test_trace.h"
#include "workload/scenario.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

TEST(TraceIoTest, RoundTripPreservesEverything) {
  MiniTrace t = MakeMiniTrace();
  std::stringstream buf;
  ASSERT_TRUE(SaveTrace(*t.store, buf).ok());

  auto loaded = LoadTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const EventStore& a = *t.store;
  const EventStore& b = **loaded;

  ASSERT_EQ(a.NumEvents(), b.NumEvents());
  ASSERT_EQ(a.catalog().size(), b.catalog().size());
  ASSERT_EQ(a.catalog().NumHosts(), b.catalog().NumHosts());
  EXPECT_EQ(a.MinTime(), b.MinTime());
  EXPECT_EQ(a.MaxTime(), b.MaxTime());

  for (EventId id = 0; id < a.NumEvents(); ++id) {
    const Event& ea = a.Get(id);
    const Event& eb = b.Get(id);
    EXPECT_EQ(ea.subject, eb.subject);
    EXPECT_EQ(ea.object, eb.object);
    EXPECT_EQ(ea.timestamp, eb.timestamp);
    EXPECT_EQ(ea.amount, eb.amount);
    EXPECT_EQ(ea.action, eb.action);
    EXPECT_EQ(ea.direction, eb.direction);
    EXPECT_EQ(ea.host, eb.host);
  }
  for (ObjectId id = 0; id < a.catalog().size(); ++id) {
    const SystemObject& oa = a.catalog().Get(id);
    const SystemObject& ob = b.catalog().Get(id);
    EXPECT_EQ(oa.type(), ob.type());
    EXPECT_EQ(oa.host(), ob.host());
    EXPECT_EQ(oa.Label(), ob.Label());
  }

  // Queries agree too.
  std::vector<EventId> got_a, got_b;
  a.ScanDest(t.java, 0, 1000, nullptr,
             [&](const Event& e) { got_a.push_back(e.id); });
  b.ScanDest(t.java, 0, 1000, nullptr,
             [&](const Event& e) { got_b.push_back(e.id); });
  EXPECT_EQ(got_a, got_b);
}

TEST(TraceIoTest, RoundTripOfStagedAttackCase) {
  auto built = workload::BuildAttackCase("excel_macro",
                                         workload::TraceConfig::Small());
  ASSERT_TRUE(built.ok());
  std::stringstream buf;
  ASSERT_TRUE(SaveTrace(*built->store, buf).ok());
  auto loaded = LoadTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->NumEvents(), built->store->NumEvents());
  // The alert event survives with the same id and shape.
  const Event& alert = (*loaded)->Get(built->scenario.alert_event);
  EXPECT_EQ(alert.timestamp, built->scenario.alert.timestamp);
  EXPECT_EQ(alert.subject, built->scenario.alert.subject);
}

TEST(TraceIoTest, SaveRequiresSealedStore) {
  EventStore store;
  std::stringstream buf;
  EXPECT_FALSE(SaveTrace(store, buf).ok());
}

TEST(TraceIoTest, SpecialCharactersInPaths) {
  EventStore store;
  const HostId h = store.catalog().InternHost("weird host name");
  const ObjectId p = store.catalog().AddProcess(h, {.exename = "a b.exe"});
  const ObjectId f = store.catalog().AddFile(
      h, {.path = "C://spaces and \"quotes\"/file.txt"});
  Event e;
  e.subject = p;
  e.object = f;
  e.timestamp = 42;
  e.action = ActionType::kWrite;
  e.direction = FlowDirection::kSubjectToObject;
  e.host = h;
  store.Append(e);
  store.Seal();

  std::stringstream buf;
  ASSERT_TRUE(SaveTrace(store, buf).ok());
  auto loaded = LoadTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->catalog().Get(f).file().path,
            "C://spaces and \"quotes\"/file.txt");
  EXPECT_EQ((*loaded)->catalog().HostName(h), "weird host name");
}

struct BadTrace {
  const char* text;
  const char* why;
};

class TraceIoErrorTest : public testing::TestWithParam<BadTrace> {};

TEST_P(TraceIoErrorTest, Rejected) {
  std::stringstream buf(GetParam().text);
  auto loaded = LoadTrace(buf);
  EXPECT_FALSE(loaded.ok()) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, TraceIoErrorTest,
    testing::Values(
        BadTrace{"", "empty input"},
        BadTrace{"not a trace\n", "wrong header"},
        BadTrace{"aptrace-trace v1\nX\t1\t2\n", "unknown record"},
        BadTrace{"aptrace-trace v1\nH\t5\thost\n", "non-dense host id"},
        BadTrace{"aptrace-trace v1\nH\t0\th\nP\t7\t0\t1\t2\tp\n",
                 "non-dense object id"},
        BadTrace{"aptrace-trace v1\nH\t0\th\nP\t0\t0\txx\t2\tp\n",
                 "non-numeric pid"},
        BadTrace{"aptrace-trace v1\nH\t0\th\nE\t0\t1\t5\t0\t0\t0\t0\n",
                 "event references unknown object"},
        BadTrace{"aptrace-trace v1\nH\t0\th\nP\t0\t0\t1\t2\tp\n"
                 "F\t1\t0\t0\t0\t0\t/f\nE\t0\t1\t5\t0\t99\t0\t0\n",
                 "bad action code"}));

}  // namespace
}  // namespace aptrace
