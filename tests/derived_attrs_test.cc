#include <gtest/gtest.h>

#include "core/derived_attrs.h"
#include "core/session.h"
#include "tests/test_trace.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

class DerivedAttrsTest : public testing::Test {
 protected:
  MiniTrace trace_ = MakeMiniTrace();
};

TEST_F(DerivedAttrsTest, ReadOnlyFiles) {
  StoreDerivedAttrs derived(trace_.store.get(), 0, 1000);
  // Dlls are only ever read.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(derived.IsReadOnly(trace_.dll[i]));
  }
  // attach and java_file were written during the window.
  EXPECT_FALSE(derived.IsReadOnly(trace_.attach));
  EXPECT_FALSE(derived.IsReadOnly(trace_.java_file));
}

TEST_F(DerivedAttrsTest, ReadOnlyRespectsRange) {
  // After t=25, attach is never written again: read-only in [25, 1000).
  StoreDerivedAttrs derived(trace_.store.get(), 25, 1000);
  EXPECT_TRUE(derived.IsReadOnly(trace_.attach));
}

TEST_F(DerivedAttrsTest, WriteThroughProcess) {
  // Build a dedicated store: helper's only outgoing flow targets its
  // parent process.
  EventStore store;
  auto& c = store.catalog();
  const HostId h = c.InternHost("h");
  const ObjectId parent = c.AddProcess(h, {.exename = "app"});
  const ObjectId helper = c.AddProcess(h, {.exename = "helper"});
  const ObjectId busy = c.AddProcess(h, {.exename = "busy"});
  const ObjectId file = c.AddFile(h, {.path = "/f"});
  auto emit = [&](ObjectId s, ObjectId o, TimeMicros t, ActionType a) {
    Event e;
    e.subject = s;
    e.object = o;
    e.timestamp = t;
    e.action = a;
    e.direction = ActionDefaultDirection(a);
    e.host = h;
    store.Append(e);
  };
  emit(parent, helper, 10, ActionType::kStart);
  emit(helper, parent, 20, ActionType::kWrite);   // returns results
  emit(busy, parent, 30, ActionType::kWrite);     // busy also writes a file:
  emit(busy, file, 40, ActionType::kWrite);       // two distinct dests
  store.Seal();

  StoreDerivedAttrs derived(&store, 0, 100);
  EXPECT_TRUE(derived.IsWriteThrough(helper));
  EXPECT_FALSE(derived.IsWriteThrough(busy));   // writes proc AND file
  // parent started helper (flow into a process) and nothing else: its
  // single dest is a process, so by the definition it is write-through
  // too — the heuristic is about out-flow shape only.
  EXPECT_TRUE(derived.IsWriteThrough(parent));
}

TEST_F(DerivedAttrsTest, CachedAnswersAreStable) {
  StoreDerivedAttrs derived(trace_.store.get(), 0, 1000);
  const bool first = derived.IsReadOnly(trace_.dll[0]);
  EXPECT_EQ(derived.IsReadOnly(trace_.dll[0]), first);
  const bool wt = derived.IsWriteThrough(trace_.java);
  EXPECT_EQ(derived.IsWriteThrough(trace_.java), wt);
}

TEST_F(DerivedAttrsTest, UsableFromBdlWhere) {
  // Keep only read-only files (and everything that is not a file):
  // written files (attach, java_file) are excluded from exploration.
  SimClock clock;
  Session session(trace_.store.get(), &clock);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> * where file.isReadonly = true",
                         trace_.store->Get(trace_.alert_event))
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());
  EXPECT_FALSE(session.graph().HasNode(trace_.attach));
  EXPECT_FALSE(session.graph().HasNode(trace_.java_file));
  EXPECT_TRUE(session.graph().HasNode(trace_.dll[0]));
  EXPECT_TRUE(session.graph().HasNode(trace_.excel));
}

}  // namespace
}  // namespace aptrace
