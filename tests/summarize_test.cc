#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.h"
#include "graph/summarize.h"
#include "tests/test_trace.h"
#include "workload/scenario.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

TEST(SummarizeTest, GroupsDllLeaves) {
  MiniTrace t = MakeMiniTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> *",
                         t.store->Get(t.alert_event))
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());

  std::ostringstream os;
  SummarizeOptions options;
  options.alert_event = t.alert_event;
  options.min_group_size = 3;
  const SummaryStats stats =
      WriteDotSummarized(session.graph(), t.store->catalog(), os, options);
  const std::string dot = os.str();

  // The three dlls (degree-1 file leaves of java) collapse into one
  // "3 x C://Windows/System32/*.dll" group node.
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.collapsed_nodes, 3u);
  EXPECT_EQ(stats.summary_nodes, stats.original_nodes - 3 + 1);
  EXPECT_NE(dot.find("3 x C://Windows/System32/*.dll"), std::string::npos);
  EXPECT_EQ(dot.find("lib0.dll"), std::string::npos);  // member hidden
  // The causal chain stays individual, the alert edge stays red.
  EXPECT_NE(dot.find("java.exe"), std::string::npos);
  EXPECT_NE(dot.find("outlook.exe"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(SummarizeTest, MinGroupSizeRespected) {
  MiniTrace t = MakeMiniTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> *",
                         t.store->Get(t.alert_event))
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());

  std::ostringstream os;
  SummarizeOptions options;
  options.min_group_size = 4;  // the 3 dlls no longer qualify
  const SummaryStats stats =
      WriteDotSummarized(session.graph(), t.store->catalog(), os, options);
  EXPECT_EQ(stats.groups, 0u);
  EXPECT_EQ(stats.collapsed_nodes, 0u);
  EXPECT_NE(os.str().find("lib0.dll"), std::string::npos);
}

TEST(SummarizeTest, AlertEndpointsNeverCollapse) {
  MiniTrace t = MakeMiniTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> *",
                         t.store->Get(t.alert_event))
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());

  std::ostringstream os;
  SummarizeOptions options;
  options.alert_event = t.alert_event;
  options.min_group_size = 1;  // collapse as aggressively as possible
  WriteDotSummarized(session.graph(), t.store->catalog(), os, options);
  // The alert's external socket is a degree-1 ip leaf, but it is pinned.
  EXPECT_NE(os.str().find("185.220.101.45"), std::string::npos);
}

TEST(SummarizeTest, ShrinksRealCaseGraphsDramatically) {
  auto built = workload::BuildAttackCase("wget_unzip_gcc",
                                         workload::TraceConfig::Small());
  ASSERT_TRUE(built.ok());
  SimClock clock;
  Session session(built->store.get(), &clock);
  ASSERT_TRUE(session.Start(built->scenario.bdl_scripts[0]).ok());
  RunLimits limits;
  limits.sim_time = 30 * kMicrosPerMinute;
  ASSERT_TRUE(session.Step(limits).ok());
  ASSERT_GT(session.graph().NumNodes(), 500u);

  std::ostringstream os;
  SummarizeOptions options;
  options.alert_event = built->scenario.alert_event;
  const SummaryStats stats = WriteDotSummarized(
      session.graph(), built->store->catalog(), os, options);
  // The /usr/include/*.h crawl collapses: the summary is a fraction of
  // the raw graph.
  EXPECT_LT(stats.summary_nodes, stats.original_nodes / 3);
  EXPECT_NE(os.str().find("/usr/include/pkg/*.h"), std::string::npos);
}

}  // namespace
}  // namespace aptrace
