#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "detect/detector.h"
#include "workload/scenario.h"
#include "workload/trace_builder.h"

namespace aptrace::detect {
namespace {

/// A hand-built trace: a training window of normal behaviour, then the
/// anomalies each detector is meant to catch.
struct DetectTrace {
  std::unique_ptr<EventStore> store;
  TimeMicros train_until = 0;
  EventId rare_start = kInvalidEventId;
  EventId exfil = kInvalidEventId;
  EventId drop = kInvalidEventId;
  EventId tamper = kInvalidEventId;
};

DetectTrace MakeDetectTrace() {
  DetectTrace t;
  EventStoreOptions options;
  options.cost_model = CostModel::Free();
  t.store = std::make_unique<EventStore>(options);
  workload::TraceBuilder b(t.store.get());
  const HostId h = b.Host("host1");
  const TimeMicros day = kMicrosPerDay;

  const ObjectId shell = b.Proc(h, "explorer.exe", 0);
  const ObjectId sql = b.Proc(h, "sqlservr.exe", 0);
  const ObjectId backup = b.Proc(h, "backupd", 0);
  const ObjectId db = b.File(h, "/srv/grades.db", 0);

  // ---- Training days 0..9: normal behaviour.
  for (int d = 0; d < 10; ++d) {
    const TimeMicros base = d * day;
    b.StartProcess(shell, h, "winword.exe", base + kMicrosPerHour);
    b.StartProcess(sql, h, "sqlagent.exe", base + 2 * kMicrosPerHour);
    b.Write(backup, db, base + 3 * kMicrosPerHour, 4096);
    // Plenty of small internal traffic.
    const ObjectId sock = b.Socket(h, "10.0.0.1", "10.0.0.9", 445,
                                   base + 4 * kMicrosPerHour);
    b.Connect(shell, sock, base + 4 * kMicrosPerHour, 64 * 1024 * 1024);
  }
  t.train_until = 10 * day;

  // ---- Day 12: the anomalies.
  const TimeMicros d12 = 12 * day;
  // Rare process chain: sqlservr -> cmd (never seen in training).
  const ObjectId cmd = b.Proc(h, "cmd.exe", d12);
  t.rare_start = b.Emit(ActionType::kStart, sql, cmd, d12);
  // Exfil: big outbound flow to an external address.
  const ObjectId ext = b.Socket(h, "10.0.0.1", "203.0.113.5", 443,
                                d12 + kMicrosPerHour);
  t.exfil = b.Connect(cmd, ext, d12 + kMicrosPerHour, 50 * 1024 * 1024);
  // Dropped executable into a user path.
  const ObjectId dropped =
      b.File(h, "C://Users/victim/Downloads/payload.exe", d12);
  t.drop = b.Write(cmd, dropped, d12 + 2 * kMicrosPerHour, 300 * 1024);
  // Tampering: cmd writes the file only backupd ever wrote.
  t.tamper = b.Write(cmd, db, d12 + 3 * kMicrosPerHour, 4096);

  // Benign repeats that must NOT alert: the trained pair, internal
  // big flows, backupd's own write.
  b.StartProcess(sql, h, "sqlagent.exe", d12 + 5 * kMicrosPerHour);
  const ObjectId internal = b.Socket(h, "10.0.0.1", "10.0.0.7", 445,
                                     d12 + 5 * kMicrosPerHour);
  b.Connect(shell, internal, d12 + 5 * kMicrosPerHour, 80 * 1024 * 1024);
  b.Write(backup, db, d12 + 6 * kMicrosPerHour, 4096);

  t.store->Seal();
  return t;
}

bool HasAlertFor(const std::vector<Alert>& alerts, EventId event,
                 const char* rule) {
  return std::any_of(alerts.begin(), alerts.end(), [&](const Alert& a) {
    return a.event == event && a.rule == rule;
  });
}

TEST(DetectorTest, StandardPipelineCatchesAllFourAnomalies) {
  const DetectTrace t = MakeDetectTrace();
  auto pipeline = DetectorPipeline::Standard();
  const auto alerts = pipeline.Run(*t.store, t.train_until);

  EXPECT_TRUE(HasAlertFor(alerts, t.rare_start, "rare-process-chain"));
  EXPECT_TRUE(HasAlertFor(alerts, t.exfil, "exfil-volume"));
  EXPECT_TRUE(HasAlertFor(alerts, t.drop, "dropped-executable"));
  EXPECT_TRUE(HasAlertFor(alerts, t.tamper, "unusual-writer"));

  // No alert points at a training-window event, and the benign repeats
  // after training do not alert either: exactly the four staged ones.
  for (const Alert& a : alerts) {
    EXPECT_GE(t.store->Get(a.event).timestamp, t.train_until);
  }
  EXPECT_EQ(alerts.size(), 4u);
}

TEST(DetectorTest, AlertsCarryContext) {
  const DetectTrace t = MakeDetectTrace();
  auto pipeline = DetectorPipeline::Standard();
  const auto alerts = pipeline.Run(*t.store, t.train_until);
  for (const Alert& a : alerts) {
    EXPECT_FALSE(a.rule.empty());
    EXPECT_FALSE(a.message.empty());
    EXPECT_GT(a.severity, 0.0);
    EXPECT_LE(a.severity, 1.0);
  }
}

TEST(DetectorTest, RareChainAlertsOncePerPair) {
  const DetectTrace t = MakeDetectTrace();
  RareProcessChainDetector detector;
  std::vector<Alert> alerts;
  // Replay twice past training: the novel pair alerts only once.
  t.store->ScanRange(0, t.store->MaxTime() + 1, nullptr,
                     [&](const Event& e) {
                       detector.OnEvent(e, t.store->catalog(),
                                        e.timestamp < t.train_until,
                                        &alerts);
                     });
  const Event& rare = t.store->Get(t.rare_start);
  std::vector<Alert> again;
  detector.OnEvent(rare, t.store->catalog(), false, &again);
  EXPECT_TRUE(again.empty());
  EXPECT_EQ(alerts.size(), 1u);
}

// ------------------------------------------- end-to-end: detect, then
// backtrack the detected alert (the full pipeline of the paper's Fig. 3).

TEST(DetectorPipelineTest, DetectsAndBacktracksStagedAttack) {
  auto built = workload::BuildAttackCase("excel_macro",
                                         workload::TraceConfig::Small());
  ASSERT_TRUE(built.ok());
  const EventStore& store = *built->store;
  const workload::AttackScenario& scenario = built->scenario;

  // Train on everything more than two days before the staged alert.
  auto pipeline = DetectorPipeline::Standard();
  const TimeMicros train_until =
      scenario.alert.timestamp - 2 * kMicrosPerDay;
  const auto alerts = pipeline.Run(store, train_until);

  // The staged sqlservr.exe -> cmd.exe start is among the alerts.
  const auto it = std::find_if(alerts.begin(), alerts.end(),
                               [&](const Alert& a) {
                                 return a.event == scenario.alert_event;
                               });
  ASSERT_NE(it, alerts.end())
      << "staged alert not detected among " << alerts.size() << " alerts";
  EXPECT_EQ(it->rule, "rare-process-chain");

  // Backtrack straight from the detected alert.
  SimClock clock;
  Session session(&store, &clock);
  ASSERT_TRUE(session
                  .Start("backward proc p[] -> * where file.path != "
                         "\"*.dll\"",
                         store.Get(it->event))
                  .ok());
  RunLimits limits;
  limits.should_stop = [&] {
    return workload::ChainRecovered(session.graph(), scenario);
  };
  ASSERT_TRUE(session.Step(limits).ok());
  EXPECT_TRUE(workload::ChainRecovered(session.graph(), scenario));
}

}  // namespace
}  // namespace aptrace::detect
