#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bdl/lint.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "storage/event_store.h"
#include "util/string_util.h"

namespace aptrace::bdl {
namespace {

// ---------------------------------------------------------------------------
// Golden cases: every tests/bdl_lint_cases/*.bdl script declares the exact
// diagnostics it must produce via trailing `// expect: CODE LINE:COL`
// comments. The driver runs the full lint pipeline and compares the
// (code, line, column) multiset — so recovery regressions (a missing
// second error) and span regressions both fail loudly.
// ---------------------------------------------------------------------------

struct Expected {
  std::string code;
  int line = 0;
  int column = 0;

  bool operator==(const Expected& o) const {
    return code == o.code && line == o.line && column == o.column;
  }
  bool operator<(const Expected& o) const {
    if (line != o.line) return line < o.line;
    if (column != o.column) return column < o.column;
    return code < o.code;
  }
};

std::string Render(const std::vector<Expected>& v) {
  std::string out;
  for (const Expected& e : v) {
    out += "  " + e.code + " " + std::to_string(e.line) + ":" +
           std::to_string(e.column) + "\n";
  }
  return out.empty() ? "  (none)\n" : out;
}

std::vector<std::string> CaseFiles() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(BDL_LINT_CASES_DIR)) {
    if (entry.path().extension() == ".bdl") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

class LintGoldenTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LintGoldenTest, ReportsExactlyTheExpectedDiagnostics) {
  std::ifstream f(GetParam());
  ASSERT_TRUE(f) << "cannot open " << GetParam();
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();

  std::vector<Expected> expected;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string_view marker = "// expect: ";
    const size_t at = line.find(marker);
    if (at == std::string::npos) continue;
    std::istringstream rest(line.substr(at + marker.size()));
    Expected e;
    char colon = 0;
    rest >> e.code >> e.line >> colon;  // "BDL-W001 2:17"
    ASSERT_TRUE(rest) << "bad expect line: " << line;
    // The line:column pair arrives as "2:17" — reparse.
    std::istringstream pos(line.substr(line.rfind(' ') + 1));
    pos >> e.line >> colon >> e.column;
    ASSERT_TRUE(pos && colon == ':') << "bad expect line: " << line;
    expected.push_back(e);
  }
  ASSERT_FALSE(expected.empty())
      << GetParam() << " declares no `// expect:` lines";

  const LintReport report = LintBdl(text);
  std::vector<Expected> actual;
  for (const Diagnostic& d : report.diagnostics) {
    actual.push_back({d.code_name(), d.span.line, d.span.column});
  }
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected) << "expected:\n"
                              << Render(expected) << "actual:\n"
                              << Render(actual);

  // The spec compiles exactly when no expected diagnostic is an error.
  const bool any_error =
      std::any_of(expected.begin(), expected.end(),
                  [](const Expected& e) { return e.code[4] == 'E'; });
  EXPECT_EQ(report.spec.has_value(), !any_error);
}

std::string CaseName(const ::testing::TestParamInfo<std::string>& info) {
  return std::filesystem::path(info.param).stem().string();
}

INSTANTIATE_TEST_SUITE_P(Cases, LintGoldenTest,
                         ::testing::ValuesIn(CaseFiles()), CaseName);

// ---------------------------------------------------------------------------
// Trace-aware checks need a store; build a tiny one in-process.
// ---------------------------------------------------------------------------

class LintStoreTest : public ::testing::Test {
 protected:
  LintStoreTest() {
    ObjectCatalog& catalog = store_.catalog();
    const HostId host = catalog.InternHost("desktop1");
    const ObjectId proc =
        catalog.AddProcess(host, {.exename = "java.exe", .pid = 7});
    const ObjectId file =
        catalog.AddFile(host, {.path = "C:/Users/a/report.doc"});
    Event e;
    e.subject = proc;
    e.object = file;
    e.host = host;
    e.action = ActionType::kWrite;
    e.direction = FlowDirection::kSubjectToObject;
    e.timestamp = ParseBdlTime("04/01/2019").value();
    store_.Append(e);
    e.timestamp = ParseBdlTime("04/02/2019").value();
    store_.Append(e);
    store_.Seal();
    options_.store = &store_;
  }

  std::vector<std::string> Codes(const LintReport& report) {
    std::vector<std::string> codes;
    for (const Diagnostic& d : report.diagnostics) {
      codes.push_back(d.code_name());
    }
    return codes;
  }

  EventStore store_;
  LintOptions options_;
};

TEST_F(LintStoreTest, PatternMatchingNoCatalogObjectWarns) {
  const LintReport report =
      LintBdl("backward proc p[exename = \"ghost.exe\"] -> *", options_);
  EXPECT_EQ(Codes(report), std::vector<std::string>{"BDL-W005"});
  EXPECT_TRUE(report.ok());
}

TEST_F(LintStoreTest, PatternMatchingSomeObjectIsClean) {
  const LintReport report =
      LintBdl("backward proc p[exename = \"java*\"] -> *", options_);
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST_F(LintStoreTest, DisjunctionIsNeverFlaggedUnmatchable) {
  const LintReport report = LintBdl(
      "backward proc p[exename = \"ghost.exe\" or pid = 7] -> *", options_);
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST_F(LintStoreTest, WindowOutsideTraceWarns) {
  const LintReport report = LintBdl(
      "from \"01/01/2031\" to \"02/01/2031\"\nbackward proc p[] -> *",
      options_);
  EXPECT_EQ(Codes(report), std::vector<std::string>{"BDL-W009"});
}

TEST_F(LintStoreTest, WindowInsideTraceIsClean) {
  const LintReport report = LintBdl(
      "from \"04/01/2019\" to \"04/03/2019\"\nbackward proc p[] -> *",
      options_);
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST_F(LintStoreTest, TimeBudgetBeyondTraceHorizonWarns) {
  const LintReport report =
      LintBdl("backward proc p[] -> * where time <= 900d", options_);
  EXPECT_EQ(Codes(report), std::vector<std::string>{"BDL-W007"});
}

// ---------------------------------------------------------------------------
// Pure-AST lint details not covered by the golden corpus.
// ---------------------------------------------------------------------------

TEST(LintTest, BooleanContradictionWarns) {
  const LintReport report = LintBdl(
      "backward file f[isReadonly = true and isReadonly = false] -> *");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].code, DiagCode::kAlwaysFalse);
}

TEST(LintTest, NumericEqualityConflictWarns) {
  const LintReport report =
      LintBdl("backward proc p[pid = 4 and pid = 5] -> *");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].code, DiagCode::kAlwaysFalse);
}

TEST(LintTest, EqualityOutsideRangeWarns) {
  const LintReport report =
      LintBdl("backward proc p[pid = 4 and pid > 10] -> *");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].code, DiagCode::kAlwaysFalse);
}

TEST(LintTest, SamePatternOnBothSidesOfEqAndNeWarns) {
  const LintReport report = LintBdl(
      "backward file f[path = \"*.doc\" and path != \"*.doc\"] -> *");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].code, DiagCode::kAlwaysFalse);
}

TEST(LintTest, OrBranchesDoNotConflictAcrossGroups) {
  // pid = 4 and pid = 5 conflict only if they must hold together; across
  // an `or` they are separate groups and both satisfiable.
  const LintReport report =
      LintBdl("backward proc p[pid = 4 or pid = 5] -> *");
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(LintTest, TimeRangeContradictionInWhereWarns) {
  const LintReport report = LintBdl(
      "backward proc p[] -> * where event_time > \"04/20/2019\" and "
      "event_time < \"04/10/2019\"");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].code, DiagCode::kAlwaysFalse);
}

TEST(LintTest, CleanScriptHasNoDiagnosticsAndASpec) {
  const LintReport report = LintBdl(
      "from \"03/26/2019\" to \"04/27/2019\"\n"
      "backward proc p[exename = \"java.exe\"] -> file f[] -> *\n"
      "where hop <= 25 and time <= 10mins\n"
      "prioritize [type = file] <- [amount >= size]\n"
      "output = \"out.dot\"");
  EXPECT_TRUE(report.diagnostics.empty());
  ASSERT_TRUE(report.spec.has_value());
  EXPECT_EQ(report.spec->hop_limit, 25);
}

TEST(LintTest, RecoveryReportsEveryDefectInOnePass) {
  // Three independent defects; one invocation must surface all three.
  const LintReport report = LintBdl(
      "from \"13/45/2019\" to \"04/01/2019\"\n"
      "backward proc p[exena = \"x\"] -> *\n"
      "where hop <= 0");
  std::vector<std::string> codes;
  for (const Diagnostic& d : report.diagnostics) {
    codes.push_back(d.code_name());
  }
  EXPECT_EQ(codes, (std::vector<std::string>{"BDL-E007", "BDL-E004"}));
  // The hop warning needs a compiled spec, which errors suppress; the two
  // errors still arrive together with their own spans.
  ASSERT_EQ(report.diagnostics.size(), 2u);
  EXPECT_EQ(report.diagnostics[0].span.line, 1);
  EXPECT_EQ(report.diagnostics[1].span.line, 2);
}

TEST(LintTest, FixitSuggestsClosestFieldName) {
  const LintReport report =
      LintBdl("backward proc p[exena = \"x\"] -> *");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].fixit, "exename");
  ASSERT_EQ(report.diagnostics[0].notes.size(), 1u);
  EXPECT_NE(report.diagnostics[0].notes[0].message.find("exename"),
            std::string::npos);
}

TEST(LintTest, LintRunsCounterIncrements) {
  obs::Counter* runs =
      obs::Metrics().FindOrCreateCounter(obs::names::kBdlLintRuns);
  obs::Counter* warnings =
      obs::Metrics().FindOrCreateCounter(obs::names::kBdlLintWarnings);
  const uint64_t runs_before = runs->value();
  const uint64_t warnings_before = warnings->value();
  (void)LintBdl("backward proc p[] -> * where hop <= 0");
  EXPECT_EQ(runs->value(), runs_before + 1);
  EXPECT_EQ(warnings->value(), warnings_before + 1);
}

}  // namespace
}  // namespace aptrace::bdl
