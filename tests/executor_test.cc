#include <gtest/gtest.h>

#include <set>

#include "core/baseline_executor.h"
#include "core/executor.h"
#include "bdl/analyzer.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "tests/test_trace.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

bdl::TrackingSpec Spec(const std::string& text) {
  auto spec = bdl::CompileBdl(text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return spec.ok() ? std::move(spec.value()) : bdl::TrackingSpec{};
}

TrackingContext Ctx(const MiniTrace& t, const std::string& script,
                    Clock* clock) {
  auto ctx = ResolveContext(*t.store, Spec(script), clock,
                            t.store->Get(t.alert_event));
  EXPECT_TRUE(ctx.ok()) << ctx.status();
  return std::move(ctx.value());
}

std::set<EventId> EdgeSet(const DepGraph& g) {
  std::set<EventId> out;
  g.ForEachEdge([&](const DepGraph::Edge& e) { out.insert(e.event); });
  return out;
}

constexpr char kUnconstrained[] = "backward ip x[] -> *";

class ExecutorTest : public testing::Test {
 protected:
  MiniTrace trace_ = MakeMiniTrace();
  SimClock clock_;
};

TEST_F(ExecutorTest, FullClosureExact) {
  Executor exec(Ctx(trace_, kUnconstrained, &clock_), &clock_, 8);
  EXPECT_EQ(exec.Run({}), StopReason::kCompleted);
  EXPECT_TRUE(exec.Exhausted());

  EXPECT_EQ(exec.graph().NumEdges(), MiniTrace::kClosureEdges);
  EXPECT_EQ(exec.graph().NumNodes(), MiniTrace::kClosureNodes);
  // Start node is the alert's flow destination (the external socket).
  EXPECT_EQ(exec.graph().start(), trace_.ext_sock);
  // Noise and post-alert events never enter the closure.
  EXPECT_FALSE(exec.graph().HasNode(trace_.benign));
  EXPECT_FALSE(exec.graph().HasNode(trace_.doc1));
  EXPECT_FALSE(exec.graph().HasNode(trace_.late_file));
  // The whole causal chain is present.
  for (ObjectId id : {trace_.outlook, trace_.excel, trace_.java,
                      trace_.attach, trace_.java_file, trace_.mail_sock}) {
    EXPECT_TRUE(exec.graph().HasNode(id)) << id;
  }
  // Hops along the chain.
  EXPECT_EQ(exec.graph().HopOf(trace_.ext_sock), 0);
  EXPECT_EQ(exec.graph().HopOf(trace_.java), 1);
  EXPECT_EQ(exec.graph().HopOf(trace_.excel), 2);
  EXPECT_EQ(exec.graph().HopOf(trace_.outlook), 3);
  EXPECT_EQ(exec.graph().HopOf(trace_.mail_sock), 4);
}

// Integration check of the observability layer: a run must feed the core
// metrics of the global registry.
TEST_F(ExecutorTest, RunPopulatesCoreMetrics) {
  auto& metrics = obs::Metrics();
  const uint64_t windows_before =
      metrics.FindOrCreateCounter(obs::names::kExecutorWindowsProcessed)
          ->value();
  const uint64_t scanned_before =
      metrics.FindOrCreateCounter(obs::names::kStoreEventsScanned)->value();
  const uint64_t batches_before =
      metrics.FindOrCreateHistogram(obs::names::kUpdateBatchLatency)->count();

  Executor exec(Ctx(trace_, kUnconstrained, &clock_), &clock_, 8);
  EXPECT_EQ(exec.Run({}), StopReason::kCompleted);

  EXPECT_GT(
      metrics.FindOrCreateCounter(obs::names::kExecutorWindowsProcessed)
          ->value(),
      windows_before);
  EXPECT_GT(
      metrics.FindOrCreateCounter(obs::names::kStoreEventsScanned)->value(),
      scanned_before);
  EXPECT_GT(
      metrics.FindOrCreateHistogram(obs::names::kUpdateBatchLatency)->count(),
      batches_before);
}

TEST_F(ExecutorTest, BaselineProducesSameClosure) {
  Executor exec(Ctx(trace_, kUnconstrained, &clock_), &clock_, 8);
  exec.Run({});
  SimClock clock2;
  BaselineExecutor baseline(Ctx(trace_, kUnconstrained, &clock2), &clock2);
  EXPECT_EQ(baseline.Run({}), StopReason::kCompleted);
  EXPECT_EQ(EdgeSet(baseline.graph()), EdgeSet(exec.graph()));
}

// The closure must not depend on the window count k.
class ExecutorKSweep : public testing::TestWithParam<int> {};

TEST_P(ExecutorKSweep, ClosureIndependentOfK) {
  MiniTrace trace = MakeMiniTrace();
  SimClock clock;
  Executor exec(Ctx(trace, kUnconstrained, &clock), &clock, GetParam());
  EXPECT_EQ(exec.Run({}), StopReason::kCompleted);
  EXPECT_EQ(exec.graph().NumEdges(), MiniTrace::kClosureEdges);
  EXPECT_EQ(exec.graph().NumNodes(), MiniTrace::kClosureNodes);
}

INSTANTIATE_TEST_SUITE_P(K, ExecutorKSweep,
                         testing::Values(1, 2, 3, 4, 8, 16, 32));

TEST_F(ExecutorTest, WhereExcludesDlls) {
  Executor exec(
      Ctx(trace_, "backward ip x[] -> * where file.path != \"*.dll\"",
          &clock_),
      &clock_, 8);
  EXPECT_EQ(exec.Run({}), StopReason::kCompleted);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(exec.graph().HasNode(trace_.dll[i]));
  }
  EXPECT_EQ(exec.graph().NumEdges(), MiniTrace::kClosureEdges - 3);
  EXPECT_TRUE(exec.graph().HasNode(trace_.mail_sock));
  EXPECT_EQ(exec.stats().objects_excluded, 3u);
}

TEST_F(ExecutorTest, WhereExcludesProcessSubtree) {
  // Excluding excel.exe cuts off everything upstream of it.
  Executor exec(
      Ctx(trace_, "backward ip x[] -> * where proc.exename != \"excel.exe\"",
          &clock_),
      &clock_, 8);
  EXPECT_EQ(exec.Run({}), StopReason::kCompleted);
  EXPECT_FALSE(exec.graph().HasNode(trace_.excel));
  EXPECT_FALSE(exec.graph().HasNode(trace_.outlook));
  EXPECT_FALSE(exec.graph().HasNode(trace_.attach));
  EXPECT_FALSE(exec.graph().HasNode(trace_.mail_sock));
  // java and its direct file/dll deps remain; java_file stays but its
  // writer (excel) is gone.
  EXPECT_TRUE(exec.graph().HasNode(trace_.java));
  EXPECT_TRUE(exec.graph().HasNode(trace_.java_file));
}

TEST_F(ExecutorTest, HopLimitBoundsExploration) {
  Executor exec(Ctx(trace_, "backward ip x[] -> * where hop <= 2", &clock_),
                &clock_, 8);
  EXPECT_EQ(exec.Run({}), StopReason::kCompleted);
  // Nodes at hop <= 2 present; hop-3 nodes absent.
  EXPECT_TRUE(exec.graph().HasNode(trace_.excel));      // hop 2
  EXPECT_FALSE(exec.graph().HasNode(trace_.outlook));   // hop 3
  EXPECT_FALSE(exec.graph().HasNode(trace_.mail_sock)); // hop 4
  EXPECT_LE(exec.graph().MaxHop(), 2);
}

TEST_F(ExecutorTest, TimeBudgetStopsRun) {
  // Non-zero cost model so simulated time actually passes.
  MiniTrace trace = MakeMiniTrace(CostModel{});
  SimClock clock;
  Executor exec(Ctx(trace, "backward ip x[] -> * where time <= 1ms", &clock),
                &clock, 8);
  EXPECT_EQ(exec.Run({}), StopReason::kTimeBudget);
  EXPECT_LT(exec.graph().NumEdges(), MiniTrace::kClosureEdges);
  // Resuming does not help: the budget is exhausted for good.
  EXPECT_EQ(exec.Run({}), StopReason::kTimeBudget);
}

TEST_F(ExecutorTest, ExternalSimTimeLimitIsPerStep) {
  MiniTrace trace = MakeMiniTrace(CostModel{});
  SimClock clock;
  Executor exec(Ctx(trace, kUnconstrained, &clock), &clock, 8);
  RunLimits limits;
  limits.sim_time = 60 * kMicrosPerMilli;
  StopReason r = exec.Run(limits);
  // Either it finished fast or it hit the step limit; keep stepping.
  int guard = 0;
  while (r == StopReason::kExternalLimit && guard++ < 1000) {
    r = exec.Run(limits);
  }
  EXPECT_EQ(r, StopReason::kCompleted);
  EXPECT_EQ(exec.graph().NumEdges(), MiniTrace::kClosureEdges);
}

TEST_F(ExecutorTest, UpdateCapAndResume) {
  Executor exec(Ctx(trace_, kUnconstrained, &clock_), &clock_, 8);
  RunLimits limits;
  limits.max_updates = 1;
  EXPECT_EQ(exec.Run(limits), StopReason::kUpdateCap);
  const size_t after_one = exec.graph().NumEdges();
  EXPECT_GT(after_one, 0u);
  EXPECT_LT(after_one, MiniTrace::kClosureEdges);
  EXPECT_EQ(exec.Run({}), StopReason::kCompleted);
  EXPECT_EQ(exec.graph().NumEdges(), MiniTrace::kClosureEdges);
}

TEST_F(ExecutorTest, ShouldStopPausesImmediately) {
  Executor exec(Ctx(trace_, kUnconstrained, &clock_), &clock_, 8);
  RunLimits limits;
  limits.should_stop = [] { return true; };
  EXPECT_EQ(exec.Run(limits), StopReason::kStopped);
  // Nothing beyond the bootstrap edge was explored.
  EXPECT_EQ(exec.graph().NumEdges(), 1u);
}

TEST_F(ExecutorTest, UpdateLogConsistent) {
  MiniTrace trace = MakeMiniTrace(CostModel{});
  SimClock clock;
  Executor exec(Ctx(trace, kUnconstrained, &clock), &clock, 8);
  size_t callback_updates = 0;
  RunLimits limits;
  limits.on_update = [&](const UpdateBatch&) { callback_updates++; };
  exec.Run(limits);

  const UpdateLog& log = exec.update_log();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.size(), callback_updates);
  TimeMicros prev = log.run_start();
  size_t total_edges = 1;  // the bootstrap (alert) edge
  for (const UpdateBatch& b : log.batches()) {
    EXPECT_GE(b.sim_time, prev);
    prev = b.sim_time;
    total_edges += b.new_edges;
    EXPECT_EQ(b.total_edges, total_edges);
  }
  EXPECT_EQ(total_edges, exec.graph().NumEdges());
  // Waiting times are all non-negative and as many as updates.
  const auto waits = log.WaitingTimesSeconds();
  EXPECT_EQ(waits.size(), log.size());
  for (double w : waits) EXPECT_GE(w, 0.0);
}

TEST_F(ExecutorTest, StatsAccounting) {
  Executor exec(Ctx(trace_, kUnconstrained, &clock_), &clock_, 8);
  exec.Run({});
  // Every closure edge except the bootstrap one was added by a scan.
  EXPECT_EQ(exec.stats().events_added, MiniTrace::kClosureEdges - 1);
  EXPECT_GT(exec.stats().work_units, 0u);
  // late_file's read was filtered by nothing (it is simply outside every
  // window), so events_filtered only counts nothing here.
  EXPECT_EQ(exec.stats().events_filtered, 0u);
}

TEST_F(ExecutorTest, HostFilterExcludesOtherHosts) {
  // Host constraint matching a different host: nothing beyond bootstrap.
  auto ctx = ResolveContext(
      *trace_.store, Spec("in \"otherhost\" backward ip x[] -> *"), &clock_,
      trace_.store->Get(trace_.alert_event));
  ASSERT_TRUE(ctx.ok());
  Executor exec(std::move(ctx.value()), &clock_, 8);
  exec.Run({});
  EXPECT_EQ(exec.graph().NumEdges(), 1u);  // only the alert edge
}

TEST_F(ExecutorTest, TimeRangeNarrowsClosure) {
  // Only events at t >= 40 are inside the range (epoch-based micros are
  // tiny numbers here, so use the store span check indirectly: resolve
  // with an explicit override range via the spec is impractical with
  // date-granularity literals; instead verify the ts clamp using the
  // store bounds).
  const TrackingContext ctx = Ctx(trace_, kUnconstrained, &clock_);
  EXPECT_EQ(ctx.ts, trace_.store->MinTime());
  EXPECT_EQ(ctx.te, trace_.store->MaxTime() + 1);
}

TEST_F(ExecutorTest, BaselineRespectsFiltersToo) {
  SimClock clock;
  BaselineExecutor baseline(
      Ctx(trace_, "backward ip x[] -> * where file.path != \"*.dll\"",
          &clock),
      &clock);
  EXPECT_EQ(baseline.Run({}), StopReason::kCompleted);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(baseline.graph().HasNode(trace_.dll[i]));
  }
  EXPECT_EQ(baseline.graph().NumEdges(), MiniTrace::kClosureEdges - 3);
}

TEST_F(ExecutorTest, ResolveContextFindsStartByPattern) {
  // No override: the start pattern must locate the alert itself.
  auto ctx = ResolveContext(
      *trace_.store,
      Spec("backward ip x[dst_ip = \"185.220.101.45\" and subject_name = "
           "\"java.exe\"] -> *"),
      &clock_);
  ASSERT_TRUE(ctx.ok()) << ctx.status();
  EXPECT_EQ(ctx->start_event.id, trace_.alert_event);
  EXPECT_EQ(ctx->start_node, trace_.ext_sock);
}

TEST_F(ExecutorTest, ResolveContextNotFound) {
  auto ctx = ResolveContext(
      *trace_.store, Spec("backward ip x[dst_ip = \"9.9.9.9\"] -> *"),
      &clock_);
  EXPECT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace aptrace
