// Distributed fabric, in-process layer: the shard-RPC codec, endpoint
// grammar, ShardService dispatch, and ShardClient failure taxonomy —
// everything below the process boundary (dist_fabric_test.cc covers real
// daemons). The robustness cases pin the typed DST-E00x contract: garbage
// frames, truncated payloads, identity mismatches at connect, and dead
// endpoints each map to their documented code, never a hang or a crash.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dist/dist_error.h"
#include "dist/remote_backend.h"
#include "dist/shard_client.h"
#include "dist/shard_codec.h"
#include "dist/shard_service.h"
#include "service/json.h"
#include "service/server.h"
#include "storage/columnar_backend.h"
#include "storage/row_store_backend.h"

namespace aptrace::dist {
namespace {

Event TestEvent(uint64_t i) {
  Event e;
  e.subject = 100 + i;
  e.object = 200 + (i % 7);
  e.timestamp = static_cast<TimeMicros>(10 * i + 5);
  e.amount = 64 * (i + 1);
  e.action = (i % 2) != 0u ? ActionType::kWrite : ActionType::kRead;
  e.direction = ActionDefaultDirection(e.action);
  e.host = static_cast<HostId>(i % 3);
  e.id = i;
  return e;
}

void ExpectSameEvent(const Event& a, const Event& b) {
  EXPECT_EQ(a.subject, b.subject);
  EXPECT_EQ(a.object, b.object);
  EXPECT_EQ(a.timestamp, b.timestamp);
  EXPECT_EQ(a.amount, b.amount);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.direction, b.direction);
  EXPECT_EQ(a.host, b.host);
}

// ---------------------------------------------------------------- codec

TEST(ShardCodec, Base64RoundTripsArbitraryBytes) {
  std::string bytes;
  for (int i = 0; i < 257; ++i) bytes.push_back(static_cast<char>(i % 256));
  for (size_t len : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4},
                     size_t{255}, bytes.size()}) {
    const std::string in = bytes.substr(0, len);
    auto out = Base64Decode(Base64Encode(in));
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_EQ(out.value(), in) << "len=" << len;
  }
}

TEST(ShardCodec, Base64RejectsGarbage) {
  for (const char* bad : {"a", "ab!=", "====", "AAA\x01", "AB=C", "A==="}) {
    EXPECT_FALSE(Base64Decode(bad).ok()) << bad;
  }
}

TEST(ShardCodec, EventsRoundTrip) {
  std::vector<Event> events;
  for (uint64_t i = 0; i < 37; ++i) events.push_back(TestEvent(i));
  const std::string bytes = EncodeEvents(events);
  EXPECT_EQ(bytes.size(), events.size() * kShardEventBytes);
  auto decoded = DecodeEvents(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    ExpectSameEvent(decoded.value()[i], events[i]);
  }
}

TEST(ShardCodec, RowsRoundTripWithLocalIds) {
  std::vector<Event> rows;
  for (uint64_t i = 0; i < 11; ++i) {
    Event e = TestEvent(i);
    e.id = 1000 + 3 * i;  // sparse lids survive the trip
    rows.push_back(e);
  }
  auto decoded = DecodeRows(EncodeRows(rows));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].id, rows[i].id);
    ExpectSameEvent(decoded.value()[i], rows[i]);
  }
}

TEST(ShardCodec, TruncatedPayloadsAreRejected) {
  const std::string rows = EncodeRows({TestEvent(1), TestEvent(2)});
  EXPECT_FALSE(DecodeRows(rows.substr(0, rows.size() - 1)).ok());
  const std::string events = EncodeEvents({TestEvent(1)});
  EXPECT_FALSE(DecodeEvents(events.substr(1)).ok());
  EXPECT_FALSE(DecodeU64s("1234567").ok());  // 7 bytes
}

TEST(ShardCodec, U64sRoundTrip) {
  const std::vector<uint64_t> values = {0, 1, ~uint64_t{0}, 42, 1u << 31};
  auto decoded = DecodeU64s(EncodeU64s(values));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), values);
}

// ------------------------------------------------------------ endpoints

TEST(ShardEndpoints, ParsesTcpUnixAndBarePaths) {
  auto tcp = ParseShardEndpoint("127.0.0.1:9000");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp->host, "127.0.0.1");
  EXPECT_EQ(tcp->port, 9000);
  EXPECT_TRUE(tcp->unix_path.empty());
  EXPECT_EQ(tcp->ToString(), "127.0.0.1:9000");

  auto uds = ParseShardEndpoint("unix:/tmp/shard0.sock");
  ASSERT_TRUE(uds.ok());
  EXPECT_EQ(uds->unix_path, "/tmp/shard0.sock");
  EXPECT_EQ(uds->ToString(), "unix:/tmp/shard0.sock");

  auto bare = ParseShardEndpoint("/var/run/shard1.sock");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->unix_path, "/var/run/shard1.sock");
}

TEST(ShardEndpoints, RejectsMalformedEntries) {
  for (const char* bad :
       {"", "localhost", "host:", "host:0", "host:65536", "host:abc",
        "unix:", ":9000"}) {
    EXPECT_FALSE(ParseShardEndpoint(bad).ok()) << "'" << bad << "'";
  }
}

TEST(ShardEndpoints, CsvSplitsAndSkipsEmpties) {
  auto eps =
      ParseShardEndpoints("127.0.0.1:9000, localhost:9001 ,unix:/tmp/s2");
  ASSERT_TRUE(eps.ok()) << eps.status();
  ASSERT_EQ(eps->size(), 3u);
  EXPECT_EQ((*eps)[0].port, 9000);
  EXPECT_EQ((*eps)[1].host, "localhost");
  EXPECT_EQ((*eps)[2].unix_path, "/tmp/s2");
  EXPECT_FALSE(ParseShardEndpoints("").ok());
  EXPECT_FALSE(ParseShardEndpoints(",,").ok());
  EXPECT_FALSE(ParseShardEndpoints("127.0.0.1:9000,bogus").ok());
}

// --------------------------------------------------------- ShardService

class ShardServiceTest : public testing::Test {
 protected:
  ShardServiceTest()
      : service_(7,
                 std::make_unique<RowStoreBackend>(CostModel{},
                                                   /*partition_micros=*/50)) {}

  service::JsonValue Handle(const std::string& line) {
    bool shutdown = false;
    auto parsed = service::ParseJson(service_.HandleLine(line, &shutdown));
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    return parsed.ok() ? std::move(parsed.value()) : service::JsonValue{};
  }

  std::string AppendRequest(const std::vector<Event>& events,
                            uint64_t first_lid) {
    obs::JsonDict d;
    d.Add("op", "shard.append");
    d.Add("rows", Base64Encode(EncodeEvents(events)));
    d.Add("count", static_cast<uint64_t>(events.size()));
    d.Add("first_lid", first_lid);
    return d.Str();
  }

  ShardService service_;
};

TEST_F(ShardServiceTest, HelloAdvertisesIdentity) {
  const auto resp = Handle("{\"op\":\"shard.hello\"}");
  EXPECT_TRUE(resp.GetBool("ok"));
  EXPECT_EQ(resp.GetString("proto"), kShardProto);
  EXPECT_EQ(resp.GetUint("shard"), 7u);
  EXPECT_EQ(resp.GetString("backend"), "row");
  EXPECT_EQ(resp.GetUint("events"), 0u);
  EXPECT_FALSE(resp.GetBool("sealed", true));
}

TEST_F(ShardServiceTest, AppendSealCollectRoundTrip) {
  std::vector<Event> events;
  for (uint64_t i = 0; i < 20; ++i) events.push_back(TestEvent(i));
  const auto appended = Handle(AppendRequest(events, 0));
  ASSERT_TRUE(appended.GetBool("ok")) << appended.GetString("error");
  EXPECT_EQ(appended.GetUint("appended"), events.size());

  const auto sealed = Handle("{\"op\":\"shard.seal\"}");
  ASSERT_TRUE(sealed.GetBool("ok"));
  EXPECT_EQ(sealed.GetUint("events"), events.size());

  // Collect must agree with a local backend fed the same rows.
  RowStoreBackend local(CostModel{}, 50);
  for (const Event& e : events) local.Append(e);
  local.Seal();
  const RangeScanBatch want = local.CollectDest(events[3].FlowDest(), 0, 500);

  obs::JsonDict req;
  req.Add("op", "shard.collect_dest");
  req.Add("key", static_cast<uint64_t>(events[3].FlowDest()));
  req.Add("begin", int64_t{0});
  req.Add("end", int64_t{500});
  const auto resp = Handle(req.Str());
  ASSERT_TRUE(resp.GetBool("ok")) << resp.GetString("error");
  auto bytes = Base64Decode(resp.GetString("rows"));
  ASSERT_TRUE(bytes.ok());
  auto rows = DecodeRows(bytes.value());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), want.rows.size());
  EXPECT_EQ(resp.GetUint("count"), want.rows.size());
  EXPECT_EQ(resp.GetUint("probed"), want.partitions_probed);
  for (size_t i = 0; i < want.rows.size(); ++i) {
    EXPECT_EQ(rows.value()[i].id, want.rows[i]);
    ExpectSameEvent(rows.value()[i],
                    events[static_cast<size_t>(want.rows[i])]);
  }
}

TEST_F(ShardServiceTest, AppendLidMismatchIsTypedE007) {
  const auto resp = Handle(AppendRequest({TestEvent(0)}, /*first_lid=*/5));
  EXPECT_FALSE(resp.GetBool("ok", true));
  EXPECT_EQ(resp.GetString("code"), kDistErrAppend);
}

TEST_F(ShardServiceTest, MalformedFramesAreTypedE003) {
  // Garbage, non-object, unknown op, missing payload, count mismatch,
  // truncated base64 — each a DST-E003, none a crash.
  for (const std::string& line :
       {std::string("not json at all"), std::string("[1,2,3]"),
        std::string("{\"op\":\"shard.bogus\"}"),
        std::string("{\"op\":\"shard.append\",\"count\":1}"),
        std::string("{\"op\":\"shard.append\",\"rows\":\"AAAA\","
                    "\"count\":7,\"first_lid\":0}"),
        std::string("{\"op\":\"shard.fetch\",\"lids\":\"!!!\","
                    "\"count\":1}")}) {
    bool shutdown = false;
    auto parsed =
        service::ParseJson(service_.HandleLine(line, &shutdown));
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_FALSE(parsed->GetBool("ok", true)) << line;
    EXPECT_EQ(parsed->GetString("code"), kDistErrProtocol) << line;
  }
}

TEST_F(ShardServiceTest, FetchOfUnknownLidIsTyped) {
  ASSERT_TRUE(Handle(AppendRequest({TestEvent(0)}, 0)).GetBool("ok"));
  obs::JsonDict req;
  req.Add("op", "shard.fetch");
  req.Add("lids", Base64Encode(EncodeU64s({99})));
  req.Add("count", uint64_t{1});
  const auto resp = Handle(req.Str());
  EXPECT_FALSE(resp.GetBool("ok", true));
  EXPECT_EQ(resp.GetString("code"), kDistErrProtocol);
}

TEST_F(ShardServiceTest, ShutdownOpRequestsDrain) {
  bool shutdown = false;
  service_.HandleLine("{\"op\":\"shard.shutdown\"}", &shutdown);
  EXPECT_TRUE(shutdown);
}

// ----------------------------------------------------- ShardClient (TCP)

/// One in-process shard daemon: a real service::Server (ephemeral TCP)
/// around a ShardService — the full wire path without fork/exec.
class InProcessShardd {
 public:
  explicit InProcessShardd(uint32_t shard,
                           StorageBackendKind kind = StorageBackendKind::kRow)
      : service_(shard, MakeBackend(kind)),
        server_(
            [this](const std::string& line, bool* shutdown) {
              return service_.HandleLine(line, shutdown);
            },
            nullptr, Options()) {
    auto s = server_.Start();
    EXPECT_TRUE(s.ok()) << s;
  }
  ~InProcessShardd() { server_.Shutdown(); }

  ShardEndpoint endpoint() const {
    ShardEndpoint ep;
    ep.host = "127.0.0.1";
    ep.port = server_.port();
    return ep;
  }
  ShardService& service() { return service_; }

 private:
  static std::unique_ptr<StorageBackend> MakeBackend(
      StorageBackendKind kind) {
    if (kind == StorageBackendKind::kColumnar) {
      return std::make_unique<ColumnarSegmentBackend>(CostModel{}, 16);
    }
    return std::make_unique<RowStoreBackend>(CostModel{}, 50);
  }
  static service::ServerOptions Options() {
    service::ServerOptions o;
    o.tcp_port = 0;
    return o;
  }
  ShardService service_;
  service::Server server_;
};

ShardClientOptions FastFail() {
  ShardClientOptions o;
  o.deadline_micros = 2'000'000;
  o.max_attempts = 2;
  o.retry_backoff_micros = 1'000;
  return o;
}

TEST(ShardClient, CallRoundTripsOverTcp) {
  InProcessShardd shardd(3);
  ShardClient client(shardd.endpoint(), 3, StorageBackendKind::kRow,
                     FastFail());
  const auto hello = client.Call("shard.hello");
  EXPECT_EQ(hello.GetUint("shard"), 3u);
  // The pooled connection is reused; a second call still answers.
  const auto snap = client.Call("shard.snapshot");
  EXPECT_EQ(snap.GetUint("events"), 0u);
}

TEST(ShardClient, WrongShardIdentityIsE004AndNeverRetried) {
  InProcessShardd shardd(0);
  // The client expects shard 1; the daemon at this endpoint is shard 0 —
  // a miswired fleet must fail the handshake, not serve crossed data.
  ShardClient client(shardd.endpoint(), 1, StorageBackendKind::kRow,
                     FastFail());
  try {
    client.Call("shard.hello");
    FAIL() << "expected DistError";
  } catch (const DistError& e) {
    EXPECT_EQ(e.code(), std::string(kDistErrIdentity)) << e.what();
  }
}

TEST(ShardClient, WrongBackendIdentityIsE004) {
  InProcessShardd shardd(2, StorageBackendKind::kColumnar);
  ShardClient client(shardd.endpoint(), 2, StorageBackendKind::kRow,
                     FastFail());
  try {
    client.Call("shard.hello");
    FAIL() << "expected DistError";
  } catch (const DistError& e) {
    EXPECT_EQ(e.code(), std::string(kDistErrIdentity)) << e.what();
  }
}

TEST(ShardClient, EventCountPinMismatchIsE004) {
  InProcessShardd shardd(4);
  ShardClientOptions options = FastFail();
  options.expect_events = 123;  // the daemon is empty
  ShardClient client(shardd.endpoint(), 4, StorageBackendKind::kRow,
                     options);
  try {
    client.Call("shard.hello");
    FAIL() << "expected DistError";
  } catch (const DistError& e) {
    EXPECT_EQ(e.code(), std::string(kDistErrIdentity)) << e.what();
  }
}

TEST(ShardClient, DeadEndpointExhaustsRetriesToE005) {
  // Bind an ephemeral port, note it, close it: dialing it now refuses.
  ShardEndpoint dead;
  dead.host = "127.0.0.1";
  {
    InProcessShardd ephemeral(0);
    dead.port = ephemeral.endpoint().port;
  }
  ShardClient client(dead, 0, StorageBackendKind::kRow, FastFail());
  try {
    client.Call("shard.hello");
    FAIL() << "expected DistError";
  } catch (const DistError& e) {
    EXPECT_EQ(e.code(), std::string(kDistErrUnavailable)) << e.what();
    EXPECT_NE(std::string(e.what()).find("2 attempt"), std::string::npos)
        << e.what();
  }
}

TEST(ShardClient, RemoteOpErrorPropagatesWithoutRetry) {
  InProcessShardd shardd(5);
  ShardClient client(shardd.endpoint(), 5, StorageBackendKind::kRow,
                     FastFail());
  obs::JsonDict req;
  req.Add("rows", Base64Encode(EncodeEvents({TestEvent(0)})));
  req.Add("count", uint64_t{1});
  req.Add("first_lid", uint64_t{9});  // shard is empty: lid mismatch
  try {
    client.Call("shard.append", req);
    FAIL() << "expected DistError";
  } catch (const DistError& e) {
    EXPECT_EQ(e.code(), std::string(kDistErrAppend)) << e.what();
  }
}

// ----------------------------------------------- RemoteShardBackend

TEST(RemoteShardBackend, MirrorsALocalBackendExactly) {
  InProcessShardd shardd(1);
  auto client = std::make_shared<ShardClient>(
      shardd.endpoint(), 1, StorageBackendKind::kRow, FastFail());
  RemoteShardBackend remote(client, StorageBackendKind::kRow, CostModel{});
  RowStoreBackend local(CostModel{}, 50);

  std::vector<Event> events;
  for (uint64_t i = 0; i < 600; ++i) events.push_back(TestEvent(i));
  for (const Event& e : events) {
    EXPECT_EQ(remote.Append(e), local.Append(e));
  }
  remote.Seal();
  local.Seal();
  ASSERT_EQ(remote.NumEvents(), local.NumEvents());

  for (const Event& probe : {events[3], events[17], events[599]}) {
    const RangeScanBatch a =
        remote.CollectDest(probe.FlowDest(), 0, 10'000);
    const RangeScanBatch b = local.CollectDest(probe.FlowDest(), 0, 10'000);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.partitions_probed, b.partitions_probed);
    const RangeScanBatch c = remote.CollectSrc(probe.FlowSource(), 0, 3000);
    const RangeScanBatch d = local.CollectSrc(probe.FlowSource(), 0, 3000);
    EXPECT_EQ(c.rows, d.rows);
  }
  const RangeScanBatch a = remote.CollectRange(100, 4000);
  const RangeScanBatch b = local.CollectRange(100, 4000);
  EXPECT_EQ(a.rows, b.rows);

  for (const EventId lid : {EventId{0}, EventId{57}, EventId{599}}) {
    ExpectSameEvent(remote.Get(lid), local.Get(lid));
  }
  EXPECT_EQ(remote.HasIncomingWrite(events[0].FlowDest(), 0, 10'000),
            local.HasIncomingWrite(events[0].FlowDest(), 0, 10'000));
  EXPECT_EQ(remote.FlowDestsOf(events[0].FlowSource(), 0, 10'000),
            local.FlowDestsOf(events[0].FlowSource(), 0, 10'000));
}

}  // namespace
}  // namespace aptrace::dist
