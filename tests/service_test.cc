// Tests for the multi-session service layer (src/service/): session
// lifecycle, admission control, budgets, backpressure, cancellation,
// live ingestion on both storage backends, fair-share scheduling, and
// checkpoint/resume of daemon-hosted sessions — including a full
// protocol-level daemon "restart" over a unix socket.

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "graph/json_writer.h"
#include "service/json.h"
#include "service/server.h"
#include "service/session_manager.h"
#include "tests/random_trace_util.h"
#include "tests/test_trace.h"
#include "util/clock.h"

namespace aptrace::service {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

/// The reference a hosted session must match byte-for-byte: the same
/// script run to completion through a plain Session (what `aptrace run`
/// does), finalized with the same prune.
std::string DirectRunGraph(const EventStore& store, const std::string& script,
                           int scan_threads,
                           std::optional<Event> start_override) {
  SimClock clock;
  SessionOptions options;
  options.scan_threads = scan_threads;
  Session session(&store, &clock, options);
  EXPECT_TRUE(session.Start(script, start_override).ok());
  auto reason = session.Step();
  EXPECT_TRUE(reason.ok());
  EXPECT_TRUE(session.Finish(/*prune_to_matched_paths=*/true).ok());
  std::ostringstream os;
  WriteGraphJson(session.graph(), store.catalog(), os);
  return os.str();
}

/// Spins until `pred` holds or `timeout_micros` of wall time passes.
bool WaitFor(const std::function<bool()>& pred, uint64_t timeout_micros) {
  const TimeMicros deadline = MonotonicNowMicros() + timeout_micros;
  while (!pred()) {
    if (MonotonicNowMicros() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

constexpr uint64_t kWaitMicros = 30'000'000;  // generous CI timeout

TEST(ServiceTest, HostedSessionMatchesDirectRun) {
  MiniTrace t = MakeMiniTrace();
  const std::string script = "backward ip x[dst_ip = \"185.220.101.45\"] -> *";
  const std::string expected =
      DirectRunGraph(*t.store, script, 1, std::nullopt);

  SessionManager manager(t.store.get(), ServiceLimits{});
  auto id = manager.Open(script, {});
  ASSERT_TRUE(id.ok()) << id.status();
  ASSERT_TRUE(manager.WaitAllTerminal(kWaitMicros));

  auto poll = manager.Poll(id.value(), 0, 0);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(poll->state, SessionState::kDone);
  EXPECT_TRUE(poll->terminal);
  EXPECT_EQ(poll->detail, "completed");
  EXPECT_FALSE(poll->batches.empty());
  EXPECT_TRUE(poll->snapshot.exhausted);

  auto graph = manager.GraphJson(id.value());
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value(), expected);

  const ServiceStats stats = manager.stats();
  EXPECT_EQ(stats.opened_total, 1u);
  EXPECT_EQ(stats.done, 1u);
  EXPECT_EQ(stats.live, 0u);
  EXPECT_GT(stats.quanta_total, 0u);
}

TEST(ServiceTest, PollCursorAcksAndRedelivers) {
  MiniTrace t = MakeMiniTrace();
  SessionManager manager(t.store.get(), ServiceLimits{});
  auto id = manager.Open("backward ip x[dst_ip = \"185.220.101.45\"] -> *", {});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(manager.WaitAllTerminal(kWaitMicros));

  auto first = manager.Poll(id.value(), 0, 2);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->batches.size(), 2u);
  EXPECT_EQ(first->batches[0].seq, 0u);
  EXPECT_EQ(first->next_cursor, 2u);

  // Unacked batches are redelivered; acked ones are dropped for good.
  auto again = manager.Poll(id.value(), 0, 2);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->batches.size(), 2u);
  EXPECT_EQ(again->batches[0].seq, 0u);

  auto after_ack = manager.Poll(id.value(), 2, 0);
  ASSERT_TRUE(after_ack.ok());
  if (!after_ack->batches.empty()) {
    EXPECT_GE(after_ack->batches[0].seq, 2u);
  }
  EXPECT_FALSE(manager.Poll(999, 0, 0).ok());  // SRV-E003
}

TEST(ServiceTest, AdmissionCapRejectsWithE002) {
  RandomTrace t = MakeRandomTrace(11, 400);
  ServiceLimits limits;
  limits.max_live_sessions = 1;
  limits.update_buffer_cap = 1;  // the first session stalls, staying live
  SessionManager manager(t.store.get(), limits);

  OpenOptions opts;
  opts.start_event = t.alert.id;
  auto first = manager.Open(UnconstrainedScript(t), opts);
  ASSERT_TRUE(first.ok()) << first.status();

  // Wait until the session actually occupies its slot mid-run.
  ASSERT_TRUE(WaitFor(
      [&] {
        auto p = manager.Poll(first.value(), 0, 0);
        return p.ok() && !p->batches.empty();
      },
      kWaitMicros));

  auto second = manager.Open(UnconstrainedScript(t), opts);
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.status().message().find("SRV-E002"), std::string::npos);
  EXPECT_EQ(manager.stats().admission_rejected_total, 1u);

  // Draining the buffer lets the first session finish, freeing the slot.
  uint64_t cursor = 0;
  ASSERT_TRUE(WaitFor(
      [&] {
        auto p = manager.Poll(first.value(), cursor, 0);
        if (!p.ok()) return false;
        cursor = p->next_cursor;
        return p->terminal;
      },
      kWaitMicros));
  auto third = manager.Open(UnconstrainedScript(t), opts);
  EXPECT_TRUE(third.ok()) << third.status();
}

TEST(ServiceTest, WindowBudgetTerminatesSession) {
  RandomTrace t = MakeRandomTrace(12, 400);
  SessionManager manager(t.store.get(), ServiceLimits{});
  OpenOptions opts;
  opts.start_event = t.alert.id;
  opts.window_budget = 3;
  auto id = manager.Open(UnconstrainedScript(t), opts);
  ASSERT_TRUE(id.ok()) << id.status();
  ASSERT_TRUE(manager.WaitAllTerminal(kWaitMicros));

  auto poll = manager.Poll(id.value(), 0, 0);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(poll->state, SessionState::kBudget);
  EXPECT_EQ(poll->detail, "window_budget_exhausted");
  EXPECT_EQ(manager.stats().budget_exhausted, 1u);
  // The partial graph is frozen and still serveable.
  EXPECT_TRUE(manager.GraphJson(id.value()).ok());
}

TEST(ServiceTest, SimBudgetTerminatesSession) {
  // The mini trace with the paper's cost model: every window consumes
  // simulated time, so a tiny budget trips on the first quantum.
  MiniTrace t = MakeMiniTrace(CostModel{});
  SessionManager manager(t.store.get(), ServiceLimits{});
  OpenOptions opts;
  opts.sim_budget = 1;
  auto id = manager.Open("backward ip x[dst_ip = \"185.220.101.45\"] -> *", opts);
  ASSERT_TRUE(id.ok()) << id.status();
  ASSERT_TRUE(manager.WaitAllTerminal(kWaitMicros));

  auto poll = manager.Poll(id.value(), 0, 0);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(poll->state, SessionState::kBudget);
  EXPECT_EQ(poll->detail, "sim_budget_exhausted");
}

TEST(ServiceTest, BackpressureStallsUntilPolled) {
  RandomTrace t = MakeRandomTrace(13, 400);
  ServiceLimits limits;
  limits.update_buffer_cap = 1;
  SessionManager manager(t.store.get(), limits);
  const std::string expected =
      DirectRunGraph(*t.store, UnconstrainedScript(t), 1, t.alert);

  OpenOptions opts;
  opts.start_event = t.alert.id;
  auto id = manager.Open(UnconstrainedScript(t), opts);
  ASSERT_TRUE(id.ok()) << id.status();

  // With nobody polling, the scheduler parks the session on its full
  // buffer instead of burning the machine.
  ASSERT_TRUE(WaitFor(
      [&] { return manager.stats().backpressure_stalls_total > 0; },
      kWaitMicros));
  EXPECT_EQ(manager.stats().live, 1u);

  // A polling client drains the buffer batch by batch; the run then
  // completes and the result is unchanged by all the stalling.
  uint64_t cursor = 0;
  ASSERT_TRUE(WaitFor(
      [&] {
        auto p = manager.Poll(id.value(), cursor, 0);
        if (!p.ok()) return false;
        cursor = p->next_cursor;
        return p->terminal;
      },
      kWaitMicros));
  auto graph = manager.GraphJson(id.value());
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value(), expected);
}

TEST(ServiceTest, CancelFinalizesStalledAndRunningSessions) {
  RandomTrace t = MakeRandomTrace(14, 400);
  ServiceLimits limits;
  limits.update_buffer_cap = 1;
  SessionManager manager(t.store.get(), limits);
  OpenOptions opts;
  opts.start_event = t.alert.id;
  auto id = manager.Open(UnconstrainedScript(t), opts);
  ASSERT_TRUE(id.ok());

  // Park it on backpressure first so Cancel exercises the off-CPU path.
  ASSERT_TRUE(WaitFor(
      [&] { return manager.stats().backpressure_stalls_total > 0; },
      kWaitMicros));
  ASSERT_TRUE(manager.Cancel(id.value()).ok());
  auto poll = manager.Poll(id.value(), 0, 0);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(poll->state, SessionState::kCancelled);
  EXPECT_TRUE(poll->terminal);
  EXPECT_EQ(manager.stats().cancelled, 1u);
  EXPECT_EQ(manager.stats().live, 0u);

  // Cancelling again (or a terminal session) is a no-op, not an error.
  EXPECT_TRUE(manager.Cancel(id.value()).ok());
  // The partial graph survives for post-mortem fetches.
  EXPECT_TRUE(manager.GraphJson(id.value()).ok());
  EXPECT_FALSE(manager.Cancel(999).ok());  // SRV-E003
}

TEST(ServiceTest, IngestAppendsOnBothBackends) {
  for (const StorageBackendKind backend :
       {StorageBackendKind::kRow, StorageBackendKind::kColumnar}) {
    SCOPED_TRACE(StorageBackendName(backend));
    RandomTrace t = MakeRandomTrace(15, 200, backend);
    const size_t before = t.store->NumEvents();
    SessionManager manager(t.store.get(), ServiceLimits{});

    // Valid live events (they reference existing catalog objects).
    std::vector<Event> batch;
    for (int i = 0; i < 5; ++i) {
      Event e = t.events[static_cast<size_t>(i)];
      e.timestamp += 50000;  // arrives after the sealed history
      batch.push_back(e);
    }
    auto accepted = manager.Ingest(batch);
    ASSERT_TRUE(accepted.ok()) << accepted.status();
    EXPECT_EQ(accepted.value().accepted, 5u);
    EXPECT_EQ(accepted.value().wal_seq, 0u);  // no WAL attached
    ASSERT_TRUE(WaitFor(
        [&] { return manager.stats().ingested_total == 5; }, kWaitMicros));
    EXPECT_EQ(t.store->NumEvents(), before + 5);
    EXPECT_EQ(manager.stats().ingest_queue_depth, 0u);

    // One invalid row poisons the whole batch — nothing lands.
    std::vector<Event> bad = batch;
    bad[2].subject = 1u << 30;
    auto rejected = manager.Ingest(bad);
    ASSERT_FALSE(rejected.ok());
    EXPECT_NE(rejected.status().message().find("SRV-E007"),
              std::string::npos);
    EXPECT_EQ(t.store->NumEvents(), before + 5);
    EXPECT_EQ(manager.stats().ingest_rejected_total, 5u);

    // A session opened after the append can reach the new events.
    OpenOptions opts;
    opts.start_event = t.alert.id;
    auto id = manager.Open(UnconstrainedScript(t), opts);
    ASSERT_TRUE(id.ok()) << id.status();
    ASSERT_TRUE(manager.WaitAllTerminal(kWaitMicros));
    EXPECT_TRUE(manager.GraphJson(id.value()).ok());
  }
}

TEST(ServiceTest, IngestQueueCapRejectsOversizedBatch) {
  RandomTrace t = MakeRandomTrace(16, 100);
  ServiceLimits limits;
  limits.ingest_queue_cap = 3;
  SessionManager manager(t.store.get(), limits);
  std::vector<Event> batch(4, t.events[0]);
  auto r = manager.Ingest(batch);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("SRV-E007"), std::string::npos);
}

TEST(ServiceTest, DrainRejectsNewWorkAndStaysCheckpointable) {
  RandomTrace t = MakeRandomTrace(17, 400);
  ServiceLimits limits;
  limits.update_buffer_cap = 1;  // keep the session live across the drain
  SessionManager manager(t.store.get(), limits);
  OpenOptions opts;
  opts.start_event = t.alert.id;
  auto id = manager.Open(UnconstrainedScript(t), opts);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(WaitFor(
      [&] { return manager.stats().backpressure_stalls_total > 0; },
      kWaitMicros));

  manager.Stop();
  EXPECT_TRUE(manager.draining());
  auto refused = manager.Open(UnconstrainedScript(t), opts);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.status().message().find("SRV-E008"), std::string::npos);
  auto no_ingest = manager.Ingest({t.events[0]});
  ASSERT_FALSE(no_ingest.ok());
  EXPECT_NE(no_ingest.status().message().find("SRV-E008"),
            std::string::npos);

  // The paused session is still intact: its graph is serveable and it
  // can be persisted for a later daemon to resume.
  EXPECT_TRUE(manager.GraphJson(id.value()).ok());
  const std::string path =
      testing::TempDir() + "aptrace_service_drain.ckpt";
  EXPECT_TRUE(manager.Checkpoint(id.value(), path).ok());
  unlink(path.c_str());
}

TEST(ServiceTest, CheckpointResumeMatchesUninterruptedRun) {
  RandomTrace t = MakeRandomTrace(18, 400);
  const std::string script = UnconstrainedScript(t);
  const std::string expected = DirectRunGraph(*t.store, script, 1, t.alert);
  const std::string path =
      testing::TempDir() + "aptrace_service_resume.ckpt";

  // First daemon: run partway (the tiny buffer stalls it), checkpoint.
  {
    ServiceLimits limits;
    limits.update_buffer_cap = 1;
    SessionManager manager(t.store.get(), limits);
    OpenOptions opts;
    opts.start_event = t.alert.id;
    auto id = manager.Open(script, opts);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(WaitFor(
        [&] { return manager.stats().backpressure_stalls_total > 0; },
        kWaitMicros));
    ASSERT_TRUE(manager.Checkpoint(id.value(), path).ok());
    // Checkpointing a terminal session is SRV-E005.
    ASSERT_TRUE(manager.Cancel(id.value()).ok());
    auto st = manager.Checkpoint(id.value(), path + ".2");
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("SRV-E005"), std::string::npos);
  }

  // Second daemon (same sealed store): resume and run to completion.
  {
    SessionManager manager(t.store.get(), ServiceLimits{});
    auto id = manager.Resume(path, {});
    ASSERT_TRUE(id.ok()) << id.status();
    ASSERT_TRUE(manager.WaitAllTerminal(kWaitMicros));
    auto poll = manager.Poll(id.value(), 0, 0);
    ASSERT_TRUE(poll.ok());
    EXPECT_EQ(poll->state, SessionState::kDone);
    auto graph = manager.GraphJson(id.value());
    ASSERT_TRUE(graph.ok());
    EXPECT_EQ(graph.value(), expected);

    auto bad = manager.Resume(path + ".missing", {});
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("SRV-E009"), std::string::npos);
  }
  unlink(path.c_str());
}

TEST(ServiceTest, FairShareServesSmallSessionsUnderALargeOne) {
  // One 10x-larger session plus three small ones: fair-share must hand
  // every small session its first update batch long before the large
  // session finishes (the multi-tenant responsiveness claim).
  RandomTrace t = MakeRandomTrace(19, 2000);
  SessionManager manager(t.store.get(), ServiceLimits{});
  OpenOptions opts;
  opts.start_event = t.alert.id;

  auto large = manager.Open(UnconstrainedScript(t), opts);
  ASSERT_TRUE(large.ok()) << large.status();
  std::vector<uint64_t> small_ids;
  for (int i = 0; i < 3; ++i) {
    auto id = manager.Open(UnconstrainedScript(t) + " where hop <= 1", opts);
    ASSERT_TRUE(id.ok()) << id.status();
    small_ids.push_back(id.value());
  }

  // A small session counts as served once it has produced an update
  // batch or finished outright — either way the scheduler gave it CPU
  // while the large closure was still grinding.
  std::vector<bool> small_served(small_ids.size(), false);
  bool large_done = false;
  ASSERT_TRUE(WaitFor(
      [&] {
        for (size_t i = 0; i < small_ids.size(); ++i) {
          if (small_served[i]) continue;
          auto p = manager.Poll(small_ids[i], 0, 1);
          if (p.ok() && (!p->batches.empty() || p->terminal)) {
            small_served[i] = true;
          }
        }
        auto p = manager.Poll(large.value(), 0, 1);
        if (p.ok() && p->terminal) large_done = true;
        return large_done;
      },
      kWaitMicros));
  for (size_t i = 0; i < small_ids.size(); ++i) {
    EXPECT_TRUE(small_served[i])
        << "small session " << small_ids[i]
        << " saw no service before the large session completed";
  }
  ASSERT_TRUE(manager.WaitAllTerminal(kWaitMicros));
}

TEST(ServiceTest, ProfileReconcilesWithEngineTotals) {
  MiniTrace t = MakeMiniTrace(CostModel{});
  SessionManager manager(t.store.get(), ServiceLimits{});
  auto id = manager.Open("backward ip x[dst_ip = \"185.220.101.45\"] -> *", {});
  ASSERT_TRUE(id.ok()) << id.status();
  ASSERT_TRUE(manager.WaitAllTerminal(kWaitMicros));

  auto prof = manager.Profile(id.value());
  ASSERT_TRUE(prof.ok()) << prof.status();
  auto parsed = ParseJson(prof->profile_json);
  ASSERT_TRUE(parsed.ok()) << prof->profile_json;
  const JsonValue& p = parsed.value();
  const JsonValue* total = p.Find("total");
  ASSERT_NE(total, nullptr);

  // Every window is charged to exactly one bucket on each axis, so each
  // axis must sum to the total on every deterministic column.
  for (const char* axis : {"by_hop", "by_state"}) {
    const JsonValue* buckets = p.Find(axis);
    ASSERT_NE(buckets, nullptr);
    ASSERT_TRUE(buckets->IsArray());
    for (const char* col :
         {"windows", "rows", "rows_filtered", "partitions_probed",
          "segments_pruned", "edges", "sim_cost_micros", "wall_micros"}) {
      uint64_t sum = 0;
      for (const JsonValue& b : buckets->items) sum += b.GetUint(col);
      EXPECT_EQ(sum, total->GetUint(col)) << axis << "." << col;
    }
  }
  // The profile reconciles with the engine's own independent accounting:
  // simulated cost against the scan-overlap model's accumulator, window
  // count against the scheduler's work units.
  EXPECT_GT(total->GetUint("windows"), 0u);
  EXPECT_EQ(total->GetUint("sim_cost_micros"), prof->scan_cost_micros);
  EXPECT_EQ(total->GetUint("windows"), prof->work_units);
  EXPECT_FALSE(prof->probe_unit.empty());

  auto missing = manager.Profile(999);
  ASSERT_FALSE(missing.ok());  // SRV-E003
  EXPECT_NE(missing.status().message().find("SRV-E003"), std::string::npos);
}

TEST(ServiceTest, SlowQueryLogsDumpsAndCountsExactlyOnce) {
  MiniTrace t = MakeMiniTrace();
  const std::string flight_dir =
      testing::TempDir() + "aptrace_flight_test";
  mkdir(flight_dir.c_str(), 0755);
  ServiceLimits limits;
  limits.slow_query_micros = 1;  // any real quantum crosses this
  limits.flight_dump_dir = flight_dir;

  testing::internal::CaptureStderr();
  uint64_t session_id = 0;
  uint64_t slow_total = 0;
  uint64_t dump_total = 0;
  {
    SessionManager manager(t.store.get(), limits);
    auto id =
        manager.Open("backward ip x[dst_ip = \"185.220.101.45\"] -> *", {});
    if (id.ok()) session_id = id.value();
    const bool terminal = id.ok() && manager.WaitAllTerminal(kWaitMicros);
    // The dump happens after the terminal state publishes; wait it out.
    const bool dumped = terminal &&
        WaitFor([&] { return manager.stats().flight_dumps_total >= 1; },
                kWaitMicros);
    slow_total = manager.stats().slow_queries_total;
    dump_total = manager.stats().flight_dumps_total;
    EXPECT_TRUE(dumped);
  }
  const std::string err = testing::internal::GetCapturedStderr();

  // The latch fires once per session no matter how many quanta follow:
  // one counter tick, one dump, one structured warning line.
  EXPECT_EQ(slow_total, 1u);
  EXPECT_EQ(dump_total, 1u);
  size_t log_lines = 0;
  for (size_t pos = 0;
       (pos = err.find("slow_query session=", pos)) != std::string::npos;
       ++pos) {
    ++log_lines;
  }
  EXPECT_EQ(log_lines, 1u) << err;
  EXPECT_NE(err.find("threshold_micros=1"), std::string::npos) << err;

  const std::string dump_path = flight_dir + "/flight-" +
                                std::to_string(session_id) +
                                "-slow-query.json";
  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good()) << dump_path;
  std::stringstream body;
  body << dump.rdbuf();
  EXPECT_NE(body.str().find("\"traceEvents\":["), std::string::npos);
  unlink(dump_path.c_str());
}

// ------------------------------------------------- protocol-level restart

/// Minimal blocking line client for the in-test daemon.
class TestClient {
 public:
  explicit TestClient(const std::string& socket_path) {
    fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) close(fd_);
  }
  bool connected() const { return connected_; }

  JsonValue Call(const std::string& request) {
    const std::string line = request + "\n";
    EXPECT_EQ(send(fd_, line.data(), line.size(), 0),
              static_cast<ssize_t>(line.size()));
    size_t nl;
    while ((nl = buffer_.find('\n')) == std::string::npos) {
      char buf[4096];
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        ADD_FAILURE() << "daemon closed the connection";
        return {};
      }
      buffer_.append(buf, static_cast<size_t>(n));
    }
    const std::string response = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    auto parsed = ParseJson(response);
    EXPECT_TRUE(parsed.ok()) << response;
    return parsed.ok() ? std::move(parsed.value()) : JsonValue{};
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

TEST(ServiceServerTest, CheckpointRestartResumeOverProtocol) {
  MiniTrace t = MakeMiniTrace();
  const std::string script = "backward ip x[dst_ip = \"185.220.101.45\"] -> *";
  // The same script with its quotes escaped for splicing into a JSON
  // request line.
  const std::string script_json =
      "backward ip x[dst_ip = \\\"185.220.101.45\\\"] -> *";
  const std::string expected =
      DirectRunGraph(*t.store, script, 1, std::nullopt);
  const std::string socket_path =
      testing::TempDir() + "aptrace_svc_test.sock";
  const std::string ckpt_path =
      testing::TempDir() + "aptrace_svc_test.ckpt";

  // Daemon #1: open a session, stall it, checkpoint it, shut down.
  {
    ServiceLimits limits;
    limits.update_buffer_cap = 1;
    SessionManager manager(t.store.get(), limits);
    ServerOptions options;
    options.unix_socket_path = socket_path;
    Server server(&manager, options);
    ASSERT_TRUE(server.Start().ok());

    TestClient client(socket_path);
    ASSERT_TRUE(client.connected());
    const JsonValue opened =
        client.Call("{\"op\":\"open\",\"bdl\":\"" + script_json + "\"}");
    ASSERT_TRUE(opened.GetBool("ok")) << opened.GetString("error");
    const uint64_t id = opened.GetUint("session");
    ASSERT_TRUE(WaitFor(
        [&] { return manager.stats().backpressure_stalls_total > 0; },
        kWaitMicros));

    const JsonValue ckpt = client.Call(
        "{\"op\":\"checkpoint\",\"session\":" + std::to_string(id) +
        ",\"path\":\"" + ckpt_path + "\"}");
    ASSERT_TRUE(ckpt.GetBool("ok")) << ckpt.GetString("error");

    const JsonValue bye = client.Call("{\"op\":\"shutdown\"}");
    EXPECT_TRUE(bye.GetBool("draining"));
    server.Shutdown();
  }

  // Daemon #2 on the same socket path: resume the checkpoint, poll to
  // completion, and fetch a graph identical to the uninterrupted run.
  {
    SessionManager manager(t.store.get(), ServiceLimits{});
    ServerOptions options;
    options.unix_socket_path = socket_path;
    Server server(&manager, options);
    ASSERT_TRUE(server.Start().ok());

    TestClient client(socket_path);
    ASSERT_TRUE(client.connected());
    const JsonValue resumed = client.Call(
        "{\"op\":\"resume\",\"path\":\"" + ckpt_path + "\"}");
    ASSERT_TRUE(resumed.GetBool("ok")) << resumed.GetString("error");
    const uint64_t id = resumed.GetUint("session");

    uint64_t cursor = 0;
    ASSERT_TRUE(WaitFor(
        [&] {
          const JsonValue p = client.Call(
              "{\"op\":\"poll\",\"session\":" + std::to_string(id) +
              ",\"cursor\":" + std::to_string(cursor) + "}");
          if (!p.GetBool("ok")) return false;
          cursor = p.GetUint("next_cursor", cursor);
          return p.GetBool("terminal");
        },
        kWaitMicros));

    const JsonValue graph = client.Call(
        "{\"op\":\"graph\",\"session\":" + std::to_string(id) + "}");
    ASSERT_TRUE(graph.GetBool("ok"));
    EXPECT_EQ(graph.GetString("graph"), expected);
    server.Shutdown();
  }
  unlink(ckpt_path.c_str());
}

TEST(ServiceServerTest, GracefulShutdownUnderLoad) {
  // Several live (stalled) sessions plus a connected client: the drain
  // must answer the shutdown op, stop the scheduler, and tear down with
  // no leaks or races (ASan/TSan legs run this test).
  RandomTrace t = MakeRandomTrace(20, 600);
  ServiceLimits limits;
  limits.update_buffer_cap = 1;
  SessionManager manager(t.store.get(), limits);
  const std::string socket_path =
      testing::TempDir() + "aptrace_svc_load.sock";
  ServerOptions options;
  options.unix_socket_path = socket_path;
  Server server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(socket_path);
  ASSERT_TRUE(client.connected());
  std::string open_request = "{\"op\":\"open\",\"bdl\":\"" +
                             UnconstrainedScript(t) +
                             "\",\"start_event\":" +
                             std::to_string(t.alert.id) + "}";
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.Call(open_request).GetBool("ok"));
  }
  const JsonValue bye = client.Call("{\"op\":\"shutdown\"}");
  EXPECT_TRUE(bye.GetBool("draining"));
  server.Shutdown();  // joins everything; sanitizers verify the rest
}

}  // namespace
}  // namespace aptrace::service
