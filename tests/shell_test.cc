// The interactive shell, driven through its stream interface.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "tests/test_trace.h"
#include "tools/aptrace_shell.h"

namespace aptrace::tools {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

std::string Drive(EventStore* store, const std::string& commands) {
  std::istringstream in(commands);
  std::ostringstream out;
  EXPECT_EQ(RunShell(store, in, out), 0);
  return out.str();
}

class ShellTest : public testing::Test {
 protected:
  MiniTrace trace_ = MakeMiniTrace();
};

TEST_F(ShellTest, HelpAndQuit) {
  const std::string out = Drive(trace_.store.get(), "help\nquit\n");
  EXPECT_NE(out.find("commands:"), std::string::npos);
  EXPECT_NE(out.find("refine <file.bdl>"), std::string::npos);
}

TEST_F(ShellTest, UnknownCommandReported) {
  const std::string out = Drive(trace_.store.get(), "frobnicate\nquit\n");
  EXPECT_NE(out.find("unknown command 'frobnicate'"), std::string::npos);
}

TEST_F(ShellTest, CommandsRequireAnalysis) {
  const std::string out =
      Drive(trace_.store.get(), "step\nstatus\npath 3\ndot x\nquit\n");
  // Every one of them refuses politely.
  size_t count = 0;
  for (size_t pos = 0;
       (pos = out.find("no analysis running", pos)) != std::string::npos;
       ++pos) {
    count++;
  }
  EXPECT_EQ(count, 4u);
}

TEST_F(ShellTest, FromStepStatusPath) {
  const std::string commands =
      "from " + std::to_string(trace_.alert_event) +
      "\nrun\nstatus\npath " + std::to_string(trace_.mail_sock) + "\nquit\n";
  const std::string out = Drive(trace_.store.get(), commands);
  EXPECT_NE(out.find("tracking backward from event"), std::string::npos);
  EXPECT_NE(out.find("completed;"), std::string::npos);
  EXPECT_NE(out.find("graph: 11 events / 10 nodes"), std::string::npos);
  // The causal chain to the mail socket prints every hop.
  EXPECT_NE(out.find("outlook.exe"), std::string::npos);
  EXPECT_NE(out.find("198.51.100.9"), std::string::npos);
}

TEST_F(ShellTest, FromRejectsBadEventIds) {
  const std::string out =
      Drive(trace_.store.get(), "from 999999\nfrom notanumber\nquit\n");
  EXPECT_NE(out.find("need a valid event id"), std::string::npos);
}

TEST_F(ShellTest, StartAndRefineFromFiles) {
  const std::string v1 = ::testing::TempDir() + "/shell_v1.bdl";
  const std::string v2 = ::testing::TempDir() + "/shell_v2.bdl";
  {
    std::ofstream f(v1);
    f << "backward ip x[dst_ip = \"185.220.101.45\"] -> *\n";
  }
  {
    std::ofstream f(v2);
    f << "backward ip x[dst_ip = \"185.220.101.45\"] -> * where file.path "
         "!= \"*.dll\"\n";
  }
  const std::string out = Drive(
      trace_.store.get(),
      "start " + v1 + "\nstep 2\nrefine " + v2 + "\nrun\nstatus\nquit\n");
  EXPECT_NE(out.find("refiner: reuse"), std::string::npos);
  // 11-edge closure minus the 3 dll reads.
  EXPECT_NE(out.find("graph: 8 events"), std::string::npos);
  std::remove(v1.c_str());
  std::remove(v2.c_str());
}

TEST_F(ShellTest, AlertsListsDetections) {
  const std::string out = Drive(trace_.store.get(), "alerts 0\nquit\n");
  EXPECT_NE(out.find("alerts (training before"), std::string::npos);
}

TEST_F(ShellTest, ExportsAndCheckpoints) {
  const std::string dot = ::testing::TempDir() + "/shell_graph.dot";
  const std::string sum = ::testing::TempDir() + "/shell_summary.dot";
  const std::string ckpt = ::testing::TempDir() + "/shell.ckpt";
  const std::string commands = "from " + std::to_string(trace_.alert_event) +
                               "\nrun\ndot " + dot + "\nsummary " + sum +
                               "\nsave " + ckpt + "\nquit\n";
  const std::string out = Drive(trace_.store.get(), commands);
  EXPECT_NE(out.find("written to " + dot), std::string::npos);
  EXPECT_NE(out.find("groups hide"), std::string::npos);
  EXPECT_NE(out.find("checkpoint written"), std::string::npos);

  // A second shell resumes from the checkpoint.
  const std::string out2 =
      Drive(trace_.store.get(), "load " + ckpt + "\nstatus\nquit\n");
  EXPECT_NE(out2.find("resumed from"), std::string::npos);
  EXPECT_NE(out2.find("graph: 11 events"), std::string::npos);
  std::remove(dot.c_str());
  std::remove(sum.c_str());
  std::remove(ckpt.c_str());
}

TEST_F(ShellTest, FmtPrintsCanonicalScript) {
  const std::string out =
      Drive(trace_.store.get(),
            "from " + std::to_string(trace_.alert_event) + "\nfmt\nquit\n");
  EXPECT_NE(out.find("backward ip x[] -> *"), std::string::npos);
}

}  // namespace
}  // namespace aptrace::tools
