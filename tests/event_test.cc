#include <gtest/gtest.h>

#include "event/catalog.h"
#include "event/event.h"
#include "event/object.h"
#include "event/schema.h"
#include "util/string_util.h"

namespace aptrace {
namespace {

class EventModelTest : public testing::Test {
 protected:
  void SetUp() override {
    host_ = catalog_.InternHost("desktop1");
    proc_ = catalog_.AddProcess(host_, {.exename = "java.exe",
                                        .pid = 4121,
                                        .start_time = 1000});
    file_ = catalog_.AddFile(
        host_, {.path = "C://Users/victim/Documents/report.doc",
                .creation_time = 500,
                .last_modification_time = 900,
                .last_access_time = 950});
    ip_ = catalog_.AddIp(host_, {.src_ip = "10.1.0.1",
                                 .dst_ip = "185.220.101.45",
                                 .dst_port = 443,
                                 .start_time = 2000});
  }

  ObjectCatalog catalog_;
  HostId host_ = kInvalidHostId;
  ObjectId proc_ = kInvalidObjectId;
  ObjectId file_ = kInvalidObjectId;
  ObjectId ip_ = kInvalidObjectId;
};

TEST_F(EventModelTest, CatalogInternsHosts) {
  EXPECT_EQ(catalog_.InternHost("desktop1"), host_);
  const HostId other = catalog_.InternHost("desktop2");
  EXPECT_NE(other, host_);
  EXPECT_EQ(catalog_.HostName(host_), "desktop1");
  EXPECT_EQ(catalog_.NumHosts(), 2u);
  EXPECT_EQ(catalog_.HostName(999), "?");
}

// The out-of-range sentinel is a per-class constant, not a per-instance
// member: the reference stays valid after the catalog that returned it
// is gone, and every catalog returns the same object.
TEST(CatalogBoundsTest, OutOfRangeHostNameIsSharedConstant) {
  const std::string* sentinel = nullptr;
  {
    ObjectCatalog temp;
    sentinel = &temp.HostName(12345);
    EXPECT_EQ(*sentinel, "?");
  }
  EXPECT_EQ(*sentinel, "?");  // not dangling: outlives the catalog
  ObjectCatalog other;
  EXPECT_EQ(&other.HostName(999), sentinel);
  EXPECT_EQ(other.HostName(0), "?");  // empty catalog: every id is out of range
}

TEST_F(EventModelTest, ObjectAccessors) {
  const SystemObject& p = catalog_.Get(proc_);
  EXPECT_TRUE(p.is_process());
  EXPECT_EQ(p.process().exename, "java.exe");
  EXPECT_EQ(p.Label(), "proc:java.exe(4121)");

  const SystemObject& f = catalog_.Get(file_);
  EXPECT_TRUE(f.is_file());
  EXPECT_EQ(f.file().Filename(), "report.doc");

  const SystemObject& i = catalog_.Get(ip_);
  EXPECT_TRUE(i.is_ip());
  EXPECT_EQ(i.Label(), "ip:10.1.0.1->185.220.101.45:443");
}

TEST_F(EventModelTest, FilenameHandlesBackslashAndBare) {
  const ObjectId f1 = catalog_.AddFile(
      host_, {.path = "C:\\Windows\\System32\\user32.dll"});
  EXPECT_EQ(catalog_.Get(f1).file().Filename(), "user32.dll");
  const ObjectId f2 = catalog_.AddFile(host_, {.path = "plain.txt"});
  EXPECT_EQ(catalog_.Get(f2).file().Filename(), "plain.txt");
}

TEST_F(EventModelTest, CatalogFinders) {
  EXPECT_EQ(catalog_.FindProcessesByName("java.exe").size(), 1u);
  EXPECT_TRUE(catalog_.FindProcessesByName("nope.exe").empty());
  EXPECT_EQ(catalog_.FindFilesByPath(
                    "C://Users/victim/Documents/report.doc")
                .size(),
            1u);
  EXPECT_EQ(catalog_.FindIpsByDst("185.220.101.45").size(), 1u);
}

TEST_F(EventModelTest, FlowEndpointsFollowDirection) {
  Event write;  // proc writes file: data flows proc -> file
  write.subject = proc_;
  write.object = file_;
  write.action = ActionType::kWrite;
  write.direction = ActionDefaultDirection(ActionType::kWrite);
  EXPECT_EQ(write.FlowSource(), proc_);
  EXPECT_EQ(write.FlowDest(), file_);

  Event read;  // proc reads file: data flows file -> proc
  read.subject = proc_;
  read.object = file_;
  read.action = ActionType::kRead;
  read.direction = ActionDefaultDirection(ActionType::kRead);
  EXPECT_EQ(read.FlowSource(), file_);
  EXPECT_EQ(read.FlowDest(), proc_);
}

TEST_F(EventModelTest, BackwardDependencyDefinition) {
  // A: file -> proc (read) at t=10; B: proc -> ip (connect) at t=20.
  Event a;
  a.subject = proc_;
  a.object = file_;
  a.timestamp = 10;
  a.action = ActionType::kRead;
  a.direction = FlowDirection::kObjectToSubject;
  Event b;
  b.subject = proc_;
  b.object = ip_;
  b.timestamp = 20;
  b.action = ActionType::kConnect;
  b.direction = FlowDirection::kSubjectToObject;

  EXPECT_TRUE(BackwardDependsOn(b, a));   // dest(A)=proc = source(B)
  EXPECT_FALSE(BackwardDependsOn(a, b));  // wrong temporal order
  b.timestamp = 5;
  EXPECT_FALSE(BackwardDependsOn(b, a));  // A must precede B
}

TEST_F(EventModelTest, ActionDirectionTable) {
  EXPECT_EQ(ActionDefaultDirection(ActionType::kRead),
            FlowDirection::kObjectToSubject);
  EXPECT_EQ(ActionDefaultDirection(ActionType::kAccept),
            FlowDirection::kObjectToSubject);
  for (ActionType a : {ActionType::kWrite, ActionType::kStart,
                       ActionType::kConnect, ActionType::kInject,
                       ActionType::kRename, ActionType::kDelete}) {
    EXPECT_EQ(ActionDefaultDirection(a), FlowDirection::kSubjectToObject);
  }
}

// ---------------------------------------------------------------- Schema

TEST_F(EventModelTest, ResolveFieldScoped) {
  auto f = ResolveField(ObjectType::kProcess, "exename");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value(), FieldId::kExename);

  // Wrong scope is rejected with a helpful message.
  auto bad = ResolveField(ObjectType::kFile, "exename");
  EXPECT_FALSE(bad.ok());

  // Shared options resolve under any scope.
  for (ObjectType t : {ObjectType::kProcess, ObjectType::kFile,
                       ObjectType::kIp}) {
    EXPECT_TRUE(ResolveField(t, "subject_name").ok());
    EXPECT_TRUE(ResolveField(t, "event_time").ok());
  }
}

TEST_F(EventModelTest, ResolveFieldCaseInsensitiveAndAliases) {
  EXPECT_TRUE(ResolveField(std::nullopt, "EXENAME").ok());
  auto dstip = ResolveField(ObjectType::kIp, "dstip");
  ASSERT_TRUE(dstip.ok());
  EXPECT_EQ(dstip.value(), FieldId::kDstIp);
  EXPECT_FALSE(ResolveField(std::nullopt, "no_such_field").ok());
}

TEST_F(EventModelTest, ReadFieldObjectLevel) {
  const SystemObject& p = catalog_.Get(proc_);
  auto v = ReadField(FieldId::kExename, p, nullptr, catalog_, nullptr);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::get<std::string>(*v), "java.exe");

  auto host = ReadField(FieldId::kHost, p, nullptr, catalog_, nullptr);
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(std::get<std::string>(*host), "desktop1");

  // Inapplicable field -> nullopt, not a crash.
  EXPECT_FALSE(
      ReadField(FieldId::kPath, p, nullptr, catalog_, nullptr).has_value());
}

TEST_F(EventModelTest, ReadFieldEventLevel) {
  Event e;
  e.id = 77;
  e.subject = proc_;
  e.object = file_;
  e.timestamp = 1234;
  e.amount = 555;
  e.action = ActionType::kWrite;
  e.direction = FlowDirection::kSubjectToObject;

  const SystemObject& f = catalog_.Get(file_);
  auto name = ReadField(FieldId::kSubjectName, f, &e, catalog_, nullptr);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(std::get<std::string>(*name), "java.exe");

  auto action = ReadField(FieldId::kActionType, f, &e, catalog_, nullptr);
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(std::get<std::string>(*action), "write");

  auto amount = ReadField(FieldId::kAmount, f, &e, catalog_, nullptr);
  ASSERT_TRUE(amount.has_value());
  EXPECT_EQ(std::get<int64_t>(*amount), 555);

  // Event-level field without an event -> nullopt.
  EXPECT_FALSE(
      ReadField(FieldId::kEventTime, f, nullptr, catalog_, nullptr)
          .has_value());
}

class FakeDerived : public DerivedAttrs {
 public:
  bool IsReadOnly(ObjectId) const override { return true; }
  bool IsWriteThrough(ObjectId) const override { return false; }
};

TEST_F(EventModelTest, ReadFieldDerived) {
  FakeDerived derived;
  const SystemObject& f = catalog_.Get(file_);
  auto ro = ReadField(FieldId::kIsReadOnly, f, nullptr, catalog_, &derived);
  ASSERT_TRUE(ro.has_value());
  EXPECT_TRUE(std::get<bool>(*ro));
  // No provider -> nullopt.
  EXPECT_FALSE(ReadField(FieldId::kIsReadOnly, f, nullptr, catalog_, nullptr)
                   .has_value());
  // Derived attr on the wrong type -> nullopt.
  const SystemObject& p = catalog_.Get(proc_);
  EXPECT_FALSE(ReadField(FieldId::kIsReadOnly, p, nullptr, catalog_, &derived)
                   .has_value());
}

}  // namespace
}  // namespace aptrace
