#include <gtest/gtest.h>

#include <unordered_map>

#include "bdl/analyzer.h"
#include "core/context.h"
#include "workload/enterprise.h"
#include "workload/noise.h"
#include "workload/scenario.h"
#include "workload/trace_builder.h"

namespace aptrace::workload {
namespace {

TEST(TraceBuilderTest, ObjectsAndEvents) {
  EventStore store;
  TraceBuilder b(&store);
  const HostId h = b.Host("h1");
  const ObjectId proc = b.Proc(h, "app.exe", 100);
  const ObjectId file = b.File(h, "/data/x", 100);
  const ObjectId sock = b.Socket(h, "10.0.0.1", "10.0.0.2", 443, 100);

  const EventId read = b.Read(proc, file, 200, 4096);
  const EventId conn = b.Connect(proc, sock, 300);
  store.Seal();

  const Event& e1 = store.Get(read);
  EXPECT_EQ(e1.FlowSource(), file);
  EXPECT_EQ(e1.FlowDest(), proc);
  EXPECT_EQ(e1.amount, 4096u);
  EXPECT_EQ(e1.host, h);
  const Event& e2 = store.Get(conn);
  EXPECT_EQ(e2.FlowSource(), proc);
  EXPECT_EQ(e2.FlowDest(), sock);

  const ObjectId child = b.StartProcess(proc, h, "child.exe", 400);
  EXPECT_TRUE(store.catalog().Get(child).is_process());
}

TEST(NoiseGeneratorTest, SetupHostBuildsFixtures) {
  EventStore store;
  TraceBuilder b(&store);
  Rng rng(1);
  const TraceConfig config = TraceConfig::Small();
  NoiseGenerator noise(&b, config, &rng);
  const HostEnv env = noise.SetupHost("desktop1", /*is_windows=*/true);

  EXPECT_EQ(store.catalog().HostName(env.host), "desktop1");
  EXPECT_NE(env.shell, kInvalidObjectId);
  EXPECT_EQ(store.catalog().Get(env.shell).process().exename,
            "explorer.exe");
  EXPECT_EQ(static_cast<int>(env.dll_pool.size()), config.dll_pool_size);
  EXPECT_EQ(static_cast<int>(env.doc_pool.size()), config.doc_pool_size);
  EXPECT_FALSE(env.hot_files.empty());
  EXPECT_FALSE(env.services.empty());
}

TEST(NoiseGeneratorTest, BackgroundStaysInWindowAndIsDeterministic) {
  auto build = [] {
    auto store = std::make_unique<EventStore>();
    TraceBuilder b(store.get());
    Rng rng(7);
    const TraceConfig config = TraceConfig::Small();
    NoiseGenerator noise(&b, config, &rng);
    HostEnv env = noise.SetupHost("h", true);
    noise.GenerateBackground(env, config.start_time, config.end_time());
    store->Seal();
    return store;
  };
  auto s1 = build();
  auto s2 = build();
  ASSERT_GT(s1->NumEvents(), 100u);
  ASSERT_EQ(s1->NumEvents(), s2->NumEvents());
  for (size_t i = 0; i < s1->NumEvents(); i += 17) {
    EXPECT_EQ(s1->Get(i).timestamp, s2->Get(i).timestamp);
    EXPECT_EQ(s1->Get(i).subject, s2->Get(i).subject);
  }
  const TraceConfig config = TraceConfig::Small();
  EXPECT_GE(s1->MinTime(), config.start_time);
  EXPECT_LT(s1->MaxTime(), config.end_time());
}

TEST(EnterpriseTraceTest, ShapeAndHeavyTail) {
  TraceConfig config = TraceConfig::Small();
  config.num_hosts = 4;
  auto store = BuildEnterpriseTrace(config);
  ASSERT_TRUE(store->sealed());
  ASSERT_GT(store->NumEvents(), 1000u);
  EXPECT_EQ(store->catalog().NumHosts(), 4u);

  // Heavy-tailed fan-in: the hottest object's dependent count dwarfs the
  // median.
  std::unordered_map<ObjectId, size_t> in_degree;
  for (size_t i = 0; i < store->NumEvents(); ++i) {
    in_degree[store->Get(i).FlowDest()]++;
  }
  size_t max_deg = 0;
  size_t total = 0;
  for (const auto& [id, deg] : in_degree) {
    (void)id;
    max_deg = std::max(max_deg, deg);
    total += deg;
  }
  const double mean_deg = static_cast<double>(total) / in_degree.size();
  EXPECT_GT(static_cast<double>(max_deg), 20 * mean_deg);
}

TEST(EnterpriseTraceTest, SampleAnomalyEventsDeterministic) {
  TraceConfig config = TraceConfig::Small();
  config.num_hosts = 3;
  auto store = BuildEnterpriseTrace(config);
  const auto a = SampleAnomalyEvents(*store, 20, 99);
  const auto b = SampleAnomalyEvents(*store, 20, 99);
  ASSERT_EQ(a.size(), 20u);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  const auto c = SampleAnomalyEvents(*store, 20, 100);
  bool any_diff = false;
  for (size_t i = 0; i < c.size(); ++i) any_diff |= (a[i].id != c[i].id);
  EXPECT_TRUE(any_diff);
}

TEST(EnterpriseTraceTest, GenericSpecResolvesAgainstSampledAlert) {
  TraceConfig config = TraceConfig::Small();
  config.num_hosts = 3;
  auto store = BuildEnterpriseTrace(config);
  const auto alerts = SampleAnomalyEvents(*store, 5, 42);
  for (const Event& alert : alerts) {
    const bdl::TrackingSpec spec = GenericSpecFor(*store, alert);
    ASSERT_FALSE(spec.chain.empty());
    SimClock clock;
    auto ctx = ResolveContext(*store, spec, &clock, alert);
    ASSERT_TRUE(ctx.ok()) << ctx.status();
    EXPECT_EQ(ctx->start_event.id, alert.id);
    EXPECT_EQ(ctx->start_node, alert.FlowDest());
  }
}

TEST(ScenarioTest, RegistryListsFiveCases) {
  const auto names = AttackCaseNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_FALSE(BuildAttackCase("bogus", TraceConfig::Small()).ok());
}

class ScenarioBuildTest : public testing::TestWithParam<std::string> {};

TEST_P(ScenarioBuildTest, BuildsConsistentCase) {
  TraceConfig config = TraceConfig::Small();
  auto built = BuildAttackCase(GetParam(), config);
  ASSERT_TRUE(built.ok()) << built.status();
  const AttackScenario& s = built->scenario;
  EventStore& store = *built->store;

  ASSERT_TRUE(store.sealed());
  EXPECT_GT(store.NumEvents(), 500u);
  EXPECT_EQ(s.name, GetParam());
  ASSERT_NE(s.alert_event, kInvalidEventId);
  EXPECT_EQ(store.Get(s.alert_event).id, s.alert.id);
  EXPECT_GE(s.bdl_scripts.size(), 2u);
  EXPECT_GE(s.num_heuristics, 2u);
  ASSERT_FALSE(s.ground_truth.empty());
  EXPECT_NE(s.penetration_point, kInvalidObjectId);
  for (ObjectId id : s.ground_truth) {
    ASSERT_LT(id, store.catalog().size());
  }

  // Every script in the refinement sequence compiles...
  for (const std::string& script : s.bdl_scripts) {
    auto spec = bdl::CompileBdl(script);
    EXPECT_TRUE(spec.ok()) << spec.status() << "\n" << script;
  }
  // ...and the first script's starting-point pattern locates exactly the
  // staged alert without any override.
  SimClock clock;
  auto spec = bdl::CompileBdl(s.bdl_scripts[0]);
  ASSERT_TRUE(spec.ok());
  auto ctx = ResolveContext(store, std::move(spec.value()), &clock);
  ASSERT_TRUE(ctx.ok()) << ctx.status();
  EXPECT_EQ(ctx->start_event.id, s.alert_event);
}

INSTANTIATE_TEST_SUITE_P(AllCases, ScenarioBuildTest,
                         testing::ValuesIn(AttackCaseNames()));

}  // namespace
}  // namespace aptrace::workload
