// Checkpoint/restore of paused investigations: saving mid-run and
// resuming (in a fresh Session, as another process would) must produce
// exactly the state and final results of an uninterrupted run.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <string>

#include "core/engine.h"
#include "tests/test_trace.h"
#include "util/rng.h"
#include "workload/scenario.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

std::set<EventId> EdgeSet(const DepGraph& g) {
  std::set<EventId> out;
  g.ForEachEdge([&](const DepGraph::Edge& e) { out.insert(e.event); });
  return out;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CheckpointTest, SaveBeforeStartFails) {
  MiniTrace t = MakeMiniTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  EXPECT_FALSE(session.SaveCheckpoint(TempPath("x.ckpt")).ok());
}

TEST(CheckpointTest, BaselineEngineRefuses) {
  MiniTrace t = MakeMiniTrace();
  SimClock clock;
  SessionOptions options;
  options.use_baseline = true;
  Session session(t.store.get(), &clock, options);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> *",
                         t.store->Get(t.alert_event))
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());
  EXPECT_FALSE(session.SaveCheckpoint(TempPath("x.ckpt")).ok());
}

TEST(CheckpointTest, MidRunRoundTripMatchesUninterrupted) {
  const std::string path = TempPath("mini.ckpt");
  MiniTrace t = MakeMiniTrace(CostModel{});  // real cost: elapsed matters

  // Uninterrupted reference.
  SimClock c_ref;
  Session reference(t.store.get(), &c_ref);
  ASSERT_TRUE(reference
                  .Start("backward ip x[] -> * where file.path != \"*.dll\"",
                         t.store->Get(t.alert_event))
                  .ok());
  ASSERT_TRUE(reference.Step({}).ok());

  // Pause after one update, checkpoint, resume in a fresh session.
  SimClock c1;
  Session first(t.store.get(), &c1);
  ASSERT_TRUE(first
                  .Start("backward ip x[] -> * where file.path != \"*.dll\"",
                         t.store->Get(t.alert_event))
                  .ok());
  RunLimits pause;
  pause.max_updates = 1;
  ASSERT_TRUE(first.Step(pause).ok());
  const size_t paused_edges = first.graph().NumEdges();
  const TimeMicros paused_clock = c1.NowMicros();
  ASSERT_TRUE(first.SaveCheckpoint(path).ok());

  SimClock c2;
  Session resumed(t.store.get(), &c2);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok()) << path;
  // The restored session picks up exactly where the first paused.
  EXPECT_EQ(resumed.graph().NumEdges(), paused_edges);
  EXPECT_EQ(c2.NowMicros(), paused_clock);
  EXPECT_EQ(EdgeSet(resumed.graph()), EdgeSet(first.graph()));

  auto reason = resumed.Step({});
  ASSERT_TRUE(reason.ok());
  EXPECT_EQ(reason.value(), StopReason::kCompleted);
  EXPECT_EQ(EdgeSet(resumed.graph()), EdgeSet(reference.graph()));
  // Total simulated time matches the uninterrupted run.
  EXPECT_EQ(c2.NowMicros(), c_ref.NowMicros());
  std::remove(path.c_str());
}

TEST(CheckpointTest, RandomPausePointsStillConverge) {
  const std::string path = TempPath("rand.ckpt");
  MiniTrace t = MakeMiniTrace();
  Rng rng(5);
  // Reference edge set.
  SimClock c_ref;
  Session reference(t.store.get(), &c_ref);
  ASSERT_TRUE(reference
                  .Start("backward ip x[] -> *",
                         t.store->Get(t.alert_event))
                  .ok());
  ASSERT_TRUE(reference.Step({}).ok());

  for (int trial = 0; trial < 4; ++trial) {
    SimClock c1;
    Session first(t.store.get(), &c1);
    ASSERT_TRUE(first
                    .Start("backward ip x[] -> *",
                           t.store->Get(t.alert_event))
                    .ok());
    RunLimits pause;
    pause.max_updates = 1 + rng.Uniform(4);
    (void)first.Step(pause);
    ASSERT_TRUE(first.SaveCheckpoint(path).ok());

    SimClock c2;
    Session resumed(t.store.get(), &c2);
    ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
    ASSERT_TRUE(resumed.Step({}).ok());
    EXPECT_EQ(EdgeSet(resumed.graph()), EdgeSet(reference.graph()))
        << "trial " << trial;
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RefinementAfterRestoreWorks) {
  const std::string path = TempPath("refine.ckpt");
  MiniTrace t = MakeMiniTrace();
  SimClock c1;
  Session first(t.store.get(), &c1);
  ASSERT_TRUE(first
                  .Start("backward ip x[] -> *",
                         t.store->Get(t.alert_event))
                  .ok());
  RunLimits pause;
  pause.max_updates = 2;
  (void)first.Step(pause);
  ASSERT_TRUE(first.SaveCheckpoint(path).ok());

  SimClock c2;
  Session resumed(t.store.get(), &c2);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
  ASSERT_TRUE(resumed
                  .UpdateScript(
                      "backward ip x[] -> * where file.path != \"*.dll\"")
                  .ok());
  EXPECT_EQ(resumed.last_refine_action(), RefineAction::kReuse);
  ASSERT_TRUE(resumed.Step({}).ok());
  EXPECT_EQ(resumed.graph().NumEdges(), MiniTrace::kClosureEdges - 3);
  std::remove(path.c_str());
}

TEST(CheckpointTest, WrongTraceRejected) {
  const std::string path = TempPath("wrong.ckpt");
  MiniTrace t = MakeMiniTrace();
  SimClock c1;
  Session first(t.store.get(), &c1);
  ASSERT_TRUE(first
                  .Start("backward ip x[] -> *",
                         t.store->Get(t.alert_event))
                  .ok());
  ASSERT_TRUE(first.Step({}).ok());
  ASSERT_TRUE(first.SaveCheckpoint(path).ok());

  // A different (bigger, shifted) trace: the fingerprint must reject it.
  auto other = workload::BuildAttackCase("shellshock",
                                         workload::TraceConfig::Small());
  ASSERT_TRUE(other.ok());
  SimClock c2;
  Session resumed(other->store.get(), &c2);
  EXPECT_FALSE(resumed.LoadCheckpoint(path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, DurableMarkRoundTripsAndRejectsALossyStore) {
  const std::string path = TempPath("mark.ckpt");
  MiniTrace t = MakeMiniTrace();
  // A live-ingested tail on top of the sealed history — the events a
  // durable daemon would have acked into its WAL.
  for (int i = 0; i < 3; ++i) {
    Event e = t.store->Get(t.alert_event);
    e.timestamp += 1000 + i;
    t.store->Append(e);
  }

  SimClock c1;
  Session first(t.store.get(), &c1);
  ASSERT_TRUE(first
                  .Start("backward ip x[] -> *",
                         t.store->Get(t.alert_event))
                  .ok());
  RunLimits pause;
  pause.max_updates = 1;
  ASSERT_TRUE(first.Step(pause).ok());

  CheckpointDurableMark mark;
  mark.store_events = t.store->NumEvents();
  mark.wal_seq = 7;
  ASSERT_TRUE(first.SaveCheckpoint(path, &mark).ok());

  // The mark is a "D" record in the file.
  {
    std::ifstream f(path);
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    const std::string want =
        "\nD\t" + std::to_string(t.store->NumEvents()) + "\t7\n";
    EXPECT_NE(text.find(want), std::string::npos) << text.substr(0, 200);
  }

  // Over the intact store the checkpoint resumes normally.
  SimClock c2;
  Session resumed(t.store.get(), &c2);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());

  // Over a store that lost the acked tail (the base trace alone) the
  // durable mark refuses with the typed STO-E009 — before the generic
  // fingerprint gets a chance to mislabel it a "different trace".
  MiniTrace lossy = MakeMiniTrace();
  SimClock c3;
  Session refused(lossy.store.get(), &c3);
  auto st = refused.LoadCheckpoint(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("STO-E009"), std::string::npos) << st;

  // Mark-free saves keep the classic format: no D record, so CLI
  // checkpoints are byte-compatible with earlier releases.
  const std::string plain = TempPath("mark_free.ckpt");
  ASSERT_TRUE(first.SaveCheckpoint(plain).ok());
  {
    std::ifstream f(plain);
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(text.find("\nD\t"), std::string::npos);
  }
  std::remove(path.c_str());
  std::remove(plain.c_str());
}

TEST(CheckpointTest, GarbageFilesRejected) {
  const std::string path = TempPath("garbage.ckpt");
  {
    std::ofstream f(path);
    f << "not a checkpoint\njunk\n";
  }
  MiniTrace t = MakeMiniTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  EXPECT_FALSE(session.LoadCheckpoint(path).ok());
  EXPECT_FALSE(session.LoadCheckpoint("/no/such/file.ckpt").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aptrace
