#include <gtest/gtest.h>

#include "core/engine.h"
#include "workload/scenario.h"

namespace aptrace {
namespace {

using workload::AttackCaseNames;
using workload::AttackScenario;
using workload::BuildAttackCase;
using workload::TraceConfig;

/// Drives the paper's blue-team workflow end to end on one staged attack
/// case: run the unguided script briefly, then apply each refinement
/// through the Refiner, monitoring updates until the penetration point
/// appears in the dependency graph.
struct InvestigationResult {
  size_t events_checked = 0;        // graph size when the root cause appeared
  DurationMicros analysis_time = 0; // simulated time to that moment
  bool found_root_cause = false;
  bool all_reuse = true;            // every refinement reused the cache
  DepGraph const* graph = nullptr;
};

InvestigationResult Investigate(const EventStore& store,
                                const AttackScenario& scenario,
                                Session* session) {
  InvestigationResult result;
  EXPECT_TRUE(session->Start(scenario.bdl_scripts[0]).ok());

  auto found = [&] {
    return workload::ChainRecovered(session->graph(), scenario);
  };

  // Watch the first few updates of the unguided run (the analyst inspects
  // the early graph before estimating heuristics).
  RunLimits peek;
  peek.max_updates = 5;
  peek.sim_time = 3 * kMicrosPerMinute;  // "after viewing two events in
                                         // less than three minutes"
  peek.should_stop = found;
  EXPECT_TRUE(session->Step(peek).ok());

  for (size_t v = 1; v < scenario.bdl_scripts.size() && !found(); ++v) {
    const Status s = session->UpdateScript(scenario.bdl_scripts[v]);
    EXPECT_TRUE(s.ok()) << s;
    result.all_reuse &= session->last_refine_action() != RefineAction::kRestart;
    RunLimits limits;
    limits.should_stop = found;
    if (v + 1 < scenario.bdl_scripts.size()) {
      // The analyst inspects a couple of minutes of updates before
      // estimating the next heuristic (paper Section IV-D).
      limits.max_updates = 10;
      limits.sim_time = 2 * kMicrosPerMinute;
    }
    auto reason = session->Step(limits);
    EXPECT_TRUE(reason.ok()) << reason.status();
  }

  result.found_root_cause = found();
  result.events_checked = session->graph().NumEdges();
  result.analysis_time =
      session->engine() != nullptr
          ? session->update_log().batches().empty()
                ? 0
                : session->update_log().batches().back().sim_time -
                      session->stats().run_start
          : 0;
  result.graph = &session->graph();
  (void)store;
  return result;
}

class AttackCaseTest : public testing::TestWithParam<std::string> {};

TEST_P(AttackCaseTest, RefinementFindsRootCause) {
  TraceConfig config = TraceConfig::Small();
  auto built = BuildAttackCase(GetParam(), config);
  ASSERT_TRUE(built.ok()) << built.status();
  const AttackScenario& scenario = built->scenario;

  SimClock clock;
  Session session(built->store.get(), &clock);
  const InvestigationResult result =
      Investigate(*built->store, scenario, &session);

  EXPECT_TRUE(result.found_root_cause)
      << "penetration point not reached for " << scenario.title;
  EXPECT_TRUE(result.all_reuse)
      << "a refinement unexpectedly restarted the analysis";
  // The guided investigation inspects a modest number of events (paper
  // Table I: 45..154), far fewer than the full explosion.
  EXPECT_LT(result.events_checked, 2000u);
  // And it finishes within the scripts' 10-minute budget.
  EXPECT_LE(result.analysis_time, 10 * kMicrosPerMinute);

  // The ground-truth chain that leads to the penetration point is in the
  // graph.
  for (ObjectId id : scenario.ground_truth) {
    EXPECT_TRUE(session.graph().HasNode(id))
        << scenario.title << ": missing ground-truth object "
        << built->store->catalog().Get(id).Label();
  }
}

TEST_P(AttackCaseTest, UnguidedRunExplodes) {
  TraceConfig config = TraceConfig::Small();
  auto built = BuildAttackCase(GetParam(), config);
  ASSERT_TRUE(built.ok()) << built.status();

  // No heuristics, capped at (simulated) 30 minutes: the graph keeps
  // growing and dwarfs what the guided run needed to check.
  SimClock clock;
  Session session(built->store.get(), &clock);
  ASSERT_TRUE(session.Start(built->scenario.bdl_scripts[0]).ok());
  RunLimits limits;
  limits.sim_time = 30 * kMicrosPerMinute;
  auto reason = session.Step(limits);
  ASSERT_TRUE(reason.ok());
  // Either the cap was hit (dependency explosion in action) or the case
  // completed with a big graph; both ways the graph must be large.
  EXPECT_GT(session.graph().NumEdges(), 500u)
      << built->scenario.title << " stopped with "
      << StopReasonName(reason.value());
}

INSTANTIATE_TEST_SUITE_P(AllCases, AttackCaseTest,
                         testing::ValuesIn(AttackCaseNames()));

}  // namespace
}  // namespace aptrace
