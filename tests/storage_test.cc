#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "storage/event_store.h"
#include "storage/storage_backend.h"
#include "util/rng.h"

namespace aptrace {
namespace {

Event MakeEvent(ObjectId subject, ObjectId object, TimeMicros t,
                ActionType action, HostId host = 0) {
  Event e;
  e.subject = subject;
  e.object = object;
  e.timestamp = t;
  e.action = action;
  e.direction = ActionDefaultDirection(action);
  e.host = host;
  return e;
}

class EventStoreTest : public testing::Test {
 protected:
  void SetUp() override {
    host_ = store_.catalog().InternHost("h1");
    proc_a_ = store_.catalog().AddProcess(host_, {.exename = "a.exe"});
    proc_b_ = store_.catalog().AddProcess(host_, {.exename = "b.exe"});
    file_x_ = store_.catalog().AddFile(host_, {.path = "/x"});
    file_y_ = store_.catalog().AddFile(host_, {.path = "/y"});
  }

  EventStore store_;
  HostId host_ = 0;
  ObjectId proc_a_ = 0, proc_b_ = 0, file_x_ = 0, file_y_ = 0;
};

TEST_F(EventStoreTest, AppendAssignsSequentialIds) {
  const EventId a = store_.Append(
      MakeEvent(proc_a_, file_x_, 100, ActionType::kWrite, host_));
  const EventId b = store_.Append(
      MakeEvent(proc_a_, file_y_, 200, ActionType::kWrite, host_));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(store_.NumEvents(), 2u);
  EXPECT_EQ(store_.MinTime(), 100);
  EXPECT_EQ(store_.MaxTime(), 200);
}

TEST_F(EventStoreTest, ScanDestReturnsOnlyMatchingWindow) {
  // Three writes into file_x at t = 100, 200, 300; one into file_y.
  store_.Append(MakeEvent(proc_a_, file_x_, 100, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_b_, file_x_, 200, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_a_, file_x_, 300, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_a_, file_y_, 150, ActionType::kWrite, host_));
  store_.Seal();

  std::vector<TimeMicros> times;
  const size_t n = store_.ScanDest(file_x_, 100, 300, nullptr,
                                   [&](const Event& e) {
                                     times.push_back(e.timestamp);
                                   });
  EXPECT_EQ(n, 2u);  // [100, 300) is half-open
  EXPECT_EQ(times, (std::vector<TimeMicros>{100, 200}));
}

TEST_F(EventStoreTest, ScanDestHonorsFlowDirection) {
  // A read flows file -> proc, so the *process* is the destination.
  store_.Append(MakeEvent(proc_a_, file_x_, 100, ActionType::kRead, host_));
  store_.Seal();
  EXPECT_EQ(store_.CountDest(proc_a_, 0, 1000, nullptr), 1u);
  EXPECT_EQ(store_.CountDest(file_x_, 0, 1000, nullptr), 0u);
}

TEST_F(EventStoreTest, ScanChargesSimulatedCost) {
  EventStoreOptions options;
  options.cost_model.query_overhead = 1000;
  options.cost_model.per_row_fetch = 10;
  options.cost_model.per_partition_probe = 0;
  options.cost_model.per_partition_seek = 0;
  EventStore store(options);
  const HostId h = store.catalog().InternHost("h");
  const ObjectId p = store.catalog().AddProcess(h, {.exename = "p"});
  const ObjectId f = store.catalog().AddFile(h, {.path = "/f"});
  for (int i = 0; i < 5; ++i) {
    store.Append(MakeEvent(p, f, 100 + i, ActionType::kWrite, h));
  }
  store.Seal();

  SimClock clock;
  store.ScanDest(f, 0, 1000, &clock, nullptr);
  EXPECT_EQ(clock.NowMicros(), 1000 + 5 * 10);
  EXPECT_EQ(store.stats().queries, 1u);
  EXPECT_EQ(store.stats().rows_matched, 5u);
  EXPECT_EQ(store.stats().simulated_cost, clock.NowMicros());
}

TEST_F(EventStoreTest, CountDestSkipsRowFetchCost) {
  EventStoreOptions options;
  options.cost_model.query_overhead = 100;
  options.cost_model.per_row_fetch = 1000;
  options.cost_model.per_partition_probe = 0;
  options.cost_model.per_partition_seek = 0;
  EventStore store(options);
  const HostId h = store.catalog().InternHost("h");
  const ObjectId p = store.catalog().AddProcess(h, {.exename = "p"});
  const ObjectId f = store.catalog().AddFile(h, {.path = "/f"});
  for (int i = 0; i < 7; ++i) {
    store.Append(MakeEvent(p, f, 100 + i, ActionType::kWrite, h));
  }
  store.Seal();
  SimClock clock;
  EXPECT_EQ(store.CountDest(f, 0, 1000, &clock), 7u);
  EXPECT_EQ(clock.NowMicros(), 100);  // overhead only
}

TEST_F(EventStoreTest, ScanRangeVisitsAllInOrder) {
  store_.Append(MakeEvent(proc_a_, file_x_, 300, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_a_, file_y_, 100, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_b_, file_x_, 200, ActionType::kRead, host_));
  store_.Seal();
  std::vector<TimeMicros> times;
  store_.ScanRange(0, 1000, nullptr,
                   [&](const Event& e) { times.push_back(e.timestamp); });
  EXPECT_EQ(times, (std::vector<TimeMicros>{100, 200, 300}));
}

TEST_F(EventStoreTest, HasIncomingWriteTracksFlowsIntoObject) {
  store_.Append(MakeEvent(proc_a_, file_x_, 100, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_a_, file_y_, 200, ActionType::kRead, host_));
  store_.Seal();
  EXPECT_TRUE(store_.HasIncomingWrite(file_x_, 0, 1000));
  // file_y was only read (flow out of it): it is "read-only".
  EXPECT_FALSE(store_.HasIncomingWrite(file_y_, 0, 1000));
  // Range matters.
  EXPECT_FALSE(store_.HasIncomingWrite(file_x_, 101, 1000));
}

TEST_F(EventStoreTest, FlowDestsOfDeduplicates) {
  store_.Append(MakeEvent(proc_a_, file_x_, 100, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_a_, file_x_, 200, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_a_, file_y_, 300, ActionType::kWrite, host_));
  store_.Seal();
  const auto dests = store_.FlowDestsOf(proc_a_, 0, 1000);
  EXPECT_EQ(dests.size(), 2u);
  EXPECT_TRUE(std::is_sorted(dests.begin(), dests.end()));
}

TEST_F(EventStoreTest, EmptyStoreSealsSafely) {
  store_.Seal();
  EXPECT_EQ(store_.MinTime(), 0);
  EXPECT_EQ(store_.MaxTime(), 0);
  EXPECT_EQ(store_.CountDest(proc_a_, 0, 100, nullptr), 0u);
}

TEST_F(EventStoreTest, EmptyRangeIsEmpty) {
  store_.Append(MakeEvent(proc_a_, file_x_, 100, ActionType::kWrite, host_));
  store_.Seal();
  EXPECT_EQ(store_.CountDest(file_x_, 100, 100, nullptr), 0u);
  EXPECT_EQ(store_.CountDest(file_x_, 200, 100, nullptr), 0u);
}

// Property test: ScanDest agrees with a brute-force filter over random
// event soups, across partition boundaries.
class ScanDestPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ScanDestPropertyTest, AgreesWithBruteForce) {
  EventStoreOptions options;
  options.partition_micros = 1000;  // small partitions to stress boundaries
  EventStore store(options);
  Rng rng(GetParam());

  const HostId h = store.catalog().InternHost("h");
  std::vector<ObjectId> procs;
  std::vector<ObjectId> objects;
  for (int i = 0; i < 6; ++i) {
    procs.push_back(store.catalog().AddProcess(h, {.exename = "p"}));
  }
  for (int i = 0; i < 10; ++i) {
    objects.push_back(store.catalog().AddFile(h, {.path = "/f"}));
  }
  std::vector<Event> all;
  for (int i = 0; i < 500; ++i) {
    const ActionType action = rng.Bernoulli(0.5) ? ActionType::kWrite
                                                 : ActionType::kRead;
    Event e = MakeEvent(procs[rng.Uniform(procs.size())],
                        objects[rng.Uniform(objects.size())],
                        static_cast<TimeMicros>(rng.Uniform(10000)), action,
                        h);
    e.id = store.Append(e);
    all.push_back(e);
  }
  store.Seal();

  for (int trial = 0; trial < 50; ++trial) {
    const ObjectId dest = rng.Bernoulli(0.5)
                              ? procs[rng.Uniform(procs.size())]
                              : objects[rng.Uniform(objects.size())];
    TimeMicros lo = static_cast<TimeMicros>(rng.Uniform(11000));
    TimeMicros hi = static_cast<TimeMicros>(rng.Uniform(11000));
    if (lo > hi) std::swap(lo, hi);

    std::vector<EventId> got;
    store.ScanDest(dest, lo, hi, nullptr,
                   [&](const Event& e) { got.push_back(e.id); });

    std::vector<EventId> want;
    for (const Event& e : all) {
      if (e.FlowDest() == dest && e.timestamp >= lo && e.timestamp < hi) {
        want.push_back(e.id);
      }
    }
    std::sort(want.begin(), want.end(), [&](EventId a, EventId b) {
      if (all[a].timestamp != all[b].timestamp)
        return all[a].timestamp < all[b].timestamp;
      return a < b;
    });
    EXPECT_EQ(got, want) << "dest=" << dest << " [" << lo << "," << hi << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanDestPropertyTest,
                         testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------
// Backend equivalence: the columnar segment store must return the same
// rows in the same order as the row store for every query shape, while
// probing no more storage units (zone maps only ever skip work).

/// Builds two stores over identical catalogs and events, one per
/// backend; `segment_rows` is kept small so the columnar store has many
/// segments to prune.
struct BackendPair {
  EventStore row;
  EventStore columnar;

  static EventStoreOptions Options(StorageBackendKind kind) {
    EventStoreOptions options;
    options.partition_micros = 1000;
    options.backend = kind;
    options.segment_rows = 32;
    return options;
  }

  BackendPair()
      : row(Options(StorageBackendKind::kRow)),
        columnar(Options(StorageBackendKind::kColumnar)) {}

  void Append(const Event& e) {
    row.Append(e);
    columnar.Append(e);
  }
  void Seal() {
    row.Seal();
    columnar.Seal();
  }
};

class BackendEquivalenceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(BackendEquivalenceTest, ColumnarMatchesRowStore) {
  Rng rng(GetParam());
  BackendPair pair;
  std::vector<ObjectId> keys;
  for (auto* store : {&pair.row, &pair.columnar}) {
    ObjectCatalog& c = store->catalog();
    const HostId h1 = c.InternHost("h1");
    const HostId h2 = c.InternHost("h2");
    std::vector<ObjectId> ids;
    for (int i = 0; i < 6; ++i) {
      ids.push_back(c.AddProcess(i % 2 ? h1 : h2, {.exename = "p"}));
    }
    for (int i = 0; i < 10; ++i) {
      ids.push_back(c.AddFile(i % 2 ? h1 : h2, {.path = "/f"}));
    }
    keys = ids;  // identical in both catalogs
  }
  for (int i = 0; i < 600; ++i) {
    Event e = MakeEvent(keys[rng.Uniform(6)], keys[6 + rng.Uniform(10)],
                        static_cast<TimeMicros>(rng.Uniform(50000)),
                        rng.Bernoulli(0.5) ? ActionType::kWrite
                                           : ActionType::kRead,
                        static_cast<HostId>(rng.Uniform(2)));
    pair.Append(e);
  }
  pair.Seal();

  for (int trial = 0; trial < 60; ++trial) {
    const ObjectId key = keys[rng.Uniform(keys.size())];
    TimeMicros lo = static_cast<TimeMicros>(rng.Uniform(52000));
    TimeMicros hi =
        lo + static_cast<TimeMicros>(rng.Uniform(8000));  // narrow window
    const auto label = [&] {
      return std::string("key=") + std::to_string(key) + " [" +
             std::to_string(lo) + "," + std::to_string(hi) + ")";
    };

    const RangeScanBatch rd = pair.row.CollectDest(key, lo, hi);
    const RangeScanBatch cd = pair.columnar.CollectDest(key, lo, hi);
    EXPECT_EQ(cd.rows, rd.rows) << "CollectDest " << label();
    EXPECT_EQ(rd.segments_pruned, 0u);

    const RangeScanBatch rs = pair.row.CollectSrc(key, lo, hi);
    const RangeScanBatch cs = pair.columnar.CollectSrc(key, lo, hi);
    EXPECT_EQ(cs.rows, rs.rows) << "CollectSrc " << label();

    EXPECT_EQ(pair.columnar.CollectRange(lo, hi).rows,
              pair.row.CollectRange(lo, hi).rows)
        << "CollectRange " << label();

    EXPECT_EQ(pair.columnar.HasIncomingWrite(key, lo, hi),
              pair.row.HasIncomingWrite(key, lo, hi))
        << label();
    EXPECT_EQ(pair.columnar.FlowDestsOf(key, lo, hi),
              pair.row.FlowDestsOf(key, lo, hi))
        << label();

    SimClock rc, cc;
    EXPECT_EQ(pair.columnar.CountDest(key, lo, hi, &cc),
              pair.row.CountDest(key, lo, hi, &rc))
        << label();
  }

  // Aggregate probe accounting: pruning may only reduce work. Over 60
  // narrow windows with 32-row segments the zone maps must have skipped
  // at least one segment.
  const StoreStats row_stats = pair.row.stats();
  const StoreStats columnar_stats = pair.columnar.stats();
  EXPECT_LE(columnar_stats.partitions_probed, row_stats.partitions_probed);
  EXPECT_GT(columnar_stats.segments_pruned, 0u);
  EXPECT_EQ(row_stats.segments_pruned, 0u);
}

// Streaming ingestion: post-seal appends must be visible to queries on
// both backends identically (the columnar store routes them through its
// unsorted tail and merges by (timestamp, id) at query time).
TEST_P(BackendEquivalenceTest, StreamingAppendsAgree) {
  Rng rng(GetParam() ^ 0x7a11);
  BackendPair pair;
  ObjectId proc = 0, file = 0;
  for (auto* store : {&pair.row, &pair.columnar}) {
    ObjectCatalog& c = store->catalog();
    const HostId h = c.InternHost("h");
    proc = c.AddProcess(h, {.exename = "p"});
    file = c.AddFile(h, {.path = "/f"});
  }
  for (int i = 0; i < 100; ++i) {
    pair.Append(MakeEvent(proc, file,
                          static_cast<TimeMicros>(rng.Uniform(5000)),
                          ActionType::kWrite));
  }
  pair.Seal();
  // Late events land out of order, interleaved with the sealed range.
  for (int i = 0; i < 40; ++i) {
    pair.Append(MakeEvent(proc, file,
                          static_cast<TimeMicros>(rng.Uniform(10000)),
                          ActionType::kWrite));
  }

  EXPECT_EQ(pair.columnar.NumEvents(), pair.row.NumEvents());
  for (EventId id = 0; id < pair.row.NumEvents(); ++id) {
    EXPECT_EQ(pair.columnar.Get(id).timestamp, pair.row.Get(id).timestamp)
        << "id=" << id;
  }
  EXPECT_EQ(pair.columnar.CollectDest(file, 0, 10000).rows,
            pair.row.CollectDest(file, 0, 10000).rows);
  EXPECT_EQ(pair.columnar.CollectRange(2000, 8000).rows,
            pair.row.CollectRange(2000, 8000).rows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalenceTest,
                         testing::Values(11, 22, 33, 44, 55));

// Zone maps prune segments that cannot contain the key or the window:
// activity concentrated in distinct eras means a narrow scan skips the
// other eras' segments entirely.
TEST(ColumnarPruningTest, DisjointErasAreSkipped) {
  EventStoreOptions options;
  options.backend = StorageBackendKind::kColumnar;
  options.segment_rows = 16;
  EventStore store(options);
  ObjectCatalog& c = store.catalog();
  const HostId h = c.InternHost("h");
  const ObjectId p = c.AddProcess(h, {.exename = "p"});
  const ObjectId early = c.AddFile(h, {.path = "/early"});
  const ObjectId late = c.AddFile(h, {.path = "/late"});
  for (int i = 0; i < 64; ++i) {
    store.Append(MakeEvent(p, early, 1000 + i, ActionType::kWrite, h));
  }
  for (int i = 0; i < 64; ++i) {
    store.Append(MakeEvent(p, late, 900000 + i, ActionType::kWrite, h));
  }
  store.Seal();

  // A narrow scan never reaches the late era's segments at all: the
  // global (timestamp, id) sort bounds the candidate range, so they are
  // neither probed nor counted as pruned.
  const RangeScanBatch b = store.CollectDest(early, 0, 2000);
  EXPECT_EQ(b.rows.size(), 64u);
  EXPECT_EQ(b.segments_pruned, 0u);
  EXPECT_LE(b.partitions_probed, 4u);  // 64 rows / 16-row segments
  // A whole-range scan for one key still prunes on the key zone: the
  // late segments' dest fingerprints cannot contain `early`.
  const RangeScanBatch all = store.CollectDest(early, 0, 1000000);
  EXPECT_EQ(all.rows.size(), 64u);
  EXPECT_GT(all.segments_pruned, 0u);
}

// ---------------------------------------------------------------------
// Sharded store: N shard backends behind one StorageBackend facade must
// answer every query shape identically to the monolithic store, while
// the per-shard counters reconcile exactly against the store totals in
// every snapshot (docs/sharding.md).

class ShardEquivalenceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ShardEquivalenceTest, ShardedMatchesMonolithic) {
  for (const size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    for (const StorageBackendKind backend :
         {StorageBackendKind::kRow, StorageBackendKind::kColumnar}) {
      EventStoreOptions options;
      options.partition_micros = 1000;
      options.segment_rows = 32;
      options.backend = backend;
      options.shards = 1;
      EventStore mono(options);
      options.shards = shards;
      EventStore sharded(options);
      ASSERT_EQ(sharded.shard_count(), shards);
      ASSERT_EQ(mono.shard_count(), 1u);

      Rng rng(GetParam());
      std::vector<ObjectId> keys;
      std::vector<HostId> hosts;
      for (auto* store : {&mono, &sharded}) {
        ObjectCatalog& c = store->catalog();
        hosts = {c.InternHost("h1"), c.InternHost("h2"),
                 c.InternHost("h3")};
        std::vector<ObjectId> ids;
        for (int i = 0; i < 6; ++i) {
          ids.push_back(c.AddProcess(hosts[i % 3], {.exename = "p"}));
        }
        for (int i = 0; i < 10; ++i) {
          ids.push_back(c.AddFile(hosts[i % 3], {.path = "/f"}));
        }
        keys = ids;  // identical in both catalogs
      }
      for (int i = 0; i < 600; ++i) {
        Event e = MakeEvent(keys[rng.Uniform(6)], keys[6 + rng.Uniform(10)],
                            static_cast<TimeMicros>(rng.Uniform(50000)),
                            rng.Bernoulli(0.5) ? ActionType::kWrite
                                               : ActionType::kRead,
                            hosts[rng.Uniform(3)]);
        const EventId a = mono.Append(e);
        const EventId b = sharded.Append(e);
        EXPECT_EQ(a, b);  // global ids are the monolithic append order
      }
      mono.Seal();
      sharded.Seal();

      for (EventId id = 0; id < mono.NumEvents(); ++id) {
        EXPECT_EQ(sharded.Get(id).timestamp, mono.Get(id).timestamp)
            << "id=" << id;
        EXPECT_EQ(sharded.Get(id).id, id);
      }

      for (int trial = 0; trial < 40; ++trial) {
        const ObjectId key = keys[rng.Uniform(keys.size())];
        TimeMicros lo = static_cast<TimeMicros>(rng.Uniform(52000));
        TimeMicros hi = lo + static_cast<TimeMicros>(rng.Uniform(8000));
        const auto label = [&] {
          return std::string("shards=") + std::to_string(shards) +
                 " key=" + std::to_string(key) + " [" + std::to_string(lo) +
                 "," + std::to_string(hi) + ")";
        };

        const RangeScanBatch md = mono.CollectDest(key, lo, hi);
        const RangeScanBatch sd = sharded.CollectDest(key, lo, hi);
        EXPECT_EQ(sd.rows, md.rows) << "CollectDest " << label();
        // Every delivered row is attributed to exactly one shard slice.
        uint64_t slice_rows = 0;
        for (const ShardScanSlice& slice : sd.shard_slices) {
          EXPECT_LT(slice.shard, shards) << label();
          slice_rows += slice.rows;
        }
        EXPECT_EQ(slice_rows, sd.rows.size()) << label();

        EXPECT_EQ(sharded.CollectSrc(key, lo, hi).rows,
                  mono.CollectSrc(key, lo, hi).rows)
            << "CollectSrc " << label();
        EXPECT_EQ(sharded.CollectRange(lo, hi).rows,
                  mono.CollectRange(lo, hi).rows)
            << "CollectRange " << label();
        EXPECT_EQ(sharded.HasIncomingWrite(key, lo, hi),
                  mono.HasIncomingWrite(key, lo, hi))
            << label();
        EXPECT_EQ(sharded.FlowDestsOf(key, lo, hi),
                  mono.FlowDestsOf(key, lo, hi))
            << label();
        SimClock mc, sc;
        EXPECT_EQ(sharded.CountDest(key, lo, hi, &sc),
                  mono.CountDest(key, lo, hi, &mc))
            << label();
      }

      // Row totals agree with the monolithic store; probe totals may
      // differ (a time slice split across shards occupies one partition
      // per shard) but must reconcile exactly against the per-shard
      // rows of the same snapshot.
      const StoreStats ms = mono.stats();
      const ShardedStore::Snapshot snap = sharded.ShardSnapshot();
      EXPECT_EQ(snap.total.queries, ms.queries);
      EXPECT_EQ(snap.total.rows_matched, ms.rows_matched);
      EXPECT_EQ(snap.total.rows_filtered, ms.rows_filtered);
      EXPECT_EQ(snap.shards.size(), shards);
      StoreStats sum;
      uint64_t resident = 0;
      for (const auto& row : snap.shards) {
        sum.rows_matched += row.stats.rows_matched;
        sum.rows_filtered += row.stats.rows_filtered;
        sum.partitions_probed += row.stats.partitions_probed;
        sum.partitions_seeked += row.stats.partitions_seeked;
        sum.segments_pruned += row.stats.segments_pruned;
        resident += row.resident_rows;
      }
      EXPECT_EQ(sum.rows_matched, snap.total.rows_matched);
      EXPECT_EQ(sum.rows_filtered, snap.total.rows_filtered);
      EXPECT_EQ(sum.partitions_probed, snap.total.partitions_probed);
      EXPECT_EQ(sum.partitions_seeked, snap.total.partitions_seeked);
      EXPECT_EQ(sum.segments_pruned, snap.total.segments_pruned);
      EXPECT_EQ(resident, sharded.NumEvents());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardEquivalenceTest,
                         testing::Values(7, 17, 27));

// Boundary rows: delivered rows whose recording host differs from the
// probed object's catalog host (cross-host flows through shared objects
// like sockets). They surface per slice, per shard, and in the store
// metrics — the scatter-gather "boundary-edge exchange" is observable.
TEST(ShardedStoreTest, BoundaryRowsAreCountedAndReconciled) {
  EventStoreOptions options;
  options.partition_micros = 1000;
  options.shards = 4;
  EventStore store(options);
  ObjectCatalog& c = store.catalog();
  const HostId h1 = c.InternHost("h1");
  const HostId h2 = c.InternHost("h2");
  // The socket is homed on h1, but the writes into it are recorded on
  // the connecting host h2 — every delivered row is a boundary row.
  const ObjectId sock =
      c.AddIp(h1, {.src_ip = "10.0.0.2", .dst_ip = "10.0.0.1"});
  const ObjectId remote = c.AddProcess(h2, {.exename = "client"});
  const ObjectId local = c.AddProcess(h1, {.exename = "server"});
  for (int i = 0; i < 8; ++i) {
    store.Append(MakeEvent(remote, sock, 100 + i, ActionType::kConnect, h2));
  }
  for (int i = 0; i < 3; ++i) {
    store.Append(MakeEvent(local, sock, 500 + i, ActionType::kConnect, h1));
  }
  store.Seal();

  const RangeScanBatch b = store.CollectDest(sock, 0, 1000);
  EXPECT_EQ(b.rows.size(), 11u);
  uint64_t boundary = 0;
  for (const ShardScanSlice& slice : b.shard_slices) {
    boundary += slice.boundary_rows;
  }
  EXPECT_EQ(boundary, 8u);  // the h2-recorded rows, not the h1 ones

  // The snapshot's boundary counters accumulate on the charging scan
  // path (ReplayScan), not on raw Collect* probes.
  EXPECT_EQ(store.ScanDest(sock, 0, 1000, nullptr, nullptr), 11u);
  const ShardedStore::Snapshot snap = store.ShardSnapshot();
  uint64_t snap_boundary = 0;
  for (const auto& row : snap.shards) snap_boundary += row.boundary_rows;
  EXPECT_EQ(snap_boundary, 8u);
}

// Option clamping and the monolithic fallback: shards <= 1 keeps the
// direct backend (no facade), out-of-range counts clamp to the routing
// mask's width.
TEST(ShardedStoreTest, ClampsAndReportsShardCount) {
  EventStoreOptions options;
  options.shards = 0;
  {
    EventStore store(options);
    EXPECT_EQ(store.shard_count(), 1u);
    EXPECT_EQ(store.sharded(), nullptr);
  }
  options.shards = 200;
  {
    EventStore store(options);
    EXPECT_EQ(store.shard_count(), kMaxStoreShards);
    EXPECT_NE(store.sharded(), nullptr);
  }
  options.shards = 1;
  {
    EventStore store(options);
    EXPECT_EQ(store.shard_count(), 1u);
    // The synthetic single-shard snapshot mirrors the store totals.
    const ShardedStore::Snapshot snap = store.ShardSnapshot();
    ASSERT_EQ(snap.shards.size(), 1u);
    EXPECT_EQ(snap.shards[0].resident_rows, store.NumEvents());
  }
}

// The APTRACE_SHARDS environment variable picks the default shard count
// for every store built without an explicit override (this is how the
// CI Release-sharded leg flips the whole test suite). Invalid values
// warn once and fall back to 1.
TEST(StorageShardEnvTest, EnvVarSelectsDefaultShardCount) {
  const char* old = std::getenv("APTRACE_SHARDS");
  const std::string saved = old ? old : "";

  ASSERT_EQ(setenv("APTRACE_SHARDS", "4", 1), 0);
  EXPECT_EQ(DefaultShardCount(), 4u);
  {
    EventStore store;
    EXPECT_EQ(store.shard_count(), 4u);
  }
  ASSERT_EQ(setenv("APTRACE_SHARDS", "bogus", 1), 0);
  EXPECT_EQ(DefaultShardCount(), 1u);
  ASSERT_EQ(setenv("APTRACE_SHARDS", "0", 1), 0);
  EXPECT_EQ(DefaultShardCount(), 1u);
  ASSERT_EQ(setenv("APTRACE_SHARDS", "65", 1), 0);
  EXPECT_EQ(DefaultShardCount(), 1u);
  // An explicit option always beats the environment.
  ASSERT_EQ(setenv("APTRACE_SHARDS", "4", 1), 0);
  {
    EventStoreOptions options;
    options.shards = 2;
    EventStore store(options);
    EXPECT_EQ(store.shard_count(), 2u);
  }

  if (old) {
    setenv("APTRACE_SHARDS", saved.c_str(), 1);
  } else {
    unsetenv("APTRACE_SHARDS");
  }
}

// The APTRACE_BACKEND environment variable picks the default backend
// for every store built without an explicit override (this is how the
// CI columnar leg flips the whole test suite).
TEST(StorageBackendEnvTest, EnvVarSelectsDefaultBackend) {
  const char* old = std::getenv("APTRACE_BACKEND");
  const std::string saved = old ? old : "";

  ASSERT_EQ(setenv("APTRACE_BACKEND", "columnar", 1), 0);
  EXPECT_EQ(DefaultStorageBackendKind(), StorageBackendKind::kColumnar);
  {
    EventStore store;
    EXPECT_EQ(store.backend_kind(), StorageBackendKind::kColumnar);
  }
  ASSERT_EQ(setenv("APTRACE_BACKEND", "row", 1), 0);
  EXPECT_EQ(DefaultStorageBackendKind(), StorageBackendKind::kRow);
  // Unknown values fall back to the row store rather than failing.
  ASSERT_EQ(setenv("APTRACE_BACKEND", "bogus", 1), 0);
  EXPECT_EQ(DefaultStorageBackendKind(), StorageBackendKind::kRow);
  // An explicit option always beats the environment.
  ASSERT_EQ(setenv("APTRACE_BACKEND", "columnar", 1), 0);
  {
    EventStoreOptions options;
    options.backend = StorageBackendKind::kRow;
    EventStore store(options);
    EXPECT_EQ(store.backend_kind(), StorageBackendKind::kRow);
  }

  if (old) {
    setenv("APTRACE_BACKEND", saved.c_str(), 1);
  } else {
    unsetenv("APTRACE_BACKEND");
  }
}

TEST(StorageBackendEnvTest, ParseAndNameRoundTrip) {
  EXPECT_EQ(ParseStorageBackendKind("row"), StorageBackendKind::kRow);
  EXPECT_EQ(ParseStorageBackendKind("columnar"),
            StorageBackendKind::kColumnar);
  EXPECT_FALSE(ParseStorageBackendKind("column").has_value());
  EXPECT_FALSE(ParseStorageBackendKind("").has_value());
  EXPECT_STREQ(StorageBackendName(StorageBackendKind::kRow), "row");
  EXPECT_STREQ(StorageBackendName(StorageBackendKind::kColumnar),
               "columnar");
}

}  // namespace
}  // namespace aptrace
