#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "storage/event_store.h"
#include "util/rng.h"

namespace aptrace {
namespace {

Event MakeEvent(ObjectId subject, ObjectId object, TimeMicros t,
                ActionType action, HostId host = 0) {
  Event e;
  e.subject = subject;
  e.object = object;
  e.timestamp = t;
  e.action = action;
  e.direction = ActionDefaultDirection(action);
  e.host = host;
  return e;
}

class EventStoreTest : public testing::Test {
 protected:
  void SetUp() override {
    host_ = store_.catalog().InternHost("h1");
    proc_a_ = store_.catalog().AddProcess(host_, {.exename = "a.exe"});
    proc_b_ = store_.catalog().AddProcess(host_, {.exename = "b.exe"});
    file_x_ = store_.catalog().AddFile(host_, {.path = "/x"});
    file_y_ = store_.catalog().AddFile(host_, {.path = "/y"});
  }

  EventStore store_;
  HostId host_ = 0;
  ObjectId proc_a_ = 0, proc_b_ = 0, file_x_ = 0, file_y_ = 0;
};

TEST_F(EventStoreTest, AppendAssignsSequentialIds) {
  const EventId a = store_.Append(
      MakeEvent(proc_a_, file_x_, 100, ActionType::kWrite, host_));
  const EventId b = store_.Append(
      MakeEvent(proc_a_, file_y_, 200, ActionType::kWrite, host_));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(store_.NumEvents(), 2u);
  EXPECT_EQ(store_.MinTime(), 100);
  EXPECT_EQ(store_.MaxTime(), 200);
}

TEST_F(EventStoreTest, ScanDestReturnsOnlyMatchingWindow) {
  // Three writes into file_x at t = 100, 200, 300; one into file_y.
  store_.Append(MakeEvent(proc_a_, file_x_, 100, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_b_, file_x_, 200, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_a_, file_x_, 300, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_a_, file_y_, 150, ActionType::kWrite, host_));
  store_.Seal();

  std::vector<TimeMicros> times;
  const size_t n = store_.ScanDest(file_x_, 100, 300, nullptr,
                                   [&](const Event& e) {
                                     times.push_back(e.timestamp);
                                   });
  EXPECT_EQ(n, 2u);  // [100, 300) is half-open
  EXPECT_EQ(times, (std::vector<TimeMicros>{100, 200}));
}

TEST_F(EventStoreTest, ScanDestHonorsFlowDirection) {
  // A read flows file -> proc, so the *process* is the destination.
  store_.Append(MakeEvent(proc_a_, file_x_, 100, ActionType::kRead, host_));
  store_.Seal();
  EXPECT_EQ(store_.CountDest(proc_a_, 0, 1000, nullptr), 1u);
  EXPECT_EQ(store_.CountDest(file_x_, 0, 1000, nullptr), 0u);
}

TEST_F(EventStoreTest, ScanChargesSimulatedCost) {
  EventStoreOptions options;
  options.cost_model.query_overhead = 1000;
  options.cost_model.per_row_fetch = 10;
  options.cost_model.per_partition_probe = 0;
  options.cost_model.per_partition_seek = 0;
  EventStore store(options);
  const HostId h = store.catalog().InternHost("h");
  const ObjectId p = store.catalog().AddProcess(h, {.exename = "p"});
  const ObjectId f = store.catalog().AddFile(h, {.path = "/f"});
  for (int i = 0; i < 5; ++i) {
    store.Append(MakeEvent(p, f, 100 + i, ActionType::kWrite, h));
  }
  store.Seal();

  SimClock clock;
  store.ScanDest(f, 0, 1000, &clock, nullptr);
  EXPECT_EQ(clock.NowMicros(), 1000 + 5 * 10);
  EXPECT_EQ(store.stats().queries, 1u);
  EXPECT_EQ(store.stats().rows_matched, 5u);
  EXPECT_EQ(store.stats().simulated_cost, clock.NowMicros());
}

TEST_F(EventStoreTest, CountDestSkipsRowFetchCost) {
  EventStoreOptions options;
  options.cost_model.query_overhead = 100;
  options.cost_model.per_row_fetch = 1000;
  options.cost_model.per_partition_probe = 0;
  options.cost_model.per_partition_seek = 0;
  EventStore store(options);
  const HostId h = store.catalog().InternHost("h");
  const ObjectId p = store.catalog().AddProcess(h, {.exename = "p"});
  const ObjectId f = store.catalog().AddFile(h, {.path = "/f"});
  for (int i = 0; i < 7; ++i) {
    store.Append(MakeEvent(p, f, 100 + i, ActionType::kWrite, h));
  }
  store.Seal();
  SimClock clock;
  EXPECT_EQ(store.CountDest(f, 0, 1000, &clock), 7u);
  EXPECT_EQ(clock.NowMicros(), 100);  // overhead only
}

TEST_F(EventStoreTest, ScanRangeVisitsAllInOrder) {
  store_.Append(MakeEvent(proc_a_, file_x_, 300, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_a_, file_y_, 100, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_b_, file_x_, 200, ActionType::kRead, host_));
  store_.Seal();
  std::vector<TimeMicros> times;
  store_.ScanRange(0, 1000, nullptr,
                   [&](const Event& e) { times.push_back(e.timestamp); });
  EXPECT_EQ(times, (std::vector<TimeMicros>{100, 200, 300}));
}

TEST_F(EventStoreTest, HasIncomingWriteTracksFlowsIntoObject) {
  store_.Append(MakeEvent(proc_a_, file_x_, 100, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_a_, file_y_, 200, ActionType::kRead, host_));
  store_.Seal();
  EXPECT_TRUE(store_.HasIncomingWrite(file_x_, 0, 1000));
  // file_y was only read (flow out of it): it is "read-only".
  EXPECT_FALSE(store_.HasIncomingWrite(file_y_, 0, 1000));
  // Range matters.
  EXPECT_FALSE(store_.HasIncomingWrite(file_x_, 101, 1000));
}

TEST_F(EventStoreTest, FlowDestsOfDeduplicates) {
  store_.Append(MakeEvent(proc_a_, file_x_, 100, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_a_, file_x_, 200, ActionType::kWrite, host_));
  store_.Append(MakeEvent(proc_a_, file_y_, 300, ActionType::kWrite, host_));
  store_.Seal();
  const auto dests = store_.FlowDestsOf(proc_a_, 0, 1000);
  EXPECT_EQ(dests.size(), 2u);
  EXPECT_TRUE(std::is_sorted(dests.begin(), dests.end()));
}

TEST_F(EventStoreTest, EmptyStoreSealsSafely) {
  store_.Seal();
  EXPECT_EQ(store_.MinTime(), 0);
  EXPECT_EQ(store_.MaxTime(), 0);
  EXPECT_EQ(store_.CountDest(proc_a_, 0, 100, nullptr), 0u);
}

TEST_F(EventStoreTest, EmptyRangeIsEmpty) {
  store_.Append(MakeEvent(proc_a_, file_x_, 100, ActionType::kWrite, host_));
  store_.Seal();
  EXPECT_EQ(store_.CountDest(file_x_, 100, 100, nullptr), 0u);
  EXPECT_EQ(store_.CountDest(file_x_, 200, 100, nullptr), 0u);
}

// Property test: ScanDest agrees with a brute-force filter over random
// event soups, across partition boundaries.
class ScanDestPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ScanDestPropertyTest, AgreesWithBruteForce) {
  EventStoreOptions options;
  options.partition_micros = 1000;  // small partitions to stress boundaries
  EventStore store(options);
  Rng rng(GetParam());

  const HostId h = store.catalog().InternHost("h");
  std::vector<ObjectId> procs;
  std::vector<ObjectId> objects;
  for (int i = 0; i < 6; ++i) {
    procs.push_back(store.catalog().AddProcess(h, {.exename = "p"}));
  }
  for (int i = 0; i < 10; ++i) {
    objects.push_back(store.catalog().AddFile(h, {.path = "/f"}));
  }
  std::vector<Event> all;
  for (int i = 0; i < 500; ++i) {
    const ActionType action = rng.Bernoulli(0.5) ? ActionType::kWrite
                                                 : ActionType::kRead;
    Event e = MakeEvent(procs[rng.Uniform(procs.size())],
                        objects[rng.Uniform(objects.size())],
                        static_cast<TimeMicros>(rng.Uniform(10000)), action,
                        h);
    e.id = store.Append(e);
    all.push_back(e);
  }
  store.Seal();

  for (int trial = 0; trial < 50; ++trial) {
    const ObjectId dest = rng.Bernoulli(0.5)
                              ? procs[rng.Uniform(procs.size())]
                              : objects[rng.Uniform(objects.size())];
    TimeMicros lo = static_cast<TimeMicros>(rng.Uniform(11000));
    TimeMicros hi = static_cast<TimeMicros>(rng.Uniform(11000));
    if (lo > hi) std::swap(lo, hi);

    std::vector<EventId> got;
    store.ScanDest(dest, lo, hi, nullptr,
                   [&](const Event& e) { got.push_back(e.id); });

    std::vector<EventId> want;
    for (const Event& e : all) {
      if (e.FlowDest() == dest && e.timestamp >= lo && e.timestamp < hi) {
        want.push_back(e.id);
      }
    }
    std::sort(want.begin(), want.end(), [&](EventId a, EventId b) {
      if (all[a].timestamp != all[b].timestamp)
        return all[a].timestamp < all[b].timestamp;
      return a < b;
    });
    EXPECT_EQ(got, want) << "dest=" << dest << " [" << lo << "," << hi << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanDestPropertyTest,
                         testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace aptrace
