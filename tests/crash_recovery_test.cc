// Kill-anywhere crash recovery for the durable ingest pipeline
// (docs/durability.md): SIGKILL at any byte of the WAL — simulated by a
// deterministic cut sweep over every record boundary plus a hundred-plus
// randomized positions, and realized by fork()+SIGKILL children — must
// recover a store (and therefore a served graph) bit-identical to an
// uninterrupted run over the acknowledged prefix. Also proves the
// snapshot/manifest commit protocol never double-ingests, and that the
// checkpoint durable mark (STO-E009) refuses a lossy data directory.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.h"
#include "graph/json_writer.h"
#include "service/session_manager.h"
#include "storage/file_env.h"
#include "storage/recovery.h"
#include "storage/trace_io.h"
#include "storage/wal.h"
#include "tests/random_trace_util.h"
#include "util/clock.h"
#include "util/rng.h"

namespace aptrace {
namespace {

EventStoreOptions Opts(StorageBackendKind backend) {
  EventStoreOptions options;
  options.partition_micros = 500;
  options.segment_rows = 64;
  options.cost_model = CostModel::Free();
  options.backend = backend;
  return options;
}

// Unique per-process scratch dir: a leftover MANIFEST from a previous
// run must never leak into this one.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name + "." +
                          std::to_string(::getpid());
  FileEnv* env = FileEnv::Posix();
  EXPECT_TRUE(env->CreateDir(dir).ok());
  for (const char* leftover : {"wal.log", "MANIFEST"}) {
    const std::string path = dir + "/" + leftover;
    if (env->FileExists(path)) EXPECT_TRUE(env->RemoveFile(path).ok());
  }
  return dir;
}

void WriteFileBytes(FileEnv* env, const std::string& path,
                    std::string_view bytes) {
  if (env->FileExists(path)) ASSERT_TRUE(env->RemoveFile(path).ok());
  auto f = env->OpenForAppend(path);
  ASSERT_TRUE(f.ok()) << f.status();
  ASSERT_TRUE((*f)->Append(bytes).ok());
  ASSERT_TRUE((*f)->Close().ok());
}

// Byte-exact view of a store: v2 serialization is deterministic, so two
// stores serialize identically iff they hold identical catalogs and
// identical events in identical order.
std::string StoreBytes(const EventStore& store) {
  std::ostringstream os;
  EXPECT_TRUE(SaveTrace(store, os, TraceFormat::kBinaryV2).ok());
  return os.str();
}

// What `aptrace run` would serve over this store.
std::string ServeGraph(const EventStore& store, const std::string& script,
                       const Event& alert) {
  SimClock clock;
  Session session(&store, &clock, SessionOptions{});
  EXPECT_TRUE(session.Start(script, alert).ok());
  EXPECT_TRUE(session.Step().ok());
  EXPECT_TRUE(session.Finish(/*prune_to_matched_paths=*/true).ok());
  std::ostringstream os;
  WriteGraphJson(session.graph(), store.catalog(), os);
  return os.str();
}

// Deterministic ingest batches drawn from the trace's own catalog (so
// they pass the STO-E010 membership validation), stamped after the
// sealed history like live audit arrivals.
std::vector<std::vector<Event>> MakeIngestBatches(const RandomTrace& t,
                                                  size_t count,
                                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Event>> batches;
  for (size_t b = 0; b < count; ++b) {
    std::vector<Event> batch;
    const size_t n = rng.Uniform(3) + 1;
    for (size_t i = 0; i < n; ++i) {
      Event e = t.events[rng.Uniform(t.events.size())];
      e.id = kInvalidEventId;  // ids are assigned at apply time
      e.timestamp += static_cast<TimeMicros>(50000 + b * 97 + i);
      batch.push_back(e);
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct DurableFixture {
  RandomTrace t;
  std::string trace_path;
  std::vector<std::vector<Event>> batches;
  std::string wal_bytes;              // magic + one record per batch
  std::vector<size_t> boundaries;     // wal_bytes prefix after each record
};

DurableFixture MakeFixture(const std::string& name, uint64_t seed,
                           size_t base_events, size_t num_batches) {
  DurableFixture f;
  f.t = MakeRandomTrace(seed, base_events, StorageBackendKind::kRow);
  f.trace_path = ::testing::TempDir() + "/" + name + "." +
                 std::to_string(::getpid()) + ".trace";
  EXPECT_TRUE(
      SaveTraceFile(*f.t.store, f.trace_path, TraceFormat::kBinaryV2).ok());
  f.batches = MakeIngestBatches(f.t, num_batches, seed + 1);
  f.wal_bytes.assign(kWalMagic, kWalMagicLen);
  f.boundaries.push_back(f.wal_bytes.size());
  for (size_t b = 0; b < f.batches.size(); ++b) {
    f.wal_bytes += EncodeWalRecord(b + 1, f.batches[b]);
    f.boundaries.push_back(f.wal_bytes.size());
  }
  return f;
}

// The uninterrupted reference: base trace + the first k batches applied
// in order, serialized byte-exactly.
std::string OracleBytes(const DurableFixture& f, size_t k,
                        StorageBackendKind backend) {
  auto store = LoadTraceFile(f.trace_path, Opts(backend));
  EXPECT_TRUE(store.ok()) << store.status();
  for (size_t b = 0; b < k; ++b) {
    for (Event e : f.batches[b]) (*store)->Append(e);
  }
  return StoreBytes(**store);
}

size_t CompleteRecords(const DurableFixture& f, size_t cut) {
  size_t k = 0;
  while (k + 1 < f.boundaries.size() && f.boundaries[k + 1] <= cut) ++k;
  return k;
}

TEST(CrashRecoveryTest, KillAtAnyByteRecoversTheAcknowledgedPrefix) {
  FileEnv* env = FileEnv::Posix();
  const DurableFixture f = MakeFixture("crash_sweep", 91, 240, 20);
  const std::string dir = FreshDir("crash_sweep_dir");
  const std::string script = UnconstrainedScript(f.t);

  // Oracles for every batch count, computed once.
  std::vector<std::string> oracle;
  for (size_t k = 0; k <= f.batches.size(); ++k) {
    oracle.push_back(OracleBytes(f, k, StorageBackendKind::kRow));
  }

  // Kill points: every record boundary (the "clean" kills) plus >= 120
  // randomized byte positions (the mid-record kills).
  std::set<size_t> cuts(f.boundaries.begin(), f.boundaries.end());
  Rng rng(7);
  while (cuts.size() < f.boundaries.size() + 120) {
    cuts.insert(kWalMagicLen + rng.Uniform(f.wal_bytes.size() - kWalMagicLen));
  }
  ASSERT_GE(cuts.size(), 120u);

  size_t graph_checks = 0, cut_index = 0;
  for (const size_t cut : cuts) {
    SCOPED_TRACE("kill at byte " + std::to_string(cut));
    WriteFileBytes(env, dir + "/wal.log",
                   std::string_view(f.wal_bytes).substr(0, cut));
    auto recovered =
        OpenDataDir(env, dir, f.trace_path, Opts(StorageBackendKind::kRow));
    ASSERT_TRUE(recovered.ok()) << recovered.status();

    const size_t k = CompleteRecords(f, cut);
    EXPECT_EQ(recovered->next_seq, k + 1);
    EXPECT_EQ(recovered->wal_valid_bytes, f.boundaries[k]);
    EXPECT_EQ(recovered->wal.truncated_bytes, cut - f.boundaries[k]);
    if (cut != f.boundaries[k]) {
      // A mid-record kill always leaves a typed diagnostic behind.
      EXPECT_NE(recovered->wal.diagnostic.find("STO-E00"),
                std::string::npos)
          << "'" << recovered->wal.diagnostic << "'";
    }
    // The recovered store is byte-identical to an uninterrupted run over
    // exactly the acknowledged batches.
    ASSERT_EQ(StoreBytes(*recovered->store), oracle[k]);

    // Spot-check the stronger end-to-end claim on a sample of kills:
    // the *served graph* is bit-identical too.
    if (cut_index % 25 == 0) {
      auto reference = LoadTraceFile(f.trace_path,
                                     Opts(StorageBackendKind::kRow));
      ASSERT_TRUE(reference.ok());
      for (size_t b = 0; b < k; ++b) {
        for (Event e : f.batches[b]) (*reference)->Append(e);
      }
      EXPECT_EQ(ServeGraph(*recovered->store, script, f.t.alert),
                ServeGraph(**reference, script, f.t.alert));
      graph_checks++;
    }
    cut_index++;
  }
  EXPECT_GE(graph_checks, 5u);
}

TEST(CrashRecoveryTest, ColumnarRecoveryMatchesRowAndSurvivesSealing) {
  FileEnv* env = FileEnv::Posix();
  const DurableFixture f = MakeFixture("crash_columnar", 92, 200, 8);
  const std::string dir = FreshDir("crash_columnar_dir");
  const std::string script = UnconstrainedScript(f.t);

  for (size_t k = 0; k <= f.batches.size(); ++k) {
    SCOPED_TRACE("batches " + std::to_string(k));
    WriteFileBytes(env, dir + "/wal.log",
                   std::string_view(f.wal_bytes).substr(0, f.boundaries[k]));
    auto recovered = OpenDataDir(env, dir, f.trace_path,
                                 Opts(StorageBackendKind::kColumnar));
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    // Physical layout never changes the recovered contents...
    EXPECT_EQ(StoreBytes(*recovered->store),
              OracleBytes(f, k, StorageBackendKind::kRow));
    const std::string graph =
        ServeGraph(*recovered->store, script, f.t.alert);
    // ...and sealing the replayed tail into columnar segments changes
    // neither the contents nor the served graph.
    recovered->store->SealTail(nullptr);
    EXPECT_EQ(recovered->store->TailRows(), 0u);
    EXPECT_EQ(StoreBytes(*recovered->store),
              OracleBytes(f, k, StorageBackendKind::kRow));
    EXPECT_EQ(ServeGraph(*recovered->store, script, f.t.alert), graph);
  }
}

TEST(CrashRecoveryTest, SnapshotCommitPointsNeverDoubleIngest) {
  FileEnv* env = FileEnv::Posix();
  const DurableFixture f = MakeFixture("crash_snap", 93, 160, 8);
  const std::string dir = FreshDir("crash_snap_dir");

  // Boot 1: apply + log batches 1..6, then snapshot — but "crash" before
  // the WAL reset (wal == nullptr), the worst-timed kill.
  {
    auto recovered =
        OpenDataDir(env, dir, f.trace_path, Opts(StorageBackendKind::kRow));
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    auto wal = WalWriter::Open(env, dir + "/wal.log",
                               recovered->wal_valid_bytes,
                               recovered->next_seq);
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (size_t b = 0; b < 6; ++b) {
      auto seq = (*wal)->AppendBatch(f.batches[b]);
      ASSERT_TRUE(seq.ok()) << seq.status();
      EXPECT_EQ(seq.value(), b + 1);
      for (Event e : f.batches[b]) recovered->store->Append(e);
    }
    ASSERT_TRUE(SnapshotDataDir(env, dir, *recovered->store, 6,
                                /*wal=*/nullptr)
                    .ok());
  }

  // Boot 2: the manifest covers 1..6 and the stale WAL still holds them;
  // replay must skip all six (never double-ingest), then accept new
  // batches on top.
  {
    auto recovered =
        OpenDataDir(env, dir, f.trace_path, Opts(StorageBackendKind::kRow));
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_TRUE(recovered->from_snapshot);
    EXPECT_EQ(recovered->applied_through, 6u);
    EXPECT_EQ(recovered->wal.batches_applied, 0u);
    EXPECT_EQ(recovered->wal.duplicates_skipped, 6u);
    EXPECT_EQ(recovered->next_seq, 7u);
    ASSERT_EQ(StoreBytes(*recovered->store),
              OracleBytes(f, 6, StorageBackendKind::kRow));

    auto wal = WalWriter::Open(env, dir + "/wal.log",
                               recovered->wal_valid_bytes,
                               recovered->next_seq);
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (size_t b = 6; b < 8; ++b) {
      auto seq = (*wal)->AppendBatch(f.batches[b]);
      ASSERT_TRUE(seq.ok());
      EXPECT_EQ(seq.value(), b + 1);
      for (Event e : f.batches[b]) recovered->store->Append(e);
    }
    // Clean shutdown this time: snapshot + WAL reset.
    ASSERT_TRUE(
        SnapshotDataDir(env, dir, *recovered->store, 8, wal->get()).ok());
    auto size = env->FileSize(dir + "/wal.log");
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, kWalMagicLen);
  }

  // Boot 3: everything comes from the snapshot, nothing from the WAL.
  {
    auto recovered =
        OpenDataDir(env, dir, f.trace_path, Opts(StorageBackendKind::kRow));
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ(recovered->applied_through, 8u);
    EXPECT_EQ(recovered->wal.batches_applied, 0u);
    EXPECT_EQ(recovered->next_seq, 9u);
    ASSERT_EQ(StoreBytes(*recovered->store),
              OracleBytes(f, 8, StorageBackendKind::kRow));
  }
}

TEST(CrashRecoveryTest, ForkedWriterSigkilledAtRandomPointsLosesNothingAcked) {
  FileEnv* env = FileEnv::Posix();
  const DurableFixture f = MakeFixture("crash_fork", 94, 160, 400);
  Rng rng(11);

  constexpr int kRounds = 10;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::string dir =
        FreshDir("crash_fork_dir." + std::to_string(round));

    int pipefd[2];
    ASSERT_EQ(pipe(pipefd), 0);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: the "daemon". Recover the dir, then append batches as
      // fast as the disk acknowledges them, reporting each durable seq
      // through the pipe — the stand-in for the client-visible ack.
      close(pipefd[0]);
      auto recovered = OpenDataDir(FileEnv::Posix(), dir, f.trace_path,
                                   Opts(StorageBackendKind::kRow));
      if (!recovered.ok()) _exit(2);
      auto wal = WalWriter::Open(FileEnv::Posix(), dir + "/wal.log",
                                 recovered->wal_valid_bytes,
                                 recovered->next_seq);
      if (!wal.ok()) _exit(3);
      for (const auto& batch : f.batches) {
        auto seq = (*wal)->AppendBatch(batch);
        if (!seq.ok()) _exit(4);
        const uint64_t acked = seq.value();
        if (write(pipefd[1], &acked, sizeof(acked)) != sizeof(acked)) {
          _exit(5);
        }
      }
      _exit(0);
    }

    // Parent: let the child run for a random slice, then kill -9 — no
    // shutdown hook runs, whatever the WAL holds is what survives.
    close(pipefd[1]);
    usleep(static_cast<useconds_t>(rng.Uniform(15000)));
    kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) ||
                (WIFEXITED(status) && WEXITSTATUS(status) == 0))
        << "child status " << status;

    uint64_t acked = 0, v = 0;
    while (read(pipefd[0], &v, sizeof(v)) == sizeof(v)) acked = v;
    close(pipefd[0]);

    auto recovered =
        OpenDataDir(env, dir, f.trace_path, Opts(StorageBackendKind::kRow));
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    const uint64_t k = recovered->next_seq - 1;
    // The durability contract: every acknowledged batch survives; at
    // most one un-acked batch (in flight at the kill) may surface too.
    EXPECT_GE(k, acked);
    EXPECT_LE(k, acked + 1);
    ASSERT_LE(k, f.batches.size());
    ASSERT_EQ(StoreBytes(*recovered->store),
              OracleBytes(f, k, StorageBackendKind::kRow));
  }
}

TEST(CrashRecoveryTest, DurableMarkRefusesALossyDataDir) {
  FileEnv* env = FileEnv::Posix();
  const DurableFixture f = MakeFixture("crash_mark", 95, 300, 4);
  const std::string dir = FreshDir("crash_mark_dir");
  const std::string script = UnconstrainedScript(f.t);
  const std::string ckpt = dir + "/session.ckpt";

  // Boot 1: durable daemon — stall a session mid-run, ingest a batch,
  // checkpoint. The checkpoint must carry the durable mark.
  std::string expected_graph;
  {
    auto recovered =
        OpenDataDir(env, dir, f.trace_path, Opts(StorageBackendKind::kRow));
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    auto wal = WalWriter::Open(env, dir + "/wal.log",
                               recovered->wal_valid_bytes,
                               recovered->next_seq);
    ASSERT_TRUE(wal.ok()) << wal.status();

    service::ServiceLimits limits;
    limits.update_buffer_cap = 1;  // stall -> stays checkpointable
    service::SessionManager manager(recovered->store.get(), limits);
    manager.EnableDurability(wal->get(), recovered->next_seq - 1);

    service::OpenOptions opts;
    opts.start_event = f.t.alert.id;
    auto id = manager.Open(script, opts);
    ASSERT_TRUE(id.ok()) << id.status();

    auto ack = manager.Ingest(f.batches[0]);
    ASSERT_TRUE(ack.ok()) << ack.status();
    EXPECT_EQ(ack.value().wal_seq, 1u);
    const TimeMicros deadline = MonotonicNowMicros() + 30'000'000;
    while (manager.stats().wal_applied_through < 1 &&
           MonotonicNowMicros() < deadline) {
      usleep(1000);
    }
    ASSERT_EQ(manager.stats().wal_applied_through, 1u);
    ASSERT_TRUE(manager.Checkpoint(id.value(), ckpt).ok());
    manager.StopAndJoin();
  }

  // The checkpoint records what the store durably held.
  {
    auto bytes = env->ReadFileToString(ckpt);
    ASSERT_TRUE(bytes.ok());
    const std::string want =
        "\nD\t" + std::to_string(300 + f.batches[0].size()) + "\t1\n";
    EXPECT_NE(bytes->find(want), std::string::npos)
        << "durable mark missing from checkpoint";
  }

  // A daemon resuming over a store that lost the acknowledged batch
  // (the WAL vanished with the disk) must refuse with STO-E009 — not
  // silently serve a graph over events it does not hold.
  {
    auto lossy = LoadTraceFile(f.trace_path, Opts(StorageBackendKind::kRow));
    ASSERT_TRUE(lossy.ok());
    service::SessionManager manager(lossy->get(), service::ServiceLimits{});
    auto resumed = manager.Resume(ckpt, {});
    ASSERT_FALSE(resumed.ok());
    EXPECT_NE(resumed.status().message().find("STO-E009"), std::string::npos)
        << resumed.status();
    manager.StopAndJoin();
  }

  // Over the properly recovered dir the same checkpoint resumes and
  // finishes normally.
  {
    auto recovered =
        OpenDataDir(env, dir, f.trace_path, Opts(StorageBackendKind::kRow));
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ(recovered->next_seq, 2u);
    service::SessionManager manager(recovered->store.get(),
                                    service::ServiceLimits{});
    auto resumed = manager.Resume(ckpt, {});
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    ASSERT_TRUE(manager.WaitAllTerminal(30'000'000));
    auto graph = manager.GraphJson(resumed.value());
    ASSERT_TRUE(graph.ok()) << graph.status();
    EXPECT_FALSE(graph.value().empty());
    manager.StopAndJoin();
  }
}

}  // namespace
}  // namespace aptrace
