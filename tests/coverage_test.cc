// Focused tests for the smaller public surfaces and edge semantics not
// covered by the module suites: logging, status rendering, histogram
// output, event-level where semantics, budget updates through the
// Refiner, and error paths.

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.h"
#include "graph/path.h"
#include "tests/test_trace.h"
#include "util/logging.h"
#include "util/stats.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

TEST(LoggingTest, LevelGatingAndRestore) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are discarded without side effects; at or
  // above threshold they format and emit. Either way: no crash.
  APTRACE_LOG(Debug) << "discarded " << 1;
  APTRACE_LOG(Info) << "discarded " << 2.5;
  SetLogLevel(LogLevel::kOff);
  APTRACE_LOG(Error) << "also discarded";
  SetLogLevel(original);
}

TEST(StatusTest, StreamOperatorAndNames) {
  std::ostringstream os;
  os << Status::OutOfRange("x") << " / " << Status::Ok();
  EXPECT_EQ(os.str(), "OutOfRange: x / OK");
  for (StatusCode c : {StatusCode::kOk, StatusCode::kInvalidArgument,
                       StatusCode::kNotFound, StatusCode::kFailedPrecondition,
                       StatusCode::kOutOfRange, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(HistogramTest, ToStringListsBuckets) {
  Histogram h(0, 10, 2);
  h.Add(1);
  h.Add(6);
  h.Add(7);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("[0, 5) 1"), std::string::npos);
  EXPECT_NE(s.find("[5, 10) 2"), std::string::npos);
}

TEST(UpdateLogTest, EmptyWaitingTimes) {
  UpdateLog log;
  log.SetRunStart(100);
  EXPECT_TRUE(log.WaitingTimesSeconds().empty());
  EXPECT_TRUE(log.empty());
}

TEST(CausalPathTest, EmptyGraphYieldsEmptyPath) {
  DepGraph graph;
  EXPECT_TRUE(FindCausalPath(graph, 42).empty());
}

// Event-level conditions in a where statement delete the *object* the
// offending event leads to (the paper's where semantics are object
// deletion); this documents that a single disallowed action poisons the
// object for the rest of the analysis.
TEST(WhereSemanticsTest, EventLevelConditionDeletesObject) {
  MiniTrace t = MakeMiniTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  // Exclude anything reached through a process-start event: excel and
  // java themselves survive only if reachable through non-start events.
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> * where action_type != "
                         "\"start\"",
                         t.store->Get(t.alert_event))
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());
  // java survives (it is the alert's anchor), but excel is *deleted* the
  // moment its start edge is scanned — even though a write edge through
  // java_file would also have reached it — and outlook (reachable only
  // through excel) disappears with it. This is the object-deletion
  // semantics of the paper's where statement applied to an event-level
  // condition.
  EXPECT_TRUE(session.graph().HasNode(t.java));
  EXPECT_FALSE(session.graph().HasNode(t.excel));
  EXPECT_FALSE(session.graph().HasNode(t.outlook));
  EXPECT_TRUE(session.graph().HasNode(t.java_file));  // via the read edge
  session.graph().ForEachEdge([&](const DepGraph::Edge& e) {
    EXPECT_NE(e.action, ActionType::kStart) << "start edge survived";
  });
}

TEST(RefinerBudgetTest, HopBudgetTightensMidRun) {
  MiniTrace t = MakeMiniTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> *",
                         t.store->Get(t.alert_event))
                  .ok());
  RunLimits limits;
  limits.max_updates = 1;
  ASSERT_TRUE(session.Step(limits).ok());
  // Tighten to two hops; the refiner reuses the cached graph.
  ASSERT_TRUE(
      session.UpdateScript("backward ip x[] -> * where hop <= 2").ok());
  EXPECT_EQ(session.last_refine_action(), RefineAction::kReuse);
  ASSERT_TRUE(session.Step({}).ok());
  EXPECT_FALSE(session.graph().HasNode(t.mail_sock));  // hop 4
  EXPECT_TRUE(session.graph().HasNode(t.java));        // hop 1
}

TEST(RefinerPrioritizeTest, RuleChangeClassifiedAsReuse) {
  MiniTrace t = MakeMiniTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> *",
                         t.store->Get(t.alert_event))
                  .ok());
  RunLimits limits;
  limits.max_updates = 1;
  ASSERT_TRUE(session.Step(limits).ok());
  ASSERT_TRUE(session
                  .UpdateScript(
                      "backward ip x[] -> * prioritize [type = file and "
                      "src.path = \"*java*\"] <- [type = network and dst.ip "
                      "= \"185.*\" and amount >= size]")
                  .ok());
  EXPECT_EQ(session.last_refine_action(), RefineAction::kReuse);
  ASSERT_TRUE(session.Step({}).ok());
  EXPECT_EQ(session.graph().NumEdges(), MiniTrace::kClosureEdges);
}

TEST(EngineErrorTest, BadOutputPathSurfacesFromFinish) {
  MiniTrace t = MakeMiniTrace();
  SimClock clock;
  auto report = RunBdlScript(
      *t.store, &clock,
      "backward ip x[] -> * output = \"/no-such-dir/x.dot\"", {}, {},
      t.store->Get(t.alert_event));
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphMaintenanceTest, MaxHopAfterRemovals) {
  MiniTrace t = MakeMiniTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> *",
                         t.store->Get(t.alert_event))
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());
  DepGraph* g = session.engine()->mutable_graph();
  EXPECT_EQ(g->MaxHop(), 4);
  g->RemoveNodesIf([&](ObjectId id) { return g->HopOf(id) >= 3; });
  EXPECT_LE(g->MaxHop(), 2);
  g->ClearStates();
  EXPECT_EQ(g->StateOf(g->start()), 1);
}

TEST(TimeOrderedConditionTest, StarttimeComparison) {
  MiniTrace t = MakeMiniTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  // All mini-trace processes have start_time 0, i.e. before any real
  // date: a `starttime < <date>` filter keeps them all, `>` drops them
  // (and their subtrees) except what is reachable through files/sockets.
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> * where proc.starttime < "
                         "\"01/01/2020\"",
                         t.store->Get(t.alert_event))
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());
  EXPECT_EQ(session.graph().NumEdges(), MiniTrace::kClosureEdges);
}

TEST(SessionIntrospectionTest, ContextExposesResolvedPieces) {
  MiniTrace t = MakeMiniTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> * where hop <= 9",
                         t.store->Get(t.alert_event))
                  .ok());
  const TrackingContext& ctx = session.context();
  EXPECT_EQ(ctx.start_event.id, t.alert_event);
  EXPECT_EQ(ctx.start_node, t.ext_sock);
  EXPECT_EQ(ctx.spec.hop_limit, 9);
  EXPECT_TRUE(ctx.IsAnchor(t.ext_sock));
  EXPECT_TRUE(ctx.IsAnchor(t.java));
  EXPECT_FALSE(ctx.IsAnchor(t.excel));
}

}  // namespace
}  // namespace aptrace
