#include <gtest/gtest.h>

#include <string>

#include "bdl/diagnostics.h"

namespace aptrace::bdl {
namespace {

TEST(SourceSpanTest, AtBuildsPointSpan) {
  const SourceSpan s = SourceSpan::At(3, 7, 4);
  EXPECT_EQ(s.line, 3);
  EXPECT_EQ(s.column, 7);
  EXPECT_EQ(s.end_line, 3);
  EXPECT_EQ(s.end_column, 11);
  EXPECT_TRUE(s.valid());
  EXPECT_FALSE(SourceSpan{}.valid());
}

TEST(SourceSpanTest, CoverSpansBothEndpoints) {
  const SourceSpan a = SourceSpan::At(2, 5, 3);
  const SourceSpan b = SourceSpan::At(2, 20, 6);
  const SourceSpan c = SourceSpan::Cover(a, b);
  EXPECT_EQ(c.line, 2);
  EXPECT_EQ(c.column, 5);
  EXPECT_EQ(c.end_column, 26);
  // Order-independent, and invalid inputs are ignored.
  EXPECT_TRUE(SourceSpan::Cover(b, a) == c);
  EXPECT_TRUE(SourceSpan::Cover(a, SourceSpan{}) == a);
  EXPECT_TRUE(SourceSpan::Cover(SourceSpan{}, b) == b);
}

TEST(DiagCodeTest, NamesAreStableAndSeveritiesSplit) {
  EXPECT_STREQ(DiagCodeName(DiagCode::kLexError), "BDL-E001");
  EXPECT_STREQ(DiagCodeName(DiagCode::kOrInPrioritize), "BDL-E011");
  EXPECT_STREQ(DiagCodeName(DiagCode::kAlwaysFalse), "BDL-W001");
  EXPECT_STREQ(DiagCodeName(DiagCode::kWindowOutsideTrace), "BDL-W009");
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kSyntaxError), Severity::kError);
  EXPECT_EQ(DiagCodeSeverity(DiagCode::kBudgetSanity), Severity::kWarning);
}

TEST(DiagnosticEngineTest, CountsBySeverity) {
  DiagnosticEngine engine;
  engine.Report(DiagCode::kSyntaxError, SourceSpan::At(1, 1), "bad");
  engine.Report(DiagCode::kAlwaysFalse, SourceSpan::At(2, 1), "dead");
  engine.Report(DiagCode::kBudgetSanity, SourceSpan::At(3, 1), "zero");
  EXPECT_TRUE(engine.HasErrors());
  EXPECT_EQ(engine.num_errors(), 1u);
  EXPECT_EQ(engine.num_warnings(), 2u);
}

TEST(DiagnosticEngineTest, SortBySourceOrdersByPosition) {
  DiagnosticEngine engine;
  engine.Report(DiagCode::kAlwaysFalse, SourceSpan::At(5, 1), "later");
  engine.Report(DiagCode::kSyntaxError, SourceSpan::At(1, 9), "first");
  engine.Report(DiagCode::kAlwaysTrue, SourceSpan{}, "nowhere");
  engine.Report(DiagCode::kBadBudget, SourceSpan::At(1, 2), "early");
  engine.SortBySource();
  const auto& d = engine.diagnostics();
  EXPECT_EQ(d[0].message, "early");
  EXPECT_EQ(d[1].message, "first");
  EXPECT_EQ(d[2].message, "later");
  EXPECT_EQ(d[3].message, "nowhere");  // unknown positions sort last
}

TEST(DiagnosticEngineTest, PromoteWarningsMakesThemErrors) {
  DiagnosticEngine engine;
  engine.Report(DiagCode::kAlwaysFalse, SourceSpan::At(1, 1), "w1");
  engine.Report(DiagCode::kBudgetSanity, SourceSpan::At(2, 1), "w2");
  EXPECT_FALSE(engine.HasErrors());
  EXPECT_EQ(engine.PromoteWarnings(), 2u);
  EXPECT_EQ(engine.num_errors(), 2u);
  EXPECT_EQ(engine.num_warnings(), 0u);
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::kError);
}

TEST(DiagnosticEngineTest, FirstErrorStatusCarriesLineColumnAndCode) {
  DiagnosticEngine engine;
  engine.Report(DiagCode::kAlwaysFalse, SourceSpan::At(1, 1), "warn only");
  EXPECT_TRUE(engine.FirstErrorStatus("BDL parse error").ok());
  engine.Report(DiagCode::kUnknownAttribute, SourceSpan::At(2, 17),
                "unknown attribute 'exena'");
  const Status s = engine.FirstErrorStatus("BDL semantic error");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("column 17"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("BDL semantic error"), std::string::npos);
}

TEST(RenderHumanTest, CaretPointsAtTheSpan) {
  const std::string source = "backward proc p[bogus = \"x\"] -> *\n";
  DiagnosticEngine engine;
  Diagnostic& d = engine.Report(DiagCode::kUnknownAttribute,
                                SourceSpan::At(1, 17, 11), "unknown");
  d.notes.push_back({SourceSpan::At(1, 10, 4), "node is here"});
  d.fixit = "path";
  const std::string out =
      RenderHuman(source, "t.bdl", engine.diagnostics());
  EXPECT_NE(out.find("t.bdl:1:17: error: unknown [BDL-E004]"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("^~~~~~~~~~"), std::string::npos) << out;
  EXPECT_NE(out.find("note: node is here"), std::string::npos) << out;
  EXPECT_NE(out.find("fix-it: path"), std::string::npos) << out;
}

TEST(RenderSarifTest, EmitsRulesAndResults) {
  DiagnosticEngine engine;
  Diagnostic& d = engine.Report(DiagCode::kAlwaysFalse,
                                SourceSpan::At(2, 5, 3), "never \"holds\"");
  d.notes.push_back({SourceSpan::At(1, 1, 2), "other half"});
  const std::string sarif =
      RenderSarif({{"scripts/case.bdl", engine.Take()}});
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\":\"BDL-W001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":2"), std::string::npos);
  EXPECT_NE(sarif.find("\"startColumn\":5"), std::string::npos);
  // The quoted word must be JSON-escaped, and notes become
  // relatedLocations.
  EXPECT_NE(sarif.find("never \\\"holds\\\""), std::string::npos);
  EXPECT_NE(sarif.find("relatedLocations"), std::string::npos);
  EXPECT_NE(sarif.find("other half"), std::string::npos);
}

TEST(RenderSarifTest, AggregatesMultipleFiles) {
  DiagnosticEngine a;
  a.Report(DiagCode::kLexError, SourceSpan::At(1, 1), "bad char");
  DiagnosticEngine b;
  b.Report(DiagCode::kBudgetSanity, SourceSpan::At(3, 7), "zero hop");
  const std::string sarif =
      RenderSarif({{"a.bdl", a.Take()}, {"b.bdl", b.Take()}});
  EXPECT_NE(sarif.find("a.bdl"), std::string::npos);
  EXPECT_NE(sarif.find("b.bdl"), std::string::npos);
  EXPECT_NE(sarif.find("BDL-E001"), std::string::npos);
  EXPECT_NE(sarif.find("BDL-W007"), std::string::npos);
}

}  // namespace
}  // namespace aptrace::bdl
