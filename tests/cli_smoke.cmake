# Drives the aptrace CLI end to end: scenarios -> export -> run.
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(COMMAND ${CLI} scenarios RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "phishing_email")
  message(FATAL_ERROR "scenarios failed: rc=${rc} out=${out}")
endif()

execute_process(
  COMMAND ${CLI} export --scenario=excel_macro --out=${WORKDIR}/a2.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/a2.tsv)
  message(FATAL_ERROR "export failed: rc=${rc} out=${out}")
endif()

execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --sim-limit=2mins --quiet --dot=${WORKDIR}/a2.dot
          --json=${WORKDIR}/a2.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/a2.dot OR NOT EXISTS ${WORKDIR}/a2.json)
  message(FATAL_ERROR "run failed: rc=${rc} out=${out}")
endif()
if(NOT out MATCHES "start point: event")
  message(FATAL_ERROR "run output missing start point: ${out}")
endif()

# Drive the interactive shell with a piped command script.
file(WRITE ${WORKDIR}/shell_cmds.txt "alerts\nstep\nstatus\nquit\n")
execute_process(
  COMMAND ${CLI} shell --trace=${WORKDIR}/a2.tsv
  INPUT_FILE ${WORKDIR}/shell_cmds.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "alerts" OR NOT out MATCHES "no analysis running")
  message(FATAL_ERROR "shell failed: rc=${rc} out=${out}")
endif()

# Lint: a script with three seeded defects must surface all of them in one
# invocation, with documented codes, in both human and SARIF output.
file(WRITE ${WORKDIR}/bad.bdl
  "backward proc p[exena = \"winword.exe\" and pid = \"abc\"] -> *\n"
  "where starttime = \"not a time\"\n")
execute_process(
  COMMAND ${LINT} --sarif=${WORKDIR}/bad.sarif ${WORKDIR}/bad.bdl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "lint should exit 1 on errors: rc=${rc} ${out}${err}")
endif()
foreach(code BDL-E004 BDL-E006 BDL-E007)
  if(NOT out MATCHES "${code}")
    message(FATAL_ERROR "lint output missing ${code}: ${out}")
  endif()
endforeach()
if(NOT out MATCHES "bad.bdl:1:17")
  message(FATAL_ERROR "lint output missing line:column: ${out}")
endif()
file(READ ${WORKDIR}/bad.sarif sarif)
if(NOT sarif MATCHES "\"version\":\"2.1.0\"" OR NOT sarif MATCHES "BDL-E004"
   OR NOT sarif MATCHES "\"startLine\":1" OR NOT sarif MATCHES "\"startColumn\":17")
  message(FATAL_ERROR "SARIF output malformed: ${sarif}")
endif()

# A clean script passes, and --werror flips warnings to a non-zero exit.
file(WRITE ${WORKDIR}/warn.bdl "backward proc p[] -> *\nwhere hop <= 0\n")
execute_process(COMMAND ${LINT} ${WORKDIR}/warn.bdl RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warning-only lint should exit 0: rc=${rc}")
endif()
execute_process(COMMAND ${LINT} --werror ${WORKDIR}/warn.bdl RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "lint --werror should exit 1 on warnings: rc=${rc}")
endif()

# --threads: a valid parallel run succeeds and exports the scan-thread
# gauge plus the deterministic scan-cost counter in the metrics snapshot.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --sim-limit=2mins --quiet --threads=2
          --json=${WORKDIR}/par1.json --metrics-out=${WORKDIR}/par.metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/par1.json)
  message(FATAL_ERROR "run --threads=2 failed: rc=${rc} ${out}${err}")
endif()
file(READ ${WORKDIR}/par.metrics metrics)
if(NOT metrics MATCHES "aptrace_executor_scan_threads 2")
  message(FATAL_ERROR "metrics missing scan_threads gauge: ${metrics}")
endif()
if(NOT metrics MATCHES "aptrace_executor_scan_cost_micros_total")
  message(FATAL_ERROR "metrics missing scan cost counter: ${metrics}")
endif()

# Determinism: a second --threads=2 run over the same inputs must produce
# a byte-identical graph JSON.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --sim-limit=2mins --quiet --threads=2 --json=${WORKDIR}/par2.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "second run --threads=2 failed: rc=${rc}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${WORKDIR}/par1.json ${WORKDIR}/par2.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--threads=2 graph JSON is not deterministic")
endif()

# --threads=0 (and any non-positive or non-numeric value) is a usage error
# with a documented diagnostic code.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --sim-limit=2mins --quiet --threads=0
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "CLI-E001")
  message(FATAL_ERROR "--threads=0 should fail with CLI-E001: rc=${rc} ${err}")
endif()

# An oversubscribed request warns and clamps but still runs.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --sim-limit=2mins --quiet --threads=4096
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT err MATCHES "CLI-W001")
  message(FATAL_ERROR "--threads=4096 should clamp with CLI-W001: rc=${rc} ${err}")
endif()

# Storage backends: the same analysis on --backend=row and
# --backend=columnar must produce byte-identical graph JSON (the physical
# layout may only change the simulated cost, never the answer). These
# runs are uncapped: a simulated-time limit would cut the two backends
# at different points, since the columnar scans are cheaper.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --quiet --backend=row --json=${WORKDIR}/row.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/row.json)
  message(FATAL_ERROR "run --backend=row failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --quiet --backend=columnar
          --json=${WORKDIR}/columnar.json --metrics-out=${WORKDIR}/col.metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/columnar.json)
  message(FATAL_ERROR "run --backend=columnar failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${WORKDIR}/row.json ${WORKDIR}/columnar.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--backend=columnar graph JSON differs from --backend=row")
endif()
file(READ ${WORKDIR}/col.metrics colmetrics)
if(NOT colmetrics MATCHES "aptrace_store_columnar_queries_total")
  message(FATAL_ERROR "columnar metrics missing backend counter: ${colmetrics}")
endif()

# An invalid backend is a usage error with a documented diagnostic code.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --sim-limit=2mins --quiet --backend=bogus
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "CLI-E002")
  message(FATAL_ERROR "--backend=bogus should fail with CLI-E002: rc=${rc} ${err}")
endif()

# Binary v2 container: export, analyze, and match the v1 text answer.
execute_process(
  COMMAND ${CLI} export --scenario=excel_macro --trace-format=v2
          --out=${WORKDIR}/a2v2.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/a2v2.bin)
  message(FATAL_ERROR "export --trace-format=v2 failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2v2.bin --script=${WORKDIR}/a2.tsv.bdl
          --quiet --backend=row --json=${WORKDIR}/v2.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/v2.json)
  message(FATAL_ERROR "run on v2 trace failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${WORKDIR}/row.json ${WORKDIR}/v2.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "v2-trace graph JSON differs from v1-trace answer")
endif()
execute_process(
  COMMAND ${CLI} export --scenario=excel_macro --trace-format=bogus
          --out=${WORKDIR}/never.bin
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "CLI-E003")
  message(FATAL_ERROR "--trace-format=bogus should fail with CLI-E003: rc=${rc} ${err}")
endif()

# The analysis CLI refuses to run a script that fails --lint --werror.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/warn.bdl
          --lint --werror --sim-limit=2mins --quiet
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 1 OR NOT err MATCHES "not running")
  message(FATAL_ERROR "run --lint --werror should refuse: rc=${rc} ${err}")
endif()

# ---------------------------------------------------------------- serverd
# Daemon smoke: start aptrace_serverd on a unix socket over the exported
# trace, drive it with aptrace_client, and check the tentpole invariant —
# a daemon-served `run` writes graph JSON byte-identical to `aptrace run`.
set(SOCKET ${WORKDIR}/serverd.sock)
set(SRVLOG ${WORKDIR}/serverd.log)
file(REMOVE ${SOCKET} ${SRVLOG})
execute_process(
  COMMAND sh -c "'${SERVERD}' --trace='${WORKDIR}/a2.tsv' --socket='${SOCKET}' \
                 > '${SRVLOG}' 2>&1 & echo $! > '${WORKDIR}/serverd.pid'"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch serverd: rc=${rc}")
endif()
file(READ ${WORKDIR}/serverd.pid SERVERD_PID)
string(STRIP "${SERVERD_PID}" SERVERD_PID)

# Wait (up to ~10s) for the daemon to announce readiness.
set(ready FALSE)
foreach(attempt RANGE 100)
  if(EXISTS ${SRVLOG})
    file(READ ${SRVLOG} srvlog)
    if(srvlog MATCHES "serverd: ready")
      set(ready TRUE)
      break()
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT ready)
  file(READ ${SRVLOG} srvlog)
  message(FATAL_ERROR "serverd never became ready: ${srvlog}")
endif()

# The tentpole invariant: served graph bytes == CLI graph bytes.
execute_process(
  COMMAND ${CLIENT} run --socket=${SOCKET} --script=${WORKDIR}/a2.tsv.bdl
          --json=${WORKDIR}/served.json --quiet
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/served.json)
  message(FATAL_ERROR "client run failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${WORKDIR}/row.json ${WORKDIR}/served.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "daemon-served graph JSON differs from `aptrace run`")
endif()

# Observability plane: scrape the daemon's HTTP endpoints through the
# client (no curl dependency in the test environment).
execute_process(
  COMMAND ${CLIENT} http --socket=${SOCKET} --path=/healthz
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "ok")
  message(FATAL_ERROR "client http /healthz failed: rc=${rc} ${out}")
endif()
execute_process(
  COMMAND ${CLIENT} http --socket=${SOCKET} --path=/metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "aptrace_service_sessions_opened_total"
   OR NOT out MATCHES "aptrace_service_http_requests_total")
  message(FATAL_ERROR "client http /metrics failed: rc=${rc} ${out}")
endif()
execute_process(
  COMMAND ${CLIENT} http --socket=${SOCKET} --path=/nope
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "404")
  message(FATAL_ERROR "http /nope should exit nonzero with 404: rc=${rc} ${err}")
endif()

# A profiled daemon run: the rendered breakdown table appears, the graph
# bytes are untouched (profiling observes, never steers), and the profile
# totals reconcile exactly — total sim cost == the session's charged scan
# cost, total windows == its work units.
execute_process(
  COMMAND ${CLIENT} run --socket=${SOCKET} --script=${WORKDIR}/a2.tsv.bdl
          --profile --quiet --json=${WORKDIR}/profiled.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "query profile \\(probe unit:")
  message(FATAL_ERROR "client run --profile failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${WORKDIR}/row.json ${WORKDIR}/profiled.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--profile changed the served graph JSON")
endif()
string(REGEX MATCH "\"total\":{\"windows\":([0-9]+)" _ "${out}")
set(PROFILE_WINDOWS ${CMAKE_MATCH_1})
string(REGEX MATCH "\"sim_cost_micros\":([0-9]+)" _ "${out}")
set(PROFILE_SIM ${CMAKE_MATCH_1})
string(REGEX MATCH "\"scan_cost_micros\":([0-9]+)" _ "${out}")
set(SCAN_COST ${CMAKE_MATCH_1})
string(REGEX MATCH "\"work_units\":([0-9]+)" _ "${out}")
set(WORK_UNITS ${CMAKE_MATCH_1})
if(PROFILE_WINDOWS STREQUAL "" OR WORK_UNITS STREQUAL ""
   OR NOT PROFILE_WINDOWS STREQUAL WORK_UNITS)
  message(FATAL_ERROR
    "profile windows (${PROFILE_WINDOWS}) != work units (${WORK_UNITS}): ${out}")
endif()
if(PROFILE_SIM STREQUAL "" OR SCAN_COST STREQUAL ""
   OR NOT PROFILE_SIM STREQUAL SCAN_COST)
  message(FATAL_ERROR
    "profile sim cost (${PROFILE_SIM}) != charged scan cost (${SCAN_COST}): ${out}")
endif()

# Session lifecycle over the wire: open, poll, cancel.
execute_process(
  COMMAND ${CLIENT} open --socket=${SOCKET} --script=${WORKDIR}/a2.tsv.bdl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"session\":([0-9]+)")
  message(FATAL_ERROR "client open failed: rc=${rc} ${out}")
endif()
set(SESSION ${CMAKE_MATCH_1})
execute_process(
  COMMAND ${CLIENT} poll --socket=${SOCKET} --session=${SESSION}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"ok\":true")
  message(FATAL_ERROR "client poll failed: rc=${rc} ${out}")
endif()
execute_process(
  COMMAND ${CLIENT} cancel --socket=${SOCKET} --session=${SESSION}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "client cancel failed: rc=${rc} ${out}")
endif()
execute_process(
  COMMAND ${CLIENT} stats --socket=${SOCKET}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"cancelled\":1")
  message(FATAL_ERROR "client stats missing cancelled count: rc=${rc} ${out}")
endif()

# Unknown sessions surface the documented error code and a nonzero exit.
execute_process(
  COMMAND ${CLIENT} poll --socket=${SOCKET} --session=9999
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(rc EQUAL 0 OR NOT out MATCHES "SRV-E003")
  message(FATAL_ERROR "poll of unknown session should fail with SRV-E003: rc=${rc} ${out}")
endif()

# Graceful shutdown: the client op drains the daemon and the process exits.
execute_process(
  COMMAND ${CLIENT} shutdown --socket=${SOCKET}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"draining\":true")
  message(FATAL_ERROR "client shutdown failed: rc=${rc} ${out}")
endif()
set(drained FALSE)
foreach(attempt RANGE 100)
  file(READ ${SRVLOG} srvlog)
  if(srvlog MATCHES "serverd: drained")
    set(drained TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT drained)
  execute_process(COMMAND sh -c "kill ${SERVERD_PID} 2>/dev/null")
  file(READ ${SRVLOG} srvlog)
  message(FATAL_ERROR "serverd did not drain after shutdown op: ${srvlog}")
endif()
