# Drives the aptrace CLI end to end: scenarios -> export -> run.
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(COMMAND ${CLI} scenarios RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "phishing_email")
  message(FATAL_ERROR "scenarios failed: rc=${rc} out=${out}")
endif()

execute_process(
  COMMAND ${CLI} export --scenario=excel_macro --out=${WORKDIR}/a2.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/a2.tsv)
  message(FATAL_ERROR "export failed: rc=${rc} out=${out}")
endif()

execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --sim-limit=2mins --quiet --dot=${WORKDIR}/a2.dot
          --json=${WORKDIR}/a2.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/a2.dot OR NOT EXISTS ${WORKDIR}/a2.json)
  message(FATAL_ERROR "run failed: rc=${rc} out=${out}")
endif()
if(NOT out MATCHES "start point: event")
  message(FATAL_ERROR "run output missing start point: ${out}")
endif()

# Drive the interactive shell with a piped command script.
file(WRITE ${WORKDIR}/shell_cmds.txt "alerts\nstep\nstatus\nquit\n")
execute_process(
  COMMAND ${CLI} shell --trace=${WORKDIR}/a2.tsv
  INPUT_FILE ${WORKDIR}/shell_cmds.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "alerts" OR NOT out MATCHES "no analysis running")
  message(FATAL_ERROR "shell failed: rc=${rc} out=${out}")
endif()
