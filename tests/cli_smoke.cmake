# Drives the aptrace CLI end to end: scenarios -> export -> run.
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(COMMAND ${CLI} scenarios RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "phishing_email")
  message(FATAL_ERROR "scenarios failed: rc=${rc} out=${out}")
endif()

execute_process(
  COMMAND ${CLI} export --scenario=excel_macro --out=${WORKDIR}/a2.tsv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/a2.tsv)
  message(FATAL_ERROR "export failed: rc=${rc} out=${out}")
endif()

execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --sim-limit=2mins --quiet --dot=${WORKDIR}/a2.dot
          --json=${WORKDIR}/a2.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/a2.dot OR NOT EXISTS ${WORKDIR}/a2.json)
  message(FATAL_ERROR "run failed: rc=${rc} out=${out}")
endif()
if(NOT out MATCHES "start point: event")
  message(FATAL_ERROR "run output missing start point: ${out}")
endif()

# Drive the interactive shell with a piped command script.
file(WRITE ${WORKDIR}/shell_cmds.txt "alerts\nstep\nstatus\nquit\n")
execute_process(
  COMMAND ${CLI} shell --trace=${WORKDIR}/a2.tsv
  INPUT_FILE ${WORKDIR}/shell_cmds.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "alerts" OR NOT out MATCHES "no analysis running")
  message(FATAL_ERROR "shell failed: rc=${rc} out=${out}")
endif()

# Lint: a script with three seeded defects must surface all of them in one
# invocation, with documented codes, in both human and SARIF output.
file(WRITE ${WORKDIR}/bad.bdl
  "backward proc p[exena = \"winword.exe\" and pid = \"abc\"] -> *\n"
  "where starttime = \"not a time\"\n")
execute_process(
  COMMAND ${LINT} --sarif=${WORKDIR}/bad.sarif ${WORKDIR}/bad.bdl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "lint should exit 1 on errors: rc=${rc} ${out}${err}")
endif()
foreach(code BDL-E004 BDL-E006 BDL-E007)
  if(NOT out MATCHES "${code}")
    message(FATAL_ERROR "lint output missing ${code}: ${out}")
  endif()
endforeach()
if(NOT out MATCHES "bad.bdl:1:17")
  message(FATAL_ERROR "lint output missing line:column: ${out}")
endif()
file(READ ${WORKDIR}/bad.sarif sarif)
if(NOT sarif MATCHES "\"version\":\"2.1.0\"" OR NOT sarif MATCHES "BDL-E004"
   OR NOT sarif MATCHES "\"startLine\":1" OR NOT sarif MATCHES "\"startColumn\":17")
  message(FATAL_ERROR "SARIF output malformed: ${sarif}")
endif()

# A clean script passes, and --werror flips warnings to a non-zero exit.
file(WRITE ${WORKDIR}/warn.bdl "backward proc p[] -> *\nwhere hop <= 0\n")
execute_process(COMMAND ${LINT} ${WORKDIR}/warn.bdl RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warning-only lint should exit 0: rc=${rc}")
endif()
execute_process(COMMAND ${LINT} --werror ${WORKDIR}/warn.bdl RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "lint --werror should exit 1 on warnings: rc=${rc}")
endif()

# --threads: a valid parallel run succeeds and exports the scan-thread
# gauge plus the deterministic scan-cost counter in the metrics snapshot.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --sim-limit=2mins --quiet --threads=2
          --json=${WORKDIR}/par1.json --metrics-out=${WORKDIR}/par.metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/par1.json)
  message(FATAL_ERROR "run --threads=2 failed: rc=${rc} ${out}${err}")
endif()
file(READ ${WORKDIR}/par.metrics metrics)
if(NOT metrics MATCHES "aptrace_executor_scan_threads 2")
  message(FATAL_ERROR "metrics missing scan_threads gauge: ${metrics}")
endif()
if(NOT metrics MATCHES "aptrace_executor_scan_cost_micros_total")
  message(FATAL_ERROR "metrics missing scan cost counter: ${metrics}")
endif()

# Determinism: a second --threads=2 run over the same inputs must produce
# a byte-identical graph JSON.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --sim-limit=2mins --quiet --threads=2 --json=${WORKDIR}/par2.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "second run --threads=2 failed: rc=${rc}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${WORKDIR}/par1.json ${WORKDIR}/par2.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--threads=2 graph JSON is not deterministic")
endif()

# --threads=0 (and any non-positive or non-numeric value) is a usage error
# with a documented diagnostic code.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --sim-limit=2mins --quiet --threads=0
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "CLI-E001")
  message(FATAL_ERROR "--threads=0 should fail with CLI-E001: rc=${rc} ${err}")
endif()

# An oversubscribed request warns and clamps but still runs.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --sim-limit=2mins --quiet --threads=4096
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT err MATCHES "CLI-W001")
  message(FATAL_ERROR "--threads=4096 should clamp with CLI-W001: rc=${rc} ${err}")
endif()

# Storage backends: the same analysis on --backend=row and
# --backend=columnar must produce byte-identical graph JSON (the physical
# layout may only change the simulated cost, never the answer). These
# runs are uncapped: a simulated-time limit would cut the two backends
# at different points, since the columnar scans are cheaper.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --quiet --backend=row --json=${WORKDIR}/row.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/row.json)
  message(FATAL_ERROR "run --backend=row failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --quiet --backend=columnar
          --json=${WORKDIR}/columnar.json --metrics-out=${WORKDIR}/col.metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/columnar.json)
  message(FATAL_ERROR "run --backend=columnar failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${WORKDIR}/row.json ${WORKDIR}/columnar.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--backend=columnar graph JSON differs from --backend=row")
endif()
file(READ ${WORKDIR}/col.metrics colmetrics)
if(NOT colmetrics MATCHES "aptrace_store_columnar_queries_total")
  message(FATAL_ERROR "columnar metrics missing backend counter: ${colmetrics}")
endif()

# An invalid backend is a usage error with a documented diagnostic code.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --sim-limit=2mins --quiet --backend=bogus
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "CLI-E002")
  message(FATAL_ERROR "--backend=bogus should fail with CLI-E002: rc=${rc} ${err}")
endif()

# Binary v2 container: export, analyze, and match the v1 text answer.
execute_process(
  COMMAND ${CLI} export --scenario=excel_macro --trace-format=v2
          --out=${WORKDIR}/a2v2.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/a2v2.bin)
  message(FATAL_ERROR "export --trace-format=v2 failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2v2.bin --script=${WORKDIR}/a2.tsv.bdl
          --quiet --backend=row --json=${WORKDIR}/v2.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/v2.json)
  message(FATAL_ERROR "run on v2 trace failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${WORKDIR}/row.json ${WORKDIR}/v2.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "v2-trace graph JSON differs from v1-trace answer")
endif()
execute_process(
  COMMAND ${CLI} export --scenario=excel_macro --trace-format=bogus
          --out=${WORKDIR}/never.bin
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "CLI-E003")
  message(FATAL_ERROR "--trace-format=bogus should fail with CLI-E003: rc=${rc} ${err}")
endif()

# The analysis CLI refuses to run a script that fails --lint --werror.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/warn.bdl
          --lint --werror --sim-limit=2mins --quiet
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 1 OR NOT err MATCHES "not running")
  message(FATAL_ERROR "run --lint --werror should refuse: rc=${rc} ${err}")
endif()

# ---------------------------------------------------------------- serverd
# Daemon smoke: start aptrace_serverd on a unix socket over the exported
# trace, drive it with aptrace_client, and check the tentpole invariant —
# a daemon-served `run` writes graph JSON byte-identical to `aptrace run`.
set(SOCKET ${WORKDIR}/serverd.sock)
set(SRVLOG ${WORKDIR}/serverd.log)
file(REMOVE ${SOCKET} ${SRVLOG})
execute_process(
  COMMAND sh -c "'${SERVERD}' --trace='${WORKDIR}/a2.tsv' --socket='${SOCKET}' \
                 > '${SRVLOG}' 2>&1 & echo $! > '${WORKDIR}/serverd.pid'"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch serverd: rc=${rc}")
endif()
file(READ ${WORKDIR}/serverd.pid SERVERD_PID)
string(STRIP "${SERVERD_PID}" SERVERD_PID)

# Wait (up to ~10s) for the daemon to announce readiness.
set(ready FALSE)
foreach(attempt RANGE 100)
  if(EXISTS ${SRVLOG})
    file(READ ${SRVLOG} srvlog)
    if(srvlog MATCHES "serverd: ready")
      set(ready TRUE)
      break()
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT ready)
  file(READ ${SRVLOG} srvlog)
  message(FATAL_ERROR "serverd never became ready: ${srvlog}")
endif()

# The tentpole invariant: served graph bytes == CLI graph bytes.
execute_process(
  COMMAND ${CLIENT} run --socket=${SOCKET} --script=${WORKDIR}/a2.tsv.bdl
          --json=${WORKDIR}/served.json --quiet
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/served.json)
  message(FATAL_ERROR "client run failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${WORKDIR}/row.json ${WORKDIR}/served.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "daemon-served graph JSON differs from `aptrace run`")
endif()

# Observability plane: scrape the daemon's HTTP endpoints through the
# client (no curl dependency in the test environment).
execute_process(
  COMMAND ${CLIENT} http --socket=${SOCKET} --path=/healthz
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "ok")
  message(FATAL_ERROR "client http /healthz failed: rc=${rc} ${out}")
endif()
execute_process(
  COMMAND ${CLIENT} http --socket=${SOCKET} --path=/metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "aptrace_service_sessions_opened_total"
   OR NOT out MATCHES "aptrace_service_http_requests_total")
  message(FATAL_ERROR "client http /metrics failed: rc=${rc} ${out}")
endif()
execute_process(
  COMMAND ${CLIENT} http --socket=${SOCKET} --path=/nope
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0 OR NOT err MATCHES "404")
  message(FATAL_ERROR "http /nope should exit nonzero with 404: rc=${rc} ${err}")
endif()

# A profiled daemon run: the rendered breakdown table appears, the graph
# bytes are untouched (profiling observes, never steers), and the profile
# totals reconcile exactly — total sim cost == the session's charged scan
# cost, total windows == its work units.
execute_process(
  COMMAND ${CLIENT} run --socket=${SOCKET} --script=${WORKDIR}/a2.tsv.bdl
          --profile --quiet --json=${WORKDIR}/profiled.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "query profile \\(probe unit:")
  message(FATAL_ERROR "client run --profile failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${WORKDIR}/row.json ${WORKDIR}/profiled.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--profile changed the served graph JSON")
endif()
string(REGEX MATCH "\"total\":{\"windows\":([0-9]+)" _ "${out}")
set(PROFILE_WINDOWS ${CMAKE_MATCH_1})
string(REGEX MATCH "\"sim_cost_micros\":([0-9]+)" _ "${out}")
set(PROFILE_SIM ${CMAKE_MATCH_1})
string(REGEX MATCH "\"scan_cost_micros\":([0-9]+)" _ "${out}")
set(SCAN_COST ${CMAKE_MATCH_1})
string(REGEX MATCH "\"work_units\":([0-9]+)" _ "${out}")
set(WORK_UNITS ${CMAKE_MATCH_1})
if(PROFILE_WINDOWS STREQUAL "" OR WORK_UNITS STREQUAL ""
   OR NOT PROFILE_WINDOWS STREQUAL WORK_UNITS)
  message(FATAL_ERROR
    "profile windows (${PROFILE_WINDOWS}) != work units (${WORK_UNITS}): ${out}")
endif()
if(PROFILE_SIM STREQUAL "" OR SCAN_COST STREQUAL ""
   OR NOT PROFILE_SIM STREQUAL SCAN_COST)
  message(FATAL_ERROR
    "profile sim cost (${PROFILE_SIM}) != charged scan cost (${SCAN_COST}): ${out}")
endif()

# Session lifecycle over the wire: open, poll, cancel.
execute_process(
  COMMAND ${CLIENT} open --socket=${SOCKET} --script=${WORKDIR}/a2.tsv.bdl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"session\":([0-9]+)")
  message(FATAL_ERROR "client open failed: rc=${rc} ${out}")
endif()
set(SESSION ${CMAKE_MATCH_1})
execute_process(
  COMMAND ${CLIENT} poll --socket=${SOCKET} --session=${SESSION}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"ok\":true")
  message(FATAL_ERROR "client poll failed: rc=${rc} ${out}")
endif()
execute_process(
  COMMAND ${CLIENT} cancel --socket=${SOCKET} --session=${SESSION}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "client cancel failed: rc=${rc} ${out}")
endif()
execute_process(
  COMMAND ${CLIENT} stats --socket=${SOCKET}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"cancelled\":1")
  message(FATAL_ERROR "client stats missing cancelled count: rc=${rc} ${out}")
endif()

# Unknown sessions surface the documented error code and a nonzero exit.
execute_process(
  COMMAND ${CLIENT} poll --socket=${SOCKET} --session=9999
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(rc EQUAL 0 OR NOT out MATCHES "SRV-E003")
  message(FATAL_ERROR "poll of unknown session should fail with SRV-E003: rc=${rc} ${out}")
endif()

# Graceful shutdown: the client op drains the daemon and the process exits.
execute_process(
  COMMAND ${CLIENT} shutdown --socket=${SOCKET}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"draining\":true")
  message(FATAL_ERROR "client shutdown failed: rc=${rc} ${out}")
endif()
set(drained FALSE)
foreach(attempt RANGE 100)
  file(READ ${SRVLOG} srvlog)
  if(srvlog MATCHES "serverd: drained")
    set(drained TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT drained)
  execute_process(COMMAND sh -c "kill ${SERVERD_PID} 2>/dev/null")
  file(READ ${SRVLOG} srvlog)
  message(FATAL_ERROR "serverd did not drain after shutdown op: ${srvlog}")
endif()

# ------------------------------------------------------------ durability
# Durable ingest (docs/durability.md): boot the daemon with --data-dir,
# ingest a batch (fsync'd to the WAL before the ack), checkpoint a parked
# session, then SIGKILL the process — no shutdown hook runs, whatever the
# WAL holds is what survives. A restart over the same data dir must
# replay the acknowledged batch, report the recovery on /metrics, resume
# the checkpoint, and serve graphs byte-identical to `aptrace run` over a
# trace that already contains the ingested events.

# The ingest payload reuses the last event of the exported trace with
# bumped timestamps, so the combined reference trace stays well-formed
# no matter how the scenario generator evolves.
file(READ ${WORKDIR}/a2.tsv base_trace)
if(NOT base_trace MATCHES
   "\nE\t([0-9]+)\t([0-9]+)\t([0-9]+)\t([0-9]+)\t([0-9]+)\t([0-9]+)\t([0-9]+)\n$")
  message(FATAL_ERROR "could not parse the last event line of a2.tsv")
endif()
set(ING_SUBJ ${CMAKE_MATCH_1})
set(ING_OBJ ${CMAKE_MATCH_2})
set(ING_AMOUNT ${CMAKE_MATCH_4})
set(ING_ACTION ${CMAKE_MATCH_5})
set(ING_DIR ${CMAKE_MATCH_6})
set(ING_HOST ${CMAKE_MATCH_7})
math(EXPR ING_TS1 "${CMAKE_MATCH_3} + 1000000")
math(EXPR ING_TS2 "${CMAKE_MATCH_3} + 2000000")
file(WRITE ${WORKDIR}/combined.tsv "${base_trace}")
foreach(ts ${ING_TS1} ${ING_TS2})
  file(APPEND ${WORKDIR}/combined.tsv
    "E\t${ING_SUBJ}\t${ING_OBJ}\t${ts}\t${ING_AMOUNT}\t${ING_ACTION}\t${ING_DIR}\t${ING_HOST}\n")
endforeach()
file(WRITE ${WORKDIR}/ingest.json
  "[{\"subject\":${ING_SUBJ},\"object\":${ING_OBJ},\"timestamp\":${ING_TS1},"
  "\"amount\":${ING_AMOUNT},\"action\":${ING_ACTION},\"direction\":${ING_DIR},"
  "\"host\":${ING_HOST}},"
  "{\"subject\":${ING_SUBJ},\"object\":${ING_OBJ},\"timestamp\":${ING_TS2},"
  "\"amount\":${ING_AMOUNT},\"action\":${ING_ACTION},\"direction\":${ING_DIR},"
  "\"host\":${ING_HOST}}]\n")

# The uninterrupted reference: a plain CLI run over base + ingested
# events. Recovery assigns replayed events dense ids in append order, so
# the daemon's recovered store is indistinguishable from this trace.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/combined.tsv
          --script=${WORKDIR}/a2.tsv.bdl --quiet --backend=row
          --json=${WORKDIR}/durable_ref.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/durable_ref.json)
  message(FATAL_ERROR "combined reference run failed: rc=${rc} ${out}${err}")
endif()

# Boot 1: empty data dir, so --trace seeds the store. --buffer-cap=1
# parks the session after one update batch, keeping it checkpointable.
set(DSOCKET ${WORKDIR}/durable1.sock)
set(DSRVLOG ${WORKDIR}/durable1.log)
set(DDIR ${WORKDIR}/ddir)
file(REMOVE ${DSOCKET} ${DSRVLOG})
file(REMOVE_RECURSE ${DDIR})
file(MAKE_DIRECTORY ${DDIR})
execute_process(
  COMMAND sh -c "'${SERVERD}' --trace='${WORKDIR}/a2.tsv' --data-dir='${DDIR}' \
                 --seal-tail=2 --buffer-cap=1 --socket='${DSOCKET}' \
                 > '${DSRVLOG}' 2>&1 & echo $! > '${WORKDIR}/durable1.pid'"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch durable serverd: rc=${rc}")
endif()
file(READ ${WORKDIR}/durable1.pid DURABLE_PID)
string(STRIP "${DURABLE_PID}" DURABLE_PID)
set(ready FALSE)
foreach(attempt RANGE 100)
  if(EXISTS ${DSRVLOG})
    file(READ ${DSRVLOG} srvlog)
    if(srvlog MATCHES "serverd: ready")
      set(ready TRUE)
      break()
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT ready)
  file(READ ${DSRVLOG} srvlog)
  message(FATAL_ERROR "durable serverd never became ready: ${srvlog}")
endif()

# Ingest: the ack carries the durable WAL sequence — the batch is on
# disk and fsync'd before this response exists.
execute_process(
  COMMAND ${CLIENT} ingest --socket=${DSOCKET} --events=${WORKDIR}/ingest.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"accepted\":2"
   OR NOT out MATCHES "\"wal_seq\":1")
  message(FATAL_ERROR "durable ingest failed: rc=${rc} ${out}")
endif()

# Wait for the scheduler to apply the batch to the store, so the session
# opened next sees the combined event set from its first window.
set(applied FALSE)
foreach(attempt RANGE 100)
  execute_process(
    COMMAND ${CLIENT} stats --socket=${DSOCKET}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out)
  if(rc EQUAL 0 AND out MATCHES "\"wal_applied_through\":1")
    set(applied TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT applied)
  message(FATAL_ERROR "ingested batch never applied: ${out}")
endif()

# Open a session, wait for the tiny buffer to park it, checkpoint it.
# The checkpoint carries the durable mark (store size + WAL position).
execute_process(
  COMMAND ${CLIENT} open --socket=${DSOCKET} --script=${WORKDIR}/a2.tsv.bdl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"session\":([0-9]+)")
  message(FATAL_ERROR "durable open failed: rc=${rc} ${out}")
endif()
set(DSESSION ${CMAKE_MATCH_1})
set(parked FALSE)
foreach(attempt RANGE 100)
  execute_process(
    COMMAND ${CLIENT} stats --socket=${DSOCKET}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out)
  if(rc EQUAL 0 AND out MATCHES "\"backpressure_stalls_total\":[1-9]")
    set(parked TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT parked)
  message(FATAL_ERROR "session never parked on backpressure: ${out}")
endif()
execute_process(
  COMMAND ${CLIENT} checkpoint --socket=${DSOCKET} --session=${DSESSION}
          --out=${WORKDIR}/durable.ckpt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/durable.ckpt)
  message(FATAL_ERROR "durable checkpoint failed: rc=${rc} ${out}")
endif()

# SIGKILL: no drain, no snapshot, no WAL reset. Everything acknowledged
# must still be recoverable from ${DDIR} alone.
execute_process(COMMAND sh -c "kill -9 ${DURABLE_PID}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to SIGKILL durable serverd: rc=${rc}")
endif()
execute_process(COMMAND sh -c "while kill -0 ${DURABLE_PID} 2>/dev/null; do sleep 0.05; done")

# Boot 2 over the same data dir: the manifest is absent (the kill
# skipped the drain snapshot), so --trace seeds the base store and the
# WAL replays the acknowledged batch on top.
set(DSOCKET2 ${WORKDIR}/durable2.sock)
set(DSRVLOG2 ${WORKDIR}/durable2.log)
file(REMOVE ${DSOCKET2} ${DSRVLOG2})
execute_process(
  COMMAND sh -c "'${SERVERD}' --trace='${WORKDIR}/a2.tsv' --data-dir='${DDIR}' \
                 --seal-tail=2 --socket='${DSOCKET2}' \
                 > '${DSRVLOG2}' 2>&1 & echo $! > '${WORKDIR}/durable2.pid'"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to relaunch durable serverd: rc=${rc}")
endif()
file(READ ${WORKDIR}/durable2.pid DURABLE_PID2)
string(STRIP "${DURABLE_PID2}" DURABLE_PID2)
set(ready FALSE)
foreach(attempt RANGE 100)
  if(EXISTS ${DSRVLOG2})
    file(READ ${DSRVLOG2} srvlog)
    if(srvlog MATCHES "serverd: ready")
      set(ready TRUE)
      break()
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT ready)
  file(READ ${DSRVLOG2} srvlog)
  message(FATAL_ERROR "recovered serverd never became ready: ${srvlog}")
endif()
file(READ ${DSRVLOG2} srvlog)
if(NOT srvlog MATCHES "serverd: recovered 2 events \\(1 batches")
  message(FATAL_ERROR "recovery summary missing or wrong: ${srvlog}")
endif()

# The recovery metrics are on the scrape surface.
execute_process(
  COMMAND ${CLIENT} http --socket=${DSOCKET2} --path=/metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "aptrace_wal_recovered_batches_total 1"
   OR NOT out MATCHES "aptrace_wal_recovered_events_total 2")
  message(FATAL_ERROR "recovery metrics missing from /metrics: rc=${rc} ${out}")
endif()

# Resume the pre-crash checkpoint: the durable mark validates against
# the recovered store (no double-ingest, no lost batch), and the
# completed session's graph is byte-identical to the uninterrupted run.
execute_process(
  COMMAND ${CLIENT} run --socket=${DSOCKET2} --resume=${WORKDIR}/durable.ckpt
          --json=${WORKDIR}/durable_resumed.json --quiet
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/durable_resumed.json)
  message(FATAL_ERROR "resume after crash failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/durable_ref.json ${WORKDIR}/durable_resumed.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed graph differs from the uninterrupted reference")
endif()

# A fresh session over the recovered store agrees too.
execute_process(
  COMMAND ${CLIENT} run --socket=${DSOCKET2} --script=${WORKDIR}/a2.tsv.bdl
          --json=${WORKDIR}/durable_served.json --quiet
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/durable_served.json)
  message(FATAL_ERROR "post-recovery run failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/durable_ref.json ${WORKDIR}/durable_served.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "post-recovery graph differs from the reference")
endif()

# Graceful drain folds the WAL into a snapshot: the manifest appears and
# the log records the snapshot position.
execute_process(
  COMMAND ${CLIENT} shutdown --socket=${DSOCKET2}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "durable shutdown failed: rc=${rc} ${out}")
endif()
set(drained FALSE)
foreach(attempt RANGE 100)
  file(READ ${DSRVLOG2} srvlog)
  if(srvlog MATCHES "serverd: drained")
    set(drained TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT drained)
  execute_process(COMMAND sh -c "kill ${DURABLE_PID2} 2>/dev/null")
  file(READ ${DSRVLOG2} srvlog)
  message(FATAL_ERROR "durable serverd did not drain: ${srvlog}")
endif()
if(NOT srvlog MATCHES "serverd: snapshot through batch 1 written to"
   OR NOT EXISTS ${DDIR}/MANIFEST)
  message(FATAL_ERROR "drain snapshot missing: ${srvlog}")
endif()

# ------------------------------------------------------------- sharding
# Sharded store (docs/sharding.md): the same analysis at --shards=1 and
# --shards=4 must write byte-identical graph JSON — sharding changes the
# physical scan plan (scatter-gather over (host, time) shards), never
# the answer. Uncapped for the same reason as the backend comparison.
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --quiet --backend=row --shards=1 --json=${WORKDIR}/shard1.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/shard1.json)
  message(FATAL_ERROR "run --shards=1 failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
          --quiet --backend=row --shards=4
          --json=${WORKDIR}/shard4.json --metrics-out=${WORKDIR}/shard.metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/shard4.json)
  message(FATAL_ERROR "run --shards=4 failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${WORKDIR}/shard1.json ${WORKDIR}/shard4.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--shards=4 graph JSON differs from --shards=1")
endif()

# The sharded run exports the shard gauge and a non-zero scatter counter.
file(READ ${WORKDIR}/shard.metrics shardmetrics)
if(NOT shardmetrics MATCHES "aptrace_store_shards 4")
  message(FATAL_ERROR "metrics missing shard gauge: ${shardmetrics}")
endif()
if(NOT shardmetrics MATCHES "aptrace_store_shard_scans_total [1-9]")
  message(FATAL_ERROR "metrics missing shard scan counter: ${shardmetrics}")
endif()

# Invalid or zero shard counts are usage errors with a documented code.
foreach(bad 0 65 bogus)
  execute_process(
    COMMAND ${CLI} run --trace=${WORKDIR}/a2.tsv --script=${WORKDIR}/a2.tsv.bdl
            --sim-limit=2mins --quiet --shards=${bad}
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(rc EQUAL 0 OR NOT err MATCHES "CLI-E005")
    message(FATAL_ERROR "--shards=${bad} should fail with CLI-E005: rc=${rc} ${err}")
  endif()
endforeach()

# A sharded daemon serves the same bytes and exposes per-shard counters
# on the scrape surface.
set(SHSOCKET ${WORKDIR}/sharded.sock)
set(SHSRVLOG ${WORKDIR}/sharded.log)
file(REMOVE ${SHSOCKET} ${SHSRVLOG})
execute_process(
  COMMAND sh -c "'${SERVERD}' --trace='${WORKDIR}/a2.tsv' --shards=4 \
                 --socket='${SHSOCKET}' \
                 > '${SHSRVLOG}' 2>&1 & echo $! > '${WORKDIR}/sharded.pid'"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch sharded serverd: rc=${rc}")
endif()
file(READ ${WORKDIR}/sharded.pid SHARDED_PID)
string(STRIP "${SHARDED_PID}" SHARDED_PID)
set(ready FALSE)
foreach(attempt RANGE 100)
  if(EXISTS ${SHSRVLOG})
    file(READ ${SHSRVLOG} srvlog)
    if(srvlog MATCHES "serverd: ready")
      set(ready TRUE)
      break()
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT ready)
  file(READ ${SHSRVLOG} srvlog)
  message(FATAL_ERROR "sharded serverd never became ready: ${srvlog}")
endif()
execute_process(
  COMMAND ${CLIENT} run --socket=${SHSOCKET} --script=${WORKDIR}/a2.tsv.bdl
          --json=${WORKDIR}/sharded_served.json --quiet
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/sharded_served.json)
  message(FATAL_ERROR "sharded client run failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/shard1.json ${WORKDIR}/sharded_served.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sharded daemon graph JSON differs from --shards=1")
endif()
execute_process(
  COMMAND ${CLIENT} http --socket=${SHSOCKET} --path=/metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "aptrace_store_shards 4"
   OR NOT out MATCHES "aptrace_store_shard_scans_total [1-9]")
  message(FATAL_ERROR "sharded /metrics missing shard counters: rc=${rc} ${out}")
endif()
execute_process(
  COMMAND ${CLIENT} shutdown --socket=${SHSOCKET}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sharded shutdown failed: rc=${rc} ${out}")
endif()
set(drained FALSE)
foreach(attempt RANGE 100)
  file(READ ${SHSRVLOG} srvlog)
  if(srvlog MATCHES "serverd: drained")
    set(drained TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT drained)
  execute_process(COMMAND sh -c "kill ${SHARDED_PID} 2>/dev/null")
  file(READ ${SHSRVLOG} srvlog)
  message(FATAL_ERROR "sharded serverd did not drain: ${srvlog}")
endif()

# Checkpoints record the shard layout: one taken over a 4-shard store
# resumes only into a 4-shard store; a mismatched restore is refused
# with the documented code instead of silently reinterpreting the
# layout-dependent probe accounting.
file(WRITE ${WORKDIR}/shard_save.txt
  "start ${WORKDIR}/a2.tsv.bdl\nstep\nsave ${WORKDIR}/shard.ckpt\nquit\n")
execute_process(
  COMMAND ${CLI} shell --trace=${WORKDIR}/a2.tsv --shards=4
  INPUT_FILE ${WORKDIR}/shard_save.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "checkpoint written to"
   OR NOT EXISTS ${WORKDIR}/shard.ckpt)
  message(FATAL_ERROR "sharded shell save failed: rc=${rc} ${out}")
endif()
file(WRITE ${WORKDIR}/shard_load.txt "load ${WORKDIR}/shard.ckpt\nquit\n")
execute_process(
  COMMAND ${CLI} shell --trace=${WORKDIR}/a2.tsv --shards=1
  INPUT_FILE ${WORKDIR}/shard_load.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "STO-E011")
  message(FATAL_ERROR
    "mismatched-shard restore should report STO-E011: rc=${rc} ${out}")
endif()
execute_process(
  COMMAND ${CLI} shell --trace=${WORKDIR}/a2.tsv --shards=4
  INPUT_FILE ${WORKDIR}/shard_load.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "resumed from")
  message(FATAL_ERROR "matching-shard restore failed: rc=${rc} ${out}")
endif()

# ---------------------------------------------------------- distribution
# Distributed shard fabric (docs/distribution.md): aptrace_fleet forks a
# 4-daemon shardd fleet plus a coordinator serverd wired to it with one
# --shard-endpoint= per daemon. The tentpole invariant: graphs served
# over the fabric are byte-identical to `aptrace run` over the same
# trace. Then the degraded-mode contract — SIGKILL one daemon, the next
# query fails with a typed DST error while the coordinator stays up —
# and the dist counters on the /metrics scrape surface. Every failure
# path goes through dist_fail so no daemon outlives the test.
if(DEFINED FLEET AND DEFINED SHARDD)

set(FDIR ${WORKDIR}/fleet)
set(FSOCKET ${WORKDIR}/fleet.sock)
set(FLOG ${WORKDIR}/fleet.log)
file(REMOVE ${FSOCKET} ${FLOG})
file(REMOVE_RECURSE ${FDIR})
file(MAKE_DIRECTORY ${FDIR})
execute_process(
  COMMAND sh -c "'${FLEET}' --shardd='${SHARDD}' --serverd='${SERVERD}' \
                 --shards=4 --trace='${WORKDIR}/a2.tsv' --socket='${FSOCKET}' \
                 --pid-dir='${FDIR}' \
                 > '${FLOG}' 2>&1 & echo $! > '${WORKDIR}/fleet.pid'"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch fleet: rc=${rc}")
endif()
file(READ ${WORKDIR}/fleet.pid FLEET_PID)
string(STRIP "${FLEET_PID}" FLEET_PID)

# Teardown that works from any failure point: TERM the launcher (it
# forwards the signal to the coordinator and reaps its shardds on exit),
# wait briefly, then force-kill stragglers via the pid files.
macro(dist_teardown)
  execute_process(COMMAND sh -c "\
kill ${FLEET_PID} 2>/dev/null; \
for i in $(seq 1 50); do kill -0 ${FLEET_PID} 2>/dev/null || break; sleep 0.1; done; \
kill -9 ${FLEET_PID} 2>/dev/null; \
for f in '${FDIR}'/shard*.pid; do [ -f \"$f\" ] && kill -9 $(cat \"$f\") 2>/dev/null; done; \
true")
endmacro()
macro(dist_fail msg)
  dist_teardown()
  message(FATAL_ERROR "${msg}")
endmacro()

# The launcher logs the shardd endpoints, the coordinator announces the
# fabric, then its usual ready line.
set(ready FALSE)
foreach(attempt RANGE 150)
  if(EXISTS ${FLOG})
    file(READ ${FLOG} fleetlog)
    if(fleetlog MATCHES "serverd: ready")
      set(ready TRUE)
      break()
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT ready)
  file(READ ${FLOG} fleetlog)
  dist_fail("distributed serverd never became ready: ${fleetlog}")
endif()
if(NOT fleetlog MATCHES "fleet: 4 shardd\\(s\\) ready"
   OR NOT fleetlog MATCHES "distributed fabric: 4 remote shard")
  dist_fail("fleet log missing fabric announcements: ${fleetlog}")
endif()

# The tentpole invariant: fabric-served graph bytes == `aptrace run`.
execute_process(
  COMMAND ${CLIENT} run --socket=${FSOCKET} --script=${WORKDIR}/a2.tsv.bdl
          --json=${WORKDIR}/dist_served.json --quiet
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/dist_served.json)
  dist_fail("distributed client run failed: rc=${rc} ${out}${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/row.json ${WORKDIR}/dist_served.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  dist_fail("fabric-served graph JSON differs from `aptrace run`")
endif()

# The dist counters are on the scrape surface: RPCs flowed, no shard has
# been declared down yet.
execute_process(
  COMMAND ${CLIENT} http --socket=${FSOCKET} --path=/metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "aptrace_dist_rpcs_total [1-9]"
   OR NOT out MATCHES "aptrace_store_shards 4")
  dist_fail("distributed /metrics missing dist counters: rc=${rc} ${out}")
endif()
if(NOT out MATCHES "aptrace_dist_shard_down_total 0")
  dist_fail("healthy fleet should report zero shards down: ${out}")
endif()

# Degraded mode: SIGKILL one daemon (no drain — its connections die
# mid-stream). The next query must fail with a typed DST error, within
# the client's bounded retry budget, and the coordinator must stay up.
file(READ ${FDIR}/shard2.pid SHARD2_PID)
string(STRIP "${SHARD2_PID}" SHARD2_PID)
# No wait-for-exit here: the kernel closes the daemon's sockets at the
# kill, and the corpse stays a zombie until the launcher reaps it — so
# polling `kill -0` would spin forever.
execute_process(COMMAND sh -c "kill -9 ${SHARD2_PID}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  dist_fail("failed to SIGKILL shardd 2: rc=${rc}")
endif()
execute_process(
  COMMAND ${CLIENT} run --socket=${FSOCKET} --script=${WORKDIR}/a2.tsv.bdl
          --json=${WORKDIR}/dist_degraded.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  dist_fail("query over a killed shard should fail, not succeed: ${out}")
endif()
if(NOT "${out}${err}" MATCHES "DST-")
  dist_fail("degraded query missing typed DST error: ${out}${err}")
endif()
execute_process(
  COMMAND ${CLIENT} http --socket=${FSOCKET} --path=/healthz
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "ok")
  dist_fail("coordinator died with its shard: rc=${rc} ${out}")
endif()
execute_process(
  COMMAND ${CLIENT} http --socket=${FSOCKET} --path=/metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "aptrace_dist_shard_down_total [1-9]"
   OR NOT out MATCHES "aptrace_dist_retries_total [1-9]")
  dist_fail("degraded /metrics missing shard-down accounting: rc=${rc} ${out}")
endif()

# Graceful teardown: shut the coordinator down through the client; the
# launcher reaps the remaining shardds and exits with the coordinator's
# code.
execute_process(
  COMMAND ${CLIENT} shutdown --socket=${FSOCKET}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  dist_fail("distributed shutdown failed: rc=${rc} ${out}")
endif()
set(stopped FALSE)
foreach(attempt RANGE 100)
  execute_process(COMMAND sh -c "kill -0 ${FLEET_PID} 2>/dev/null"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    set(stopped TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT stopped)
  dist_fail("fleet launcher did not exit after coordinator shutdown")
endif()
foreach(shard RANGE 3)
  if(EXISTS ${FDIR}/shard${shard}.pid)
    file(READ ${FDIR}/shard${shard}.pid SPID)
    string(STRIP "${SPID}" SPID)
    execute_process(COMMAND sh -c "kill -0 ${SPID} 2>/dev/null"
                    RESULT_VARIABLE rc)
    if(rc EQUAL 0)
      dist_fail("shardd ${shard} (pid ${SPID}) outlived the fleet")
    endif()
  endif()
endforeach()

endif()  # DEFINED FLEET AND DEFINED SHARDD
