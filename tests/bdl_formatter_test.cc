// The BDL formatter renders compiled specs back to canonical text; the
// core property is the round trip compile(format(compile(s))) ==
// compile(s) over the whole corpus.

#include <gtest/gtest.h>

#include "bdl/analyzer.h"
#include "bdl/formatter.h"
#include "core/refiner.h"  // not used directly; keeps ToString comparable

namespace aptrace::bdl {
namespace {

TrackingSpec MustCompile(const std::string& text) {
  auto spec = CompileBdl(text);
  EXPECT_TRUE(spec.ok()) << spec.status() << "\nscript:\n" << text;
  return spec.ok() ? std::move(spec.value()) : TrackingSpec{};
}

std::string CondStr(const Condition* c) {
  return c == nullptr ? std::string() : c->ToString();
}

void ExpectEquivalent(const TrackingSpec& a, const TrackingSpec& b,
                      const std::string& formatted) {
  SCOPED_TRACE("formatted:\n" + formatted);
  EXPECT_EQ(a.direction, b.direction);
  EXPECT_EQ(a.time_from, b.time_from);
  EXPECT_EQ(a.time_to, b.time_to);
  EXPECT_EQ(a.hosts, b.hosts);
  EXPECT_EQ(a.time_budget, b.time_budget);
  EXPECT_EQ(a.hop_limit, b.hop_limit);
  EXPECT_EQ(a.output_path, b.output_path);
  EXPECT_EQ(CondStr(a.where.get()), CondStr(b.where.get()));
  ASSERT_EQ(a.chain.size(), b.chain.size());
  for (size_t i = 0; i < a.chain.size(); ++i) {
    EXPECT_EQ(a.chain[i].wildcard, b.chain[i].wildcard);
    EXPECT_EQ(a.chain[i].type, b.chain[i].type);
    EXPECT_EQ(CondStr(a.chain[i].cond.get()),
              CondStr(b.chain[i].cond.get()));
  }
  ASSERT_EQ(a.prioritize.size(), b.prioritize.size());
  for (size_t i = 0; i < a.prioritize.size(); ++i) {
    ASSERT_EQ(a.prioritize[i].chain.size(), b.prioritize[i].chain.size());
    for (size_t j = 0; j < a.prioritize[i].chain.size(); ++j) {
      const auto& pa = a.prioritize[i].chain[j];
      const auto& pb = b.prioritize[i].chain[j];
      EXPECT_EQ(pa.object_type, pb.object_type);
      EXPECT_EQ(pa.amount_vs_upstream, pb.amount_vs_upstream);
      EXPECT_EQ(CondStr(pa.cond.get()), CondStr(pb.cond.get()));
    }
  }
}

class FormatterRoundTrip : public testing::TestWithParam<const char*> {};

TEST_P(FormatterRoundTrip, CompileFormatCompile) {
  const TrackingSpec first = MustCompile(GetParam());
  const std::string formatted = FormatSpec(first);
  const TrackingSpec second = MustCompile(formatted);
  ExpectEquivalent(first, second, formatted);
  // Formatting is a fixed point after one round.
  EXPECT_EQ(FormatSpec(second), formatted);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, FormatterRoundTrip,
    testing::Values(
        "backward proc p[] -> *",
        "forward file f[] -> *",
        "backward ip a[dst_ip = \"185.220.101.45\" and subject_name = "
        "\"java.exe\"] -> *",
        "from \"03/26/2019\" to \"04/27/2019\" in \"desktop1\", \"desktop2\" "
        "backward file f[path = \"C://Sensitive/important.doc\" and "
        "event_time = \"04/16/2019:06:15:14\"] -> proc p[exename = "
        "\"malware*\" or pid = 12] -> ip i[dst_ip = \"168.120.11.118\"] "
        "where time < 10mins and hop < 25 and proc.exename != \"explorer\" "
        "output = \"./result.dot\"",
        "backward proc p[] -> * where file.isReadonly = true or "
        "proc.isWriteThrough = true",
        "backward proc p[] -> * prioritize [type = file and src.path = "
        "\"*secret*\"] <- [type = network and dst.ip = \"203.*\" and amount "
        ">= size]",
        "backward proc p[] -> * where time <= 1500ms",
        "backward file f[path = \"weird \\\"quoted\\\" name\"] -> *",
        "forward file f[] -> proc p[exename = \"java.exe\"] -> ip i[dst_ip "
        "= \"185.*\"] where hop <= 7"));

TEST(FormatterTest, EmptyConditionRendersEmptyBrackets) {
  const TrackingSpec spec = MustCompile("backward proc p[] -> *");
  const std::string formatted = FormatSpec(spec);
  EXPECT_NE(formatted.find("proc p[]"), std::string::npos);
  EXPECT_NE(formatted.find("-> *"), std::string::npos);
}

TEST(FormatterTest, TimeValuesRenderAsTimeStrings) {
  const TrackingSpec spec = MustCompile(
      "backward file f[event_time = \"04/16/2019:06:15:14\"] -> *");
  const std::string formatted = FormatSpec(spec);
  EXPECT_NE(formatted.find("\"04/16/2019:06:15:14\""), std::string::npos);
  // Never the raw microsecond integer.
  EXPECT_EQ(formatted.find("1555394114000000"), std::string::npos);
}

TEST(FormatterTest, FormatConditionNullIsEmpty) {
  EXPECT_EQ(FormatCondition(nullptr), "");
}

}  // namespace
}  // namespace aptrace::bdl
