#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json_dict.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/run_metadata.h"
#include "obs/trace.h"

namespace aptrace::obs {
namespace {

TEST(CounterTest, ConcurrentAddsAreLossless) {
  MetricsRegistry registry;
  Counter* c = registry.FindOrCreateCounter("test_total");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Add();
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST(RegistryTest, FindOrCreateReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.FindOrCreateCounter("x_total", "first help");
  Counter* b = registry.FindOrCreateCounter("x_total", "ignored help");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.FindOrCreateGauge("g"), registry.FindOrCreateGauge("g"));
  EXPECT_EQ(registry.FindOrCreateHistogram("h"),
            registry.FindOrCreateHistogram("h"));
}

TEST(RegistryTest, GlobalPreregistersTheCatalog) {
  // Every metric name is listed in an export even before any
  // instrumentation site runs — runs that skip a subsystem still emit
  // zero-valued series for it.
  const std::string text = MetricsRegistry::Global().ExportPrometheus();
  EXPECT_NE(text.find(names::kExecutorWindowsProcessed), std::string::npos);
  EXPECT_NE(text.find(names::kDedupWindowClips), std::string::npos);
  EXPECT_NE(text.find(names::kStoreEventsScanned), std::string::npos);
  EXPECT_NE(text.find(names::kUpdateBatchLatency), std::string::npos);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpper) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.FindOrCreateHistogram("lat", "", {1, 2, 5});
  for (double v : {0.5, 1.0, 1.5, 2.0, 5.0, 7.0}) h->Observe(v);
  // le=1: 0.5, 1.0 | le=2: 1.5, 2.0 | le=5: 5.0 | +Inf: 7.0
  const auto counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h->count(), 6u);
  EXPECT_DOUBLE_EQ(h->sum(), 17.0);
}

TEST(HistogramTest, PercentileUsesTheSampleReservoir) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.FindOrCreateHistogram("lat");
  for (int i = 1; i <= 100; ++i) h->Observe(i);
  EXPECT_NEAR(h->Percentile(50), 50.5, 0.6);
  EXPECT_NEAR(h->Percentile(99), 99, 1.1);
}

TEST(HistogramTest, EmptyPercentileIsNaN) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.FindOrCreateHistogram("lat");
  EXPECT_TRUE(std::isnan(h->Percentile(50)));
}

TEST(ExportTest, PrometheusGolden) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter("events_total", "Total events")->Add(3);
  registry.FindOrCreateGauge("depth")->Set(-2);
  LatencyHistogram* h = registry.FindOrCreateHistogram("lat", "", {0.1, 1});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(2.0);
  EXPECT_EQ(registry.ExportPrometheus(),
            "# HELP events_total Total events\n"
            "# TYPE events_total counter\n"
            "events_total 3\n"
            "# TYPE depth gauge\n"
            "depth -2\n"
            "# TYPE lat histogram\n"
            "lat_bucket{le=\"0.1\"} 1\n"
            "lat_bucket{le=\"1\"} 2\n"
            "lat_bucket{le=\"+Inf\"} 3\n"
            "lat_sum 2.55\n"
            "lat_count 3\n"
            // Quantiles ride along as plain sibling series, linearly
            // interpolated from the sample reservoir {0.05, 0.5, 2.0}.
            "lat_p50 0.5\n"
            "lat_p95 1.85\n"
            "lat_p99 1.97\n");
}

TEST(ExportTest, EmptyHistogramEmitsNoQuantileLines) {
  // NaN is not valid Prometheus exposition text, so a histogram that
  // never observed anything exports buckets and count only.
  MetricsRegistry registry;
  registry.FindOrCreateHistogram("lat", "", {1});
  const std::string text = registry.ExportPrometheus();
  EXPECT_NE(text.find("lat_count 0\n"), std::string::npos);
  EXPECT_EQ(text.find("lat_p50"), std::string::npos);
  EXPECT_EQ(text.find("lat_p95"), std::string::npos);
  EXPECT_EQ(text.find("lat_p99"), std::string::npos);
}

TEST(ExportTest, JsonGolden) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter("events_total")->Add(3);
  LatencyHistogram* h = registry.FindOrCreateHistogram("lat", "", {1});
  h->Observe(0.5);
  EXPECT_EQ(registry.ExportJson(),
            "{\"counters\":{\"events_total\":3},"
            "\"gauges\":{},"
            "\"histograms\":{\"lat\":{\"count\":1,\"sum\":0.5,"
            "\"buckets\":[{\"le\":1,\"count\":1},"
            "{\"le\":\"+Inf\",\"count\":0}],"
            "\"p50\":0.5,\"p90\":0.5,\"p99\":0.5}}}");
}

TEST(ExportTest, EmptyHistogramPercentilesEncodeAsNull) {
  MetricsRegistry registry;
  registry.FindOrCreateHistogram("lat", "", {1});
  const std::string json = registry.ExportJson();
  EXPECT_NE(json.find("\"p50\":null"), std::string::npos);
}

TEST(JsonDictTest, EscapesAndEncodes) {
  JsonDict d;
  d.Add("a\"b", std::string_view("x\ny"));
  d.Add("n", static_cast<uint64_t>(7));
  d.Add("f", 1.5);
  d.Add("nan", std::nan(""));
  d.Add("yes", true);
  EXPECT_EQ(d.Str(),
            "{\"a\\\"b\":\"x\\ny\",\"n\":7,\"f\":1.5,\"nan\":null,"
            "\"yes\":true}");
}

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  tracer.Clear();
  { APTRACE_SPAN("test/disabled"); }
  tracer.RecordCounter("test/counter", 1);
  EXPECT_EQ(tracer.RecordCount(), 0u);
}

TEST(TracerTest, ChromeTraceContainsSpansAndCounters) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  { APTRACE_SPAN("test/span_a"); }
  { APTRACE_SPAN("test/span_b"); }
  tracer.RecordCounter("test/queue", 42);
  tracer.SetEnabled(false);
  EXPECT_EQ(tracer.RecordCount(), 3u);
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test/span_a\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test/span_b\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test/queue\",\"ph\":\"C\""),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":42}"), std::string::npos);
  tracer.Clear();
}

TEST(TracerTest, ChromeTraceLeadsWithProcessMetadata) {
  // Perfetto labels the process from a ph:"M" process_name record; it is
  // always the first traceEvent, even when nothing was recorded.
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":["
                       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                       "\"args\":{\"name\":\"aptrace\"}}",
                       0),
            0u)
      << json;
}

TEST(TracerTest, ThreadNameMetadataIsFirstWins) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  std::thread worker([&tracer] {
    tracer.SetThreadName("original-role");
    tracer.SetThreadName("later-role");
    APTRACE_SPAN("test/named");
  });
  worker.join();
  tracer.SetEnabled(false);
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"name\":\"thread_name\",\"ph\":\"M\""),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"original-role\"}"),
            std::string::npos);
  EXPECT_EQ(json.find("later-role"), std::string::npos);
  tracer.Clear();
}

TEST(TracerTest, SetThreadNameWhileDisabledIsNoOp) {
  // An untraced run must not allocate a ring buffer just to carry a
  // label, so naming a thread while disabled does nothing.
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  std::thread worker([&tracer] { tracer.SetThreadName("ghost-role"); });
  worker.join();
  EXPECT_EQ(tracer.ToChromeTraceJson().find("ghost-role"),
            std::string::npos);
}

TEST(TracerTest, SetRingCapacityAppliesToNewThreads) {
  // The APTRACE_FLIGHT_BUFFER knob: threads whose buffers are allocated
  // after the call get the new capacity; this thread's existing ring is
  // untouched.
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.SetRingCapacity(8);
  tracer.SetEnabled(true);
  std::thread worker([] {
    for (int i = 0; i < 100; ++i) {
      APTRACE_SPAN("test/capped");
    }
  });
  worker.join();
  tracer.SetEnabled(false);
  EXPECT_EQ(tracer.RecordCount(), 8u);
  tracer.SetRingCapacity(Tracer::kRingCapacity);
  tracer.Clear();
}

TEST(TracerTest, RingBufferCapsRetainedRecords) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  for (size_t i = 0; i < Tracer::kRingCapacity + 100; ++i) {
    APTRACE_SPAN("test/ring");
  }
  tracer.SetEnabled(false);
  EXPECT_EQ(tracer.RecordCount(), Tracer::kRingCapacity);
  tracer.Clear();
  EXPECT_EQ(tracer.RecordCount(), 0u);
}

TEST(RunMetadataTest, JsonCarriesFactsAndMetrics) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter("c_total")->Add(1);
  RunMetadata meta;
  meta.name = "bench_x";
  meta.invocation = "bench_x --cases=1";
  meta.store_events = 10;
  meta.store_objects = 4;
  meta.wall_seconds = 1.25;
  meta.extra.emplace_back("seed", "42");
  const std::string json = RunMetadataJson(meta, registry);
  EXPECT_EQ(json,
            "{\"name\":\"bench_x\",\"invocation\":\"bench_x --cases=1\","
            "\"store_events\":10,\"store_objects\":4,\"wall_seconds\":1.25,"
            "\"extra\":{\"seed\":\"42\"},"
            "\"metrics\":{\"counters\":{\"c_total\":1},\"gauges\":{},"
            "\"histograms\":{}}}");
}

}  // namespace
}  // namespace aptrace::obs
