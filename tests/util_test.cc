#include <cmath>

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/clock.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/wildcard.h"

namespace aptrace {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad foo");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad foo");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------- Clock

TEST(SimClockTest, StartsAtGivenTimeAndAdvances) {
  SimClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.AdvanceMicros(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.AdvanceMicros(-10);  // negative deltas are ignored
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.AdvanceTo(120);  // backwards jump is a no-op
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.AdvanceTo(300);
  EXPECT_EQ(clock.NowMicros(), 300);
}

TEST(RealClockTest, MonotonicallyNonDecreasing) {
  RealClock clock;
  const TimeMicros a = clock.NowMicros();
  const TimeMicros b = clock.NowMicros();
  EXPECT_LE(a, b);
  clock.AdvanceMicros(1000000);  // no-op on a real clock
  EXPECT_LE(b, clock.NowMicros() + 1000000);
}

// ---------------------------------------------------------------- Stats

TEST(SampleStatsTest, BasicMoments) {
  SampleStats s;
  s.AddAll({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_NEAR(s.Stddev(), 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(s.Min(), 1);
  EXPECT_DOUBLE_EQ(s.Max(), 5);
  EXPECT_DOUBLE_EQ(s.Median(), 3);
}

TEST(SampleStatsTest, PercentilesInterpolate) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(90), 90.1, 1e-9);
  EXPECT_NEAR(s.Percentile(99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100);
}

TEST(SampleStatsTest, EmptyIsSafe) {
  SampleStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 0);
  // Empty percentiles are NaN, not 0: a zero would read as "instant"
  // in latency reports. NaN compares false against any threshold, so
  // `> 0` guards on the result stay correct.
  EXPECT_TRUE(std::isnan(s.Percentile(50)));
  EXPECT_TRUE(std::isnan(s.Percentile(0)));
}

TEST(SampleStatsTest, EmptyBoxIsAllNaN) {
  SampleStats s;
  const auto box = s.Box();
  EXPECT_TRUE(std::isnan(box.min));
  EXPECT_TRUE(std::isnan(box.q1));
  EXPECT_TRUE(std::isnan(box.median));
  EXPECT_TRUE(std::isnan(box.q3));
  EXPECT_TRUE(std::isnan(box.max));
  EXPECT_TRUE(box.outliers.empty());
}

TEST(SampleStatsTest, BoxPlotFindsOutliers) {
  SampleStats s;
  // Tight cluster plus one extreme outlier.
  s.AddAll({10, 11, 12, 13, 14, 15, 16, 1000});
  const auto box = s.Box();
  EXPECT_DOUBLE_EQ(box.min, 10);
  EXPECT_DOUBLE_EQ(box.max, 1000);
  ASSERT_EQ(box.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(box.outliers[0], 1000);
  EXPECT_LE(box.whisker_hi, 1000);
  EXPECT_GE(box.q3, box.median);
  EXPECT_GE(box.median, box.q1);
}

TEST(HistogramTest, CountsAndThresholds) {
  Histogram h(0, 100, 10);
  for (int i = 0; i < 100; ++i) h.Add(i);
  EXPECT_EQ(h.TotalCount(), 100u);
  EXPECT_NEAR(h.FractionAtLeast(90), 0.10, 1e-9);
  EXPECT_NEAR(h.FractionAtLeast(0), 1.0, 1e-9);
  // Out-of-range values clamp into edge buckets instead of crashing.
  h.Add(-5);
  h.Add(500);
  EXPECT_EQ(h.TotalCount(), 102u);
}

// ---------------------------------------------------------------- Strings

TEST(StringUtilTest, SplitTrimJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Join({"x", "y"}, "::"), "x::y");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foo", "foobar"));
  EXPECT_EQ(ToLower("AbC_1"), "abc_1");
}

TEST(BdlTimeTest, ParsesDateOnly) {
  auto t = ParseBdlTime("04/26/2019");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(FormatBdlTime(*t), "04/26/2019:00:00:00");
}

TEST(BdlTimeTest, ParsesDateTime) {
  auto t = ParseBdlTime("04/26/2019:16:31:16");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(FormatBdlTime(*t), "04/26/2019:16:31:16");
}

TEST(BdlTimeTest, OrderedAcrossDays) {
  auto a = ParseBdlTime("04/02/2019");
  auto b = ParseBdlTime("05/01/2019");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(*a, *b);
  EXPECT_EQ(*b - *a, 29 * kMicrosPerDay);
}

TEST(BdlTimeTest, LeapYearHandled) {
  auto feb29 = ParseBdlTime("02/29/2020");
  ASSERT_TRUE(feb29.ok());
  EXPECT_EQ(FormatBdlTime(*feb29), "02/29/2020:00:00:00");
  EXPECT_FALSE(ParseBdlTime("02/29/2019").ok());
}

TEST(BdlTimeTest, RejectsGarbage) {
  EXPECT_FALSE(ParseBdlTime("not a time").ok());
  EXPECT_FALSE(ParseBdlTime("13/01/2019").ok());
  EXPECT_FALSE(ParseBdlTime("04/31/2019").ok());
  EXPECT_FALSE(ParseBdlTime("04/26/2019:25:00:00").ok());
  EXPECT_FALSE(ParseBdlTime("04/26/2019:10:00").ok());
}

struct DurationCase {
  const char* text;
  DurationMicros expected;
};

class BdlDurationTest : public testing::TestWithParam<DurationCase> {};

TEST_P(BdlDurationTest, Parses) {
  auto d = ParseBdlDuration(GetParam().text);
  ASSERT_TRUE(d.ok()) << GetParam().text;
  EXPECT_EQ(*d, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllUnits, BdlDurationTest,
    testing::Values(DurationCase{"10mins", 10 * kMicrosPerMinute},
                    DurationCase{"1min", kMicrosPerMinute},
                    DurationCase{"30s", 30 * kMicrosPerSecond},
                    DurationCase{"2h", 2 * kMicrosPerHour},
                    DurationCase{"500ms", 500 * kMicrosPerMilli},
                    DurationCase{"3days", 3 * kMicrosPerDay},
                    DurationCase{"0s", 0}));

TEST(BdlDurationTest, RejectsGarbage) {
  EXPECT_FALSE(ParseBdlDuration("mins").ok());
  EXPECT_FALSE(ParseBdlDuration("10").ok());
  EXPECT_FALSE(ParseBdlDuration("10lightyears").ok());
}

TEST(FormatDurationTest, HumanReadable) {
  EXPECT_EQ(FormatDuration(500 * kMicrosPerMilli), "500ms");
  EXPECT_EQ(FormatDuration(90 * kMicrosPerSecond), "1m30s");
  EXPECT_EQ(FormatDuration(2 * kMicrosPerHour + 5 * kMicrosPerMinute),
            "2h5m");
  EXPECT_EQ(FormatDuration(0), "0ms");
}

// ---------------------------------------------------------------- Wildcard

struct WildcardCase {
  const char* pattern;
  const char* text;
  bool match;
};

class WildcardTest : public testing::TestWithParam<WildcardCase> {};

TEST_P(WildcardTest, Matches) {
  const auto& p = GetParam();
  EXPECT_EQ(WildcardMatch(p.pattern, p.text), p.match)
      << p.pattern << " vs " << p.text;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, WildcardTest,
    testing::Values(
        WildcardCase{"*.dll", "C://Windows/System32/kernel32.dll", true},
        WildcardCase{"*.dll", "C://Windows/kernel32.dll.bak", false},
        WildcardCase{"*.DLL", "c://windows/user32.dll", true},  // case-insens
        WildcardCase{"explorer", "explorer", true},
        WildcardCase{"explorer", "Explorer", true},
        WildcardCase{"explorer", "explorer.exe", false},
        WildcardCase{"explorer*", "explorer.exe", true},
        WildcardCase{"10.*", "10.3.4.5", true},
        WildcardCase{"10.*", "110.3.4.5", false},
        WildcardCase{"/var/www/*", "/var/www/html/index.html", true},
        WildcardCase{"/var/www/*", "/var/log/httpd.log", false},
        WildcardCase{"a?c", "abc", true},
        WildcardCase{"a?c", "ac", false},
        WildcardCase{"C://Sensitive/important.doc",
                     "C://Sensitive/important.doc", true},
        WildcardCase{"", "", true},
        WildcardCase{"*", "", true},
        WildcardCase{"*", "anything at all", true}));

TEST(WildcardTest, RegexMetacharactersAreLiteral) {
  EXPECT_TRUE(WildcardMatch("file(1).txt", "file(1).txt"));
  EXPECT_FALSE(WildcardMatch("file(1).txt", "file1.txt"));
  EXPECT_TRUE(WildcardMatch("a+b", "a+b"));
  EXPECT_FALSE(WildcardMatch("a+b", "aab"));
}

TEST(WildcardMatcherTest, LiteralFastPath) {
  WildcardMatcher m("Notepad.exe");
  EXPECT_TRUE(m.is_literal());
  EXPECT_TRUE(m.Matches("notepad.exe"));
  EXPECT_FALSE(m.Matches("notepad.exe2"));
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndNumbers) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel(" Error "), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("4"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("5"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
}

TEST(ClockTest, MicrosToSeconds) {
  EXPECT_DOUBLE_EQ(MicrosToSeconds(kMicrosPerSecond), 1.0);
  EXPECT_DOUBLE_EQ(MicrosToSeconds(500000), 0.5);
  EXPECT_DOUBLE_EQ(MicrosToSeconds(0), 0.0);
}

TEST(ClockTest, MonotonicNowMicrosAdvances) {
  const TimeMicros a = MonotonicNowMicros();
  const TimeMicros b = MonotonicNowMicros();
  EXPECT_GE(b, a);
}

TEST(EnvTest, GetEnvDistinguishesUnsetFromEmpty) {
  unsetenv("APTRACE_TEST_UNSET");
  EXPECT_EQ(GetEnv("APTRACE_TEST_UNSET"), std::nullopt);
  setenv("APTRACE_TEST_EMPTY", "", 1);
  EXPECT_EQ(GetEnv("APTRACE_TEST_EMPTY"), std::string());
  unsetenv("APTRACE_TEST_EMPTY");
}

TEST(EnvTest, GetValidatedEnvWarnsOncePerVariable) {
  ResetEnvWarningsForTest();
  const auto nonempty = [](const std::string& v) { return !v.empty(); };

  unsetenv("APTRACE_TEST_KNOB");
  EXPECT_EQ(GetValidatedEnv("APTRACE_TEST_KNOB", nonempty, "non-empty"),
            std::nullopt);
  EXPECT_EQ(EnvWarningCountForTest(), 0u);  // unset: silent

  setenv("APTRACE_TEST_KNOB", "", 1);
  EXPECT_EQ(GetValidatedEnv("APTRACE_TEST_KNOB", nonempty, "non-empty"),
            std::nullopt);
  EXPECT_EQ(EnvWarningCountForTest(), 1u);
  // Second read of the same bad variable: no second warning.
  EXPECT_EQ(GetValidatedEnv("APTRACE_TEST_KNOB", nonempty, "non-empty"),
            std::nullopt);
  EXPECT_EQ(EnvWarningCountForTest(), 1u);

  // A different misconfigured variable gets its own (single) warning.
  setenv("APTRACE_TEST_KNOB2", "", 1);
  EXPECT_EQ(GetValidatedEnv("APTRACE_TEST_KNOB2", nonempty, "non-empty"),
            std::nullopt);
  EXPECT_EQ(EnvWarningCountForTest(), 2u);

  // A valid value passes through and never warns.
  setenv("APTRACE_TEST_KNOB3", "ok", 1);
  EXPECT_EQ(GetValidatedEnv("APTRACE_TEST_KNOB3", nonempty, "non-empty"),
            std::string("ok"));
  EXPECT_EQ(EnvWarningCountForTest(), 2u);

  unsetenv("APTRACE_TEST_KNOB");
  unsetenv("APTRACE_TEST_KNOB2");
  unsetenv("APTRACE_TEST_KNOB3");
  ResetEnvWarningsForTest();
}

TEST(EnvTest, GetValidatedEnvCountAcceptsOnlyUnsignedIntegers) {
  // The process-wide warning counter accumulates across tests, so every
  // expectation below is a delta from a captured baseline.
  ResetEnvWarningsForTest();
  const uint64_t base = EnvWarningCountForTest();
  unsetenv("APTRACE_TEST_COUNT");
  EXPECT_EQ(GetValidatedEnvCount("APTRACE_TEST_COUNT"), std::nullopt);
  EXPECT_EQ(EnvWarningCountForTest(), base);  // unset: silent

  setenv("APTRACE_TEST_COUNT", "16384", 1);
  EXPECT_EQ(GetValidatedEnvCount("APTRACE_TEST_COUNT"), 16384u);
  setenv("APTRACE_TEST_COUNT", "0", 1);
  EXPECT_EQ(GetValidatedEnvCount("APTRACE_TEST_COUNT"), 0u);
  EXPECT_EQ(EnvWarningCountForTest(), base);

  // Invalid shapes warn once per variable and read as unset: a negative
  // number, trailing junk, an empty string, and a value too long to be
  // parsed exactly.
  for (const char* bad : {"-5", "12x", "", "1e4",
                          "99999999999999999999999999"}) {
    ResetEnvWarningsForTest();  // clears the warned set; count accumulates
    const uint64_t before = EnvWarningCountForTest();
    setenv("APTRACE_TEST_COUNT", bad, 1);
    EXPECT_EQ(GetValidatedEnvCount("APTRACE_TEST_COUNT"), std::nullopt)
        << "value '" << bad << "'";
    EXPECT_EQ(EnvWarningCountForTest(), before + 1) << "value '" << bad
                                                    << "'";
    // Re-reading the same misconfigured variable stays quiet.
    EXPECT_EQ(GetValidatedEnvCount("APTRACE_TEST_COUNT"), std::nullopt);
    EXPECT_EQ(EnvWarningCountForTest(), before + 1) << "value '" << bad
                                                    << "'";
  }

  unsetenv("APTRACE_TEST_COUNT");
  ResetEnvWarningsForTest();
}

TEST(EnvTest, KnobNamesAreStable) {
  // The names are part of the documented interface (README, --help).
  EXPECT_STREQ(kEnvBackend, "APTRACE_BACKEND");
  EXPECT_STREQ(kEnvShards, "APTRACE_SHARDS");
  EXPECT_STREQ(kEnvShardEndpoints, "APTRACE_SHARD_ENDPOINTS");
  EXPECT_STREQ(kEnvDistDeadlineMicros, "APTRACE_DIST_DEADLINE_MICROS");
  EXPECT_STREQ(kEnvLogLevel, "APTRACE_LOG_LEVEL");
  EXPECT_STREQ(kEnvServerSocket, "APTRACE_SERVER_SOCKET");
  EXPECT_STREQ(kEnvSlowQueryMicros, "APTRACE_SLOW_QUERY_MICROS");
  EXPECT_STREQ(kEnvFlightBuffer, "APTRACE_FLIGHT_BUFFER");
}

TEST(EnvTest, DistributionKnobsReadThroughValidatedEnv) {
  // The distribution knobs go through the warn-once validated readers:
  // a bad value warns exactly once and reads as unset, a good value
  // passes through (docs/distribution.md).
  ResetEnvWarningsForTest();
  const uint64_t base = EnvWarningCountForTest();
  const auto nonempty = [](const std::string& v) { return !v.empty(); };

  setenv(kEnvShardEndpoints, "", 1);
  EXPECT_EQ(GetValidatedEnv(kEnvShardEndpoints, nonempty,
                            "a comma-separated shard endpoint list"),
            std::nullopt);
  EXPECT_EQ(EnvWarningCountForTest(), base + 1);
  setenv(kEnvShardEndpoints, "127.0.0.1:7701,unix:/tmp/s1.sock", 1);
  EXPECT_EQ(GetValidatedEnv(kEnvShardEndpoints, nonempty,
                            "a comma-separated shard endpoint list"),
            std::string("127.0.0.1:7701,unix:/tmp/s1.sock"));
  EXPECT_EQ(EnvWarningCountForTest(), base + 1);

  setenv(kEnvDistDeadlineMicros, "soon", 1);
  EXPECT_EQ(GetValidatedEnvCount(kEnvDistDeadlineMicros), std::nullopt);
  EXPECT_EQ(EnvWarningCountForTest(), base + 2);
  setenv(kEnvDistDeadlineMicros, "2500000", 1);
  EXPECT_EQ(GetValidatedEnvCount(kEnvDistDeadlineMicros), 2500000u);
  EXPECT_EQ(EnvWarningCountForTest(), base + 2);

  unsetenv(kEnvShardEndpoints);
  unsetenv(kEnvDistDeadlineMicros);
  ResetEnvWarningsForTest();
}

TEST(StringUtilTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("x\n\t\r"), "x\\n\\t\\r");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace aptrace
