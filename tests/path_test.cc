#include <gtest/gtest.h>

#include "core/engine.h"
#include "graph/path.h"
#include "tests/test_trace.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

class CausalPathTest : public testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>(trace_.store.get(), &clock_);
    ASSERT_TRUE(session_
                    ->Start("backward ip x[] -> *",
                            trace_.store->Get(trace_.alert_event))
                    .ok());
    ASSERT_TRUE(session_->Step({}).ok());
  }

  MiniTrace trace_ = MakeMiniTrace();
  SimClock clock_;
  std::unique_ptr<Session> session_;
};

TEST_F(CausalPathTest, FindsShortestBackwardChain) {
  // ext_sock <- java <- excel <- outlook <- mail_sock: 4 hops.
  const CausalPath path =
      FindCausalPath(session_->graph(), trace_.mail_sock);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.origin, trace_.ext_sock);
  ASSERT_EQ(path.Hops(), 4u);
  EXPECT_EQ(path.steps[0].node, trace_.java);
  EXPECT_EQ(path.steps[1].node, trace_.excel);
  EXPECT_EQ(path.steps[2].node, trace_.outlook);
  EXPECT_EQ(path.steps[3].node, trace_.mail_sock);
  // Each step's edge really connects the chain in the graph.
  ObjectId prev = path.origin;
  for (const PathStep& step : path.steps) {
    const DepGraph::Edge& e = session_->graph().GetEdge(step.event);
    EXPECT_EQ(e.dst, prev);        // backward step: node -> its source
    EXPECT_EQ(e.src, step.node);
    prev = step.node;
  }
}

TEST_F(CausalPathTest, TrivialPathToStart) {
  const CausalPath path =
      FindCausalPath(session_->graph(), trace_.ext_sock);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.Hops(), 0u);
}

TEST_F(CausalPathTest, UnreachableTargetEmpty) {
  // benign never enters the graph.
  const CausalPath path = FindCausalPath(session_->graph(), trace_.benign);
  EXPECT_TRUE(path.empty());
}

TEST_F(CausalPathTest, ShortestNotJustAnyPath) {
  // attach is reachable at hop 3 (via java<-excel<-attach); the path finder
  // must not detour through java_file (also hop 3 but longer to attach).
  const CausalPath path = FindCausalPath(session_->graph(), trace_.attach);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.Hops(), 3u);
}

TEST(CausalPathForwardTest, FollowsTaint) {
  MiniTrace trace = MakeMiniTrace();
  SimClock clock;
  Session session(trace.store.get(), &clock);
  ASSERT_TRUE(
      session.Start("forward file f[] -> *", trace.store->Get(2)).ok());
  ASSERT_TRUE(session.Step({}).ok());

  const CausalPath path =
      FindCausalPath(session.graph(), trace.ext_sock, /*forward=*/true);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.origin, trace.attach);
  // attach -> excel -> java -> ext_sock.
  ASSERT_EQ(path.Hops(), 3u);
  EXPECT_EQ(path.steps[0].node, trace.excel);
  EXPECT_EQ(path.steps[1].node, trace.java);
  EXPECT_EQ(path.steps[2].node, trace.ext_sock);
}

}  // namespace
}  // namespace aptrace
