#include <gtest/gtest.h>

#include "bdl/analyzer.h"
#include "core/executor.h"
#include "core/maintainer.h"
#include "tests/test_trace.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

bdl::TrackingSpec Spec(const std::string& text) {
  auto spec = bdl::CompileBdl(text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return spec.ok() ? std::move(spec.value()) : bdl::TrackingSpec{};
}

class MaintainerTest : public testing::Test {
 protected:
  TrackingContext Ctx(const std::string& script) {
    auto ctx = ResolveContext(*trace_.store, Spec(script), &clock_,
                              trace_.store->Get(trace_.alert_event));
    EXPECT_TRUE(ctx.ok()) << ctx.status();
    return std::move(ctx.value());
  }

  MiniTrace trace_ = MakeMiniTrace();
  SimClock clock_;
};

// Chain: alert socket -> excel (intermediate) -> mail socket (end).
constexpr char kChained[] =
    "backward ip x[dst_ip = \"185.220.101.45\"] -> proc p[exename = "
    "\"excel.exe\"] -> ip m[dst_ip = \"198.51.100.9\"]";

TEST_F(MaintainerTest, StatePropagationAlongChain) {
  Executor exec(Ctx(kChained), &clock_, 8);
  EXPECT_EQ(exec.Run({}), StopReason::kCompleted);
  const DepGraph& g = exec.graph();

  EXPECT_EQ(g.StateOf(trace_.ext_sock), 1);   // n1 (start)
  EXPECT_EQ(g.StateOf(trace_.java), 1);       // carries the prefix
  EXPECT_EQ(g.StateOf(trace_.excel), 2);      // matches n2
  EXPECT_EQ(g.StateOf(trace_.outlook), 2);    // carries
  EXPECT_EQ(g.StateOf(trace_.mail_sock), 3);  // matches n3: full chain
  EXPECT_TRUE(exec.maintainer().end_point_reached());
}

TEST_F(MaintainerTest, WildcardEndReachesFullState) {
  Executor exec(Ctx("backward ip x[] -> *"), &clock_, 8);
  exec.Run({});
  // chain = [ip, *]: any discovered node carries state 2.
  EXPECT_EQ(exec.graph().StateOf(trace_.java), 2);
  EXPECT_TRUE(exec.maintainer().end_point_reached());
}

TEST_F(MaintainerTest, NoEndPointWithoutMatch) {
  Executor exec(
      Ctx("backward ip x[] -> proc p[exename = \"no_such.exe\"] -> ip "
          "m[dst_ip = \"9.9.9.9\"]"),
      &clock_, 8);
  exec.Run({});
  EXPECT_FALSE(exec.maintainer().end_point_reached());
  EXPECT_EQ(exec.maintainer().PruneToMatchedPaths(), 0u);
}

TEST_F(MaintainerTest, PruneToMatchedPathsDropsSideBranches) {
  Executor exec(Ctx(kChained), &clock_, 8);
  exec.Run({});
  const size_t removed = exec.maintainer().PruneToMatchedPaths();
  EXPECT_GT(removed, 0u);
  const DepGraph& g = exec.graph();
  // The matched path start -> java -> excel -> outlook -> mail survives.
  for (ObjectId id : {trace_.ext_sock, trace_.java, trace_.excel,
                      trace_.outlook, trace_.mail_sock}) {
    EXPECT_TRUE(g.HasNode(id)) << id;
  }
  // Dll side branches do not reach the end point: dropped.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(g.HasNode(trace_.dll[i]));
}

TEST_F(MaintainerTest, RepropagateStatesAfterChainChange) {
  Executor exec(Ctx("backward ip x[] -> *"), &clock_, 8);
  exec.Run({});
  // Switch to the constrained chain and recompute over the cached graph.
  auto new_ctx = ResolveContext(*trace_.store, Spec(kChained), &clock_,
                                trace_.store->Get(trace_.alert_event));
  ASSERT_TRUE(new_ctx.ok());
  RefineDelta delta;
  delta.chain_changed = true;
  exec.ApplyRefinedContext(std::move(new_ctx.value()), delta);
  const DepGraph& g = exec.graph();
  EXPECT_EQ(g.StateOf(trace_.excel), 2);
  EXPECT_EQ(g.StateOf(trace_.mail_sock), 3);
  EXPECT_TRUE(exec.maintainer().end_point_reached());
}

TEST_F(MaintainerTest, PruneUnreachableRemovesOrphans) {
  Executor exec(Ctx("backward ip x[] -> *"), &clock_, 8);
  exec.Run({});
  DepGraph* g = exec.mutable_graph();
  // Manually orphan the outlook branch by deleting excel.
  g->RemoveNodesIf([&](ObjectId id) { return id == trace_.excel; });
  GraphMaintainer& m = exec.maintainer();
  const size_t removed = m.PruneUnreachable();
  EXPECT_GT(removed, 0u);
  EXPECT_FALSE(g->HasNode(trace_.outlook));
  EXPECT_FALSE(g->HasNode(trace_.mail_sock));
  EXPECT_TRUE(g->HasNode(trace_.java));
}

TEST_F(MaintainerTest, QuantityRuleBoostsExfilProcess) {
  // Prioritize processes that read the attachment and then push at least
  // as many bytes to an external address (paper Program 2 shape).
  Executor exec(
      Ctx("backward ip x[] -> * "
          "prioritize [type = file and src.path = \"*attach*\"] <- [type = "
          "network and dst.ip = \"185.*\" and amount >= size]"),
      &clock_, 8);
  exec.Run({});
  // excel read attach (1800 bytes) but wrote nothing external: not
  // boosted. java pushed 5000 bytes to 185.* but read no attach: not
  // boosted either.
  EXPECT_FALSE(exec.maintainer().IsBoosted(trace_.excel));
  EXPECT_FALSE(exec.maintainer().IsBoosted(trace_.java));
}

TEST_F(MaintainerTest, QuantityRuleMatchesWhenBothSidesSeen) {
  // java reads java_file (300 bytes) and connects to 185.* with 5000
  // bytes >= 300: boosted.
  Executor exec(
      Ctx("backward ip x[] -> * "
          "prioritize [type = file and src.path = \"*java.exe*\"] <- [type "
          "= network and dst.ip = \"185.*\" and amount >= size]"),
      &clock_, 8);
  exec.Run({});
  EXPECT_TRUE(exec.maintainer().IsBoosted(trace_.java));
  EXPECT_FALSE(exec.maintainer().IsBoosted(trace_.excel));
}

TEST_F(MaintainerTest, QuantityRuleAmountGateBlocks) {
  // Demand the exfil carry at least as many bytes as a 1800-byte read;
  // java's 5000-byte connect qualifies against attach only if java read
  // attach — it did not, so nothing is boosted. But excel's read of
  // attach (1800) with no network write also stays unboosted.
  Executor exec(
      Ctx("backward ip x[] -> * "
          "prioritize [type = file and src.path = \"*attach*\"] <- [type = "
          "network and dst.ip = \"*\" and amount >= size]"),
      &clock_, 8);
  exec.Run({});
  EXPECT_FALSE(exec.maintainer().IsBoosted(trace_.excel));
}

TEST_F(MaintainerTest, RecomputeBoostsFromCachedGraph) {
  Executor exec(Ctx("backward ip x[] -> *"), &clock_, 8);
  exec.Run({});
  // Apply a prioritize rule after the fact through the Refiner path.
  auto new_ctx = ResolveContext(
      *trace_.store,
      Spec("backward ip x[] -> * "
           "prioritize [type = file and src.path = \"*java.exe*\"] <- [type "
           "= network and dst.ip = \"185.*\" and amount >= size]"),
      &clock_, trace_.store->Get(trace_.alert_event));
  ASSERT_TRUE(new_ctx.ok());
  RefineDelta delta;
  delta.prioritize_changed = true;
  exec.ApplyRefinedContext(std::move(new_ctx.value()), delta);
  EXPECT_TRUE(exec.maintainer().IsBoosted(trace_.java));
}

}  // namespace
}  // namespace aptrace
