// End-to-end coverage of BDL's *general constraints* (paper Section
// III-A): the `from .. to ..` time range and the `in "host", ...` host
// range, exercised against a real-dated trace through the full engine.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "util/string_util.h"
#include "workload/trace_builder.h"

namespace aptrace {
namespace {

/// A two-host trace spanning April 2019:
///   04/05  old_proc writes shared_doc           (desktop1)
///   04/15  mid_proc writes shared_doc           (desktop1)
///   04/18  remote_proc -> sock -> victim        (desktop2 -> desktop1)
///   04/20  victim reads shared_doc              (desktop1)
///   04/22  victim -> exfil socket [ALERT]       (desktop1)
struct DatedTrace {
  std::unique_ptr<EventStore> store;
  ObjectId old_proc, mid_proc, victim, remote_proc;
  ObjectId shared_doc, sock, exfil;
  EventId alert;
};

DatedTrace MakeDatedTrace() {
  DatedTrace t;
  EventStoreOptions options;
  options.cost_model = CostModel::Free();
  t.store = std::make_unique<EventStore>(options);
  workload::TraceBuilder b(t.store.get());
  const HostId d1 = b.Host("desktop1");
  const HostId d2 = b.Host("desktop2");
  const auto at = [](const char* s) { return ParseBdlTime(s).value(); };

  t.old_proc = b.Proc(d1, "old.exe", at("04/05/2019"));
  t.mid_proc = b.Proc(d1, "mid.exe", at("04/15/2019"));
  t.victim = b.Proc(d1, "victim.exe", at("04/18/2019"));
  t.remote_proc = b.Proc(d2, "remote.exe", at("04/18/2019"));
  t.shared_doc = b.File(d1, "C://docs/shared.doc", at("04/01/2019"));

  b.Write(t.old_proc, t.shared_doc, at("04/05/2019:10:00:00"));
  b.Write(t.mid_proc, t.shared_doc, at("04/15/2019:10:00:00"));
  t.sock = b.Socket(d2, "10.0.0.2", "10.0.0.1", 445,
                    at("04/18/2019:09:00:00"));
  b.Connect(t.remote_proc, t.sock, at("04/18/2019:09:00:00"));
  b.Accept(t.victim, t.sock, at("04/18/2019:09:00:05"));
  b.Read(t.victim, t.shared_doc, at("04/20/2019:11:00:00"));
  t.exfil = b.Socket(d1, "10.0.0.1", "203.0.113.7", 443,
                     at("04/22/2019:12:00:00"));
  t.alert = b.Connect(t.victim, t.exfil, at("04/22/2019:12:00:00"));
  t.store->Seal();
  return t;
}

size_t RunAndCount(const DatedTrace& t, const std::string& script,
                   std::vector<ObjectId> expect_present,
                   std::vector<ObjectId> expect_absent) {
  SimClock clock;
  Session session(t.store.get(), &clock);
  EXPECT_TRUE(session.Start(script).ok());
  EXPECT_TRUE(session.Step({}).ok());
  for (ObjectId id : expect_present) {
    EXPECT_TRUE(session.graph().HasNode(id))
        << "missing " << t.store->catalog().Get(id).Label();
  }
  for (ObjectId id : expect_absent) {
    EXPECT_FALSE(session.graph().HasNode(id))
        << "unexpected " << t.store->catalog().Get(id).Label();
  }
  return session.graph().NumEdges();
}

constexpr char kStart[] =
    "backward ip a[dst_ip = \"203.0.113.7\"] -> *";

TEST(GeneralConstraintsTest, FullRangeFindsEverything) {
  const DatedTrace t = MakeDatedTrace();
  RunAndCount(t, kStart,
              {t.victim, t.shared_doc, t.old_proc, t.mid_proc, t.sock,
               t.remote_proc},
              {});
}

TEST(GeneralConstraintsTest, FromBoundsTheHistory) {
  const DatedTrace t = MakeDatedTrace();
  // Only events from 04/10 on: the 04/05 write by old.exe is invisible.
  RunAndCount(t,
              std::string("from \"04/10/2019\" to \"04/23/2019\" ") + kStart,
              {t.victim, t.shared_doc, t.mid_proc, t.sock, t.remote_proc},
              {t.old_proc});
}

TEST(GeneralConstraintsTest, TighterFromCutsDeeper) {
  const DatedTrace t = MakeDatedTrace();
  // From 04/19: both writers and the inbound socket fall away.
  RunAndCount(t,
              std::string("from \"04/19/2019\" to \"04/23/2019\" ") + kStart,
              {t.victim, t.shared_doc},
              {t.old_proc, t.mid_proc, t.sock, t.remote_proc});
}

TEST(GeneralConstraintsTest, RangeExcludingAlertFailsResolution) {
  const DatedTrace t = MakeDatedTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  // The alert (04/22) is outside [04/01, 04/10): no starting point.
  const Status s = session.Start(
      std::string("from \"04/01/2019\" to \"04/10/2019\" ") + kStart);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(GeneralConstraintsTest, InjectedStartOutsideRangeRejected) {
  const DatedTrace t = MakeDatedTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  // The alert (04/22) is injected but the range ends 04/10: refused, so
  // the engine can never scan beyond the declared range.
  const Status s = session.Start(
      std::string("from \"04/01/2019\" to \"04/10/2019\" ") + kStart,
      t.store->Get(t.alert));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(GeneralConstraintsTest, HostRangeFiltersForeignEvents) {
  const DatedTrace t = MakeDatedTrace();
  // Restricting to desktop1 drops the remote host's connect event (the
  // socket itself is discovered through the local accept, but its remote
  // writer is not).
  RunAndCount(t, std::string("in \"desktop1\" ") + kStart,
              {t.victim, t.shared_doc, t.sock},
              {t.remote_proc});
}

TEST(GeneralConstraintsTest, HostPatternsMatchWildcards) {
  const DatedTrace t = MakeDatedTrace();
  // "desktop*" covers both hosts: everything back.
  RunAndCount(t, std::string("in \"desktop*\" ") + kStart,
              {t.victim, t.remote_proc}, {});
}

TEST(GeneralConstraintsTest, UnknownHostFindsNothing) {
  const DatedTrace t = MakeDatedTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  const Status s =
      session.Start(std::string("in \"no-such-host\" ") + kStart);
  // The alert itself is on desktop1, so the starting point is not found.
  EXPECT_FALSE(s.ok());
}

TEST(GeneralConstraintsTest, RefinerNarrowingReusesCache) {
  const DatedTrace t = MakeDatedTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  ASSERT_TRUE(session.Start(kStart).ok());
  ASSERT_TRUE(session.Step({}).ok());
  EXPECT_TRUE(session.graph().HasNode(t.old_proc));
  // Narrowing the range is compatible: the Refiner prunes the cached
  // graph instead of restarting.
  ASSERT_TRUE(session
                  .UpdateScript(std::string(
                                    "from \"04/10/2019\" to \"04/23/2019\" ") +
                                kStart)
                  .ok());
  EXPECT_EQ(session.last_refine_action(), RefineAction::kReuse);
  ASSERT_TRUE(session.Step({}).ok());
  EXPECT_FALSE(session.graph().HasNode(t.old_proc));
  EXPECT_TRUE(session.graph().HasNode(t.mid_proc));
}

TEST(GeneralConstraintsTest, RefinerWideningRestarts) {
  const DatedTrace t = MakeDatedTrace();
  SimClock clock;
  Session session(t.store.get(), &clock);
  ASSERT_TRUE(session
                  .Start(std::string(
                             "from \"04/10/2019\" to \"04/23/2019\" ") +
                         kStart)
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());
  EXPECT_FALSE(session.graph().HasNode(t.old_proc));
  // Widening needs history that was never scheduled: restart, and the
  // fresh run finds the early writer.
  ASSERT_TRUE(session.UpdateScript(kStart).ok());
  EXPECT_EQ(session.last_refine_action(), RefineAction::kRestart);
  ASSERT_TRUE(session.Step({}).ok());
  EXPECT_TRUE(session.graph().HasNode(t.old_proc));
}

}  // namespace
}  // namespace aptrace
