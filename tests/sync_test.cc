// Tests for util/sync.h: the Mutex/MutexLock/CondVar wrappers and the
// Debug-build lock-order checker (acquisition graph, inversion reports,
// recursive-acquisition detection). The checker is compiled out in
// Release builds (NDEBUG); every checker assertion is gated on
// LockOrderCheckingEnabled() so the suite passes in both configurations.

#include "util/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace aptrace {
namespace {

// The violation handler is a plain function pointer (it must be callable
// from any thread without context), so captures go through globals.
std::string* g_last_report = nullptr;
std::atomic<int> g_report_count{0};

void CapturingHandler(const char* report) {
  if (g_last_report != nullptr) *g_last_report = report;
  g_report_count.fetch_add(1);
}

/// Installs the capturing handler for one test and restores the previous
/// (aborting) handler on the way out.
class HandlerScope {
 public:
  explicit HandlerScope(std::string* sink) {
    g_last_report = sink;
    g_report_count.store(0);
    previous_ = SetLockOrderViolationHandlerForTest(CapturingHandler);
  }
  ~HandlerScope() {
    SetLockOrderViolationHandlerForTest(previous_);
    g_last_report = nullptr;
  }

 private:
  LockOrderViolationHandler previous_;
};

TEST(SyncTest, MutexBasicLockUnlock) {
  Mutex mu("test::basic");
  mu.Lock();
  mu.Unlock();
  {
    MutexLock lock(&mu);
  }
  EXPECT_STREQ(mu.name(), "test::basic");
}

TEST(SyncTest, TryLockReportsContention) {
  Mutex mu("test::trylock");
  ASSERT_TRUE(mu.TryLock());
  std::thread other([&mu] { EXPECT_FALSE(mu.TryLock()); });
  other.join();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, MutexProvidesExclusion) {
  Mutex mu("test::exclusion");
  int counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        counter++;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SyncTest, CondVarSignalsGuardedState) {
  Mutex mu("test::cv");
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(lock);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(SyncTest, CondVarWaitUntilTimesOut) {
  Mutex mu("test::cv_deadline");
  CondVar cv;
  MutexLock lock(&mu);
  // A deadline already in the past: returns false without blocking.
  EXPECT_FALSE(cv.WaitUntil(lock, std::chrono::steady_clock::now()));
  EXPECT_FALSE(cv.WaitFor(lock, std::chrono::microseconds(1)));
}

TEST(SyncTest, StatsTrackMutexLifetime) {
  if (!LockOrderCheckingEnabled()) GTEST_SKIP() << "checker compiled out";
  const LockOrderStats before = GetLockOrderStats();
  {
    Mutex mu("test::lifetime");
    EXPECT_EQ(GetLockOrderStats().mutexes_live, before.mutexes_live + 1);
    MutexLock lock(&mu);
  }
  const LockOrderStats after = GetLockOrderStats();
  EXPECT_EQ(after.mutexes_live, before.mutexes_live);
  EXPECT_GT(after.acquisitions, before.acquisitions);
}

TEST(SyncTest, CleanHierarchyStaysSilent) {
  if (!LockOrderCheckingEnabled()) GTEST_SKIP() << "checker compiled out";
  const uint64_t violations_before = GetLockOrderStats().violations;
  Mutex a("test::clean_a");
  Mutex b("test::clean_b");
  Mutex c("test::clean_c");
  // A consistent a -> b -> c order, exercised repeatedly and from
  // several threads, must never trip the checker — including the
  // partial chains (a->c, b alone) a real hierarchy produces.
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        {
          MutexLock la(&a);
          MutexLock lb(&b);
          MutexLock lc(&c);
        }
        {
          MutexLock la(&a);
          MutexLock lc(&c);
        }
        {
          MutexLock lb(&b);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(GetLockOrderStats().violations, violations_before);
}

TEST(SyncTest, SeededInversionIsReported) {
  if (!LockOrderCheckingEnabled()) GTEST_SKIP() << "checker compiled out";
  std::string report;
  HandlerScope scope(&report);
  Mutex a("test::inv_a");
  Mutex b("test::inv_b");
  {
    MutexLock la(&a);
    MutexLock lb(&b);  // establishes a held-before b
  }
  EXPECT_EQ(g_report_count.load(), 0);
  {
    MutexLock lb(&b);
    MutexLock la(&a);  // closes the cycle: reported before blocking
  }
  EXPECT_EQ(g_report_count.load(), 1);
  EXPECT_NE(report.find("lock-order inversion"), std::string::npos) << report;
  EXPECT_NE(report.find("test::inv_a"), std::string::npos) << report;
  EXPECT_NE(report.find("test::inv_b"), std::string::npos) << report;
  // Acquisition sites: the report names this file for both sides.
  EXPECT_NE(report.find("sync_test.cc"), std::string::npos) << report;
}

TEST(SyncTest, TransitiveInversionIsReported) {
  if (!LockOrderCheckingEnabled()) GTEST_SKIP() << "checker compiled out";
  std::string report;
  HandlerScope scope(&report);
  Mutex a("test::chain_a");
  Mutex b("test::chain_b");
  Mutex c("test::chain_c");
  {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  {
    MutexLock lb(&b);
    MutexLock lc(&c);
  }
  EXPECT_EQ(g_report_count.load(), 0);
  {
    MutexLock lc(&c);
    MutexLock la(&a);  // a -> b -> c -> a, through the recorded chain
  }
  EXPECT_EQ(g_report_count.load(), 1);
  EXPECT_NE(report.find("test::chain_a"), std::string::npos) << report;
  EXPECT_NE(report.find("held before"), std::string::npos) << report;
}

TEST(SyncTest, TryLockDoesNotEstablishOrder) {
  if (!LockOrderCheckingEnabled()) GTEST_SKIP() << "checker compiled out";
  std::string report;
  HandlerScope scope(&report);
  Mutex a("test::try_a");
  Mutex b("test::try_b");
  {
    MutexLock la(&a);
    MutexLock lb(&b);  // a held-before b on record
  }
  {
    MutexLock lb(&b);
    // TryLock cannot block, hence cannot deadlock: acquiring a against
    // the recorded order is fine and records no b -> a edge.
    ASSERT_TRUE(a.TryLock());
    a.Unlock();
  }
  EXPECT_EQ(g_report_count.load(), 0) << report;
  {
    // The recorded order is still intact and still enforced.
    MutexLock lb(&b);
    MutexLock la(&a);
  }
  EXPECT_EQ(g_report_count.load(), 1);
}

TEST(SyncTest, ViolationCounterAdvances) {
  if (!LockOrderCheckingEnabled()) GTEST_SKIP() << "checker compiled out";
  std::string report;
  HandlerScope scope(&report);
  const uint64_t before = GetLockOrderStats().violations;
  Mutex a("test::stat_a");
  Mutex b("test::stat_b");
  {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  {
    MutexLock lb(&b);
    MutexLock la(&a);
  }
  EXPECT_EQ(GetLockOrderStats().violations, before + 1);
}

#if GTEST_HAS_DEATH_TEST
TEST(SyncDeathTest, InversionAbortsWithDefaultHandler) {
  if (!LockOrderCheckingEnabled()) GTEST_SKIP() << "checker compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a("test::death_a");
        Mutex b("test::death_b");
        {
          MutexLock la(&a);
          MutexLock lb(&b);
        }
        MutexLock lb(&b);
        MutexLock la(&a);
      },
      "lock-order inversion");
}

TEST(SyncDeathTest, RecursiveAcquisitionAborts) {
  if (!LockOrderCheckingEnabled()) GTEST_SKIP() << "checker compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex m("test::recursive");
        m.Lock();
        m.Lock();  // self-deadlock: reported and aborted before blocking
      },
      "recursive acquisition");
}
#endif  // GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace aptrace
