#include <gtest/gtest.h>

#include "bdl/parser.h"

namespace aptrace::bdl {
namespace {

AstScript MustParse(std::string_view text) {
  auto script = Parser::Parse(text);
  EXPECT_TRUE(script.ok()) << script.status();
  return script.ok() ? std::move(script.value()) : AstScript{};
}

// Program 1 of the paper (with the node-type fix for v3's `proc`).
constexpr char kProgram1[] = R"(
from "04/02/2019" to "05/01/2019"
in "desktop1", "desktop2"
backward file f[path = "C://Sensitive/important.doc" and event_time = "04/16/2019:06:15:14" and type = "write"]
  -> proc p[exename = "malware1" or exename = "malware2" and event_id = 12] // added in v2
  -> ip i[dstip = "168.120.11.118"]
where time < 10mins and hop < 25
  and proc.exename != "explorer" // added in v3
output = "./result.dot"
)";

TEST(ParserTest, Program1FullStructure) {
  const AstScript s = MustParse(kProgram1);
  ASSERT_TRUE(s.from_time.has_value());
  EXPECT_EQ(*s.from_time, "04/02/2019");
  EXPECT_EQ(*s.to_time, "05/01/2019");
  ASSERT_EQ(s.hosts.size(), 2u);
  EXPECT_EQ(s.hosts[0], "desktop1");

  ASSERT_EQ(s.chain.size(), 3u);
  EXPECT_EQ(s.chain[0].type_name, "file");
  EXPECT_EQ(s.chain[0].var, "f");
  ASSERT_NE(s.chain[0].cond, nullptr);
  EXPECT_EQ(s.chain[1].type_name, "proc");
  EXPECT_EQ(s.chain[2].type_name, "ip");

  ASSERT_NE(s.where, nullptr);
  ASSERT_TRUE(s.output_path.has_value());
  EXPECT_EQ(*s.output_path, "./result.dot");
}

TEST(ParserTest, AndBindsTighterThanOr) {
  // a = "x" or b = "y" and c = 1  parses as  a or (b and c).
  const AstScript s = MustParse(
      "backward proc p[exename = \"x\" or exename = \"y\" and event_id = 1] "
      "-> *");
  const AstExpr* cond = s.chain[0].cond.get();
  ASSERT_NE(cond, nullptr);
  EXPECT_EQ(cond->kind, AstExpr::Kind::kOr);
  EXPECT_EQ(cond->lhs->kind, AstExpr::Kind::kLeaf);
  EXPECT_EQ(cond->rhs->kind, AstExpr::Kind::kAnd);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  const AstScript s = MustParse(
      "backward proc p[(exename = \"x\" or exename = \"y\") and event_id = "
      "1] -> *");
  const AstExpr* cond = s.chain[0].cond.get();
  EXPECT_EQ(cond->kind, AstExpr::Kind::kAnd);
  EXPECT_EQ(cond->lhs->kind, AstExpr::Kind::kOr);
}

TEST(ParserTest, CommaActsAsConjunction) {
  // Paper Program 4 separates the first two conditions with a comma.
  const AstScript s = MustParse(
      "backward ip alert[dst_ip = \"1.2.3.4\", subject_name = \"java.exe\" "
      "and action_type = \"write\"] -> *");
  const AstExpr* cond = s.chain[0].cond.get();
  ASSERT_NE(cond, nullptr);
  EXPECT_EQ(cond->kind, AstExpr::Kind::kAnd);
}

TEST(ParserTest, WildcardEndPoint) {
  const AstScript s = MustParse("backward proc p[pid = 1] -> *");
  ASSERT_EQ(s.chain.size(), 2u);
  EXPECT_FALSE(s.chain[0].wildcard);
  EXPECT_TRUE(s.chain[1].wildcard);
}

TEST(ParserTest, EmptyConditionListAllowed) {
  const AstScript s = MustParse("backward proc p[] -> *");
  EXPECT_EQ(s.chain[0].cond, nullptr);
}

TEST(ParserTest, NodeWithoutVariableName) {
  const AstScript s = MustParse("backward proc[pid = 1] -> *");
  EXPECT_EQ(s.chain[0].var, "");
  EXPECT_EQ(s.chain[0].type_name, "proc");
}

TEST(ParserTest, DottedFieldPaths) {
  const AstScript s = MustParse(
      "backward proc p[] -> * where proc.dst.isReadonly = true");
  const AstExpr* w = s.where.get();
  ASSERT_NE(w, nullptr);
  ASSERT_EQ(w->field_path.size(), 3u);
  EXPECT_EQ(w->field_path[0], "proc");
  EXPECT_EQ(w->field_path[1], "dst");
  EXPECT_EQ(w->field_path[2], "isReadonly");
  EXPECT_EQ(w->value.kind, AstValue::Kind::kIdent);
  EXPECT_EQ(w->value.text, "true");
}

TEST(ParserTest, PrioritizeChain) {
  // Paper Program 2.
  const AstScript s = MustParse(
      "backward proc p[] -> * "
      "prioritize [type = file and src.path = \"sensitivefile\"] <- [type = "
      "network and dst.ip = \"unkownIP\" and amount >= size]");
  ASSERT_EQ(s.prioritize.size(), 1u);
  ASSERT_EQ(s.prioritize[0].patterns.size(), 2u);
}

TEST(ParserTest, MultipleWhereClausesAndCompose) {
  const AstScript s = MustParse(
      "backward proc p[] -> * where hop < 5 where event_id != 3");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->kind, AstExpr::Kind::kAnd);
}

TEST(ParserTest, DurationValue) {
  const AstScript s = MustParse("backward proc p[] -> * where time < 10mins");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->value.kind, AstValue::Kind::kDuration);
  EXPECT_EQ(s.where->value.text, "10mins");
}

// ------------------------------------------------------------- errors

struct BadScript {
  const char* text;
  const char* why;
};

class ParserErrorTest : public testing::TestWithParam<BadScript> {};

TEST_P(ParserErrorTest, Rejected) {
  auto script = Parser::Parse(GetParam().text);
  EXPECT_FALSE(script.ok()) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ParserErrorTest,
    testing::Values(
        BadScript{"", "missing tracking statement"},
        BadScript{"from \"04/02/2019\"", "from without to"},
        BadScript{"backward", "no node after backward"},
        BadScript{"backward * -> proc p[]", "wildcard start"},
        BadScript{"backward proc p[] -> * -> ip i[]", "wildcard mid-chain"},
        BadScript{"backward proc p[exename]", "missing operator"},
        BadScript{"backward proc p[exename =]", "missing value"},
        BadScript{"backward proc p[exename = \"x\"", "unclosed bracket"},
        BadScript{"backward proc p[] -> * output \"x\"",
                  "output missing equals"},
        BadScript{"backward proc p[] -> * where", "empty where"},
        BadScript{"backward proc p[(pid = 1] -> *", "unclosed paren"},
        BadScript{"backward proc p[] -> * trailing junk",
                  "trailing tokens"}));

}  // namespace
}  // namespace aptrace::bdl
