// Concurrent analysis: after Seal(), any number of sessions may run
// against one store from different threads (I/O counters behind one
// stats mutex, otherwise read-only state). Results must match the
// serial runs exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <set>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "service/http.h"
#include "service/session_manager.h"
#include "util/sync.h"
#include "util/worker_pool.h"
#include "workload/enterprise.h"

namespace aptrace {
namespace {

std::set<EventId> EdgeSet(const DepGraph& g) {
  std::set<EventId> out;
  g.ForEachEdge([&](const DepGraph::Edge& e) { out.insert(e.event); });
  return out;
}

TEST(ConcurrencyTest, ParallelSessionsMatchSerial) {
  workload::TraceConfig config = workload::TraceConfig::Small();
  config.num_hosts = 4;
  auto store = workload::BuildEnterpriseTrace(config);
  const auto alerts = workload::SampleAnomalyEvents(*store, 12, 7);

  const auto run_one = [&](const Event& alert) {
    SimClock clock;
    Session session(store.get(), &clock);
    const auto spec = workload::GenericSpecFor(*store, alert);
    EXPECT_TRUE(session.StartWithSpec(spec, alert).ok());
    RunLimits limits;
    limits.sim_time = 10 * kMicrosPerMinute;
    EXPECT_TRUE(session.Step(limits).ok());
    return EdgeSet(session.graph());
  };

  // Serial reference.
  std::vector<std::set<EventId>> serial;
  serial.reserve(alerts.size());
  for (const Event& alert : alerts) serial.push_back(run_one(alert));

  // The same cases across 4 threads, twice to shake out races.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::set<EventId>> parallel(alerts.size());
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
      pool.emplace_back([&, t] {
        for (size_t i = static_cast<size_t>(t); i < alerts.size(); i += 4) {
          parallel[i] = run_one(alerts[i]);
        }
      });
    }
    for (auto& t : pool) t.join();
    for (size_t i = 0; i < alerts.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i]) << "case " << i;
    }
  }
}

// The parallel scan pipeline inside one executor: scan_threads > 1 must
// reproduce the sequential edge set, including when several parallel
// executors run concurrently over the same store (worker pools of
// different sessions share nothing but the sealed store).
TEST(ConcurrencyTest, ParallelExecutorMatchesSequential) {
  workload::TraceConfig config = workload::TraceConfig::Small();
  config.num_hosts = 4;
  auto store = workload::BuildEnterpriseTrace(config);
  const auto alerts = workload::SampleAnomalyEvents(*store, 8, 13);

  const auto run_one = [&](const Event& alert, int scan_threads) {
    SimClock clock;
    SessionOptions options;
    options.scan_threads = scan_threads;
    Session session(store.get(), &clock, options);
    const auto spec = workload::GenericSpecFor(*store, alert);
    EXPECT_TRUE(session.StartWithSpec(spec, alert).ok());
    RunLimits limits;
    limits.sim_time = 10 * kMicrosPerMinute;
    EXPECT_TRUE(session.Step(limits).ok());
    return EdgeSet(session.graph());
  };

  std::vector<std::set<EventId>> serial;
  serial.reserve(alerts.size());
  for (const Event& alert : alerts) serial.push_back(run_one(alert, 1));

  // Sessions whose executors each own a 4-worker pool, themselves spread
  // across 2 outer threads: pool workers from different executors hit the
  // store concurrently.
  std::vector<std::set<EventId>> parallel(alerts.size());
  std::vector<std::thread> outer;
  for (int t = 0; t < 2; ++t) {
    outer.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < alerts.size(); i += 2) {
        parallel[i] = run_one(alerts[i], 4);
      }
    });
  }
  for (auto& t : outer) t.join();
  for (size_t i = 0; i < alerts.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "case " << i;
  }
}

TEST(ConcurrencyTest, StatsAggregateAcrossThreads) {
  workload::TraceConfig config = workload::TraceConfig::Small();
  config.num_hosts = 3;
  auto store = workload::BuildEnterpriseTrace(config);
  store->ResetStats();

  const auto alerts = workload::SampleAnomalyEvents(*store, 8, 11);
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < alerts.size(); i += 4) {
        SimClock clock;
        Session session(store.get(), &clock);
        const auto spec = workload::GenericSpecFor(*store, alerts[i]);
        if (!session.StartWithSpec(spec, alerts[i]).ok()) continue;
        RunLimits limits;
        limits.sim_time = 2 * kMicrosPerMinute;
        (void)session.Step(limits);
      }
    });
  }
  for (auto& t : pool) t.join();

  const StoreStats stats = store->stats();
  EXPECT_GT(stats.queries, 0u);
  // Cost is consistent with the accumulated counters (all queries were
  // charged through the same model).
  EXPECT_GT(stats.simulated_cost, 0);
}

// stats() must return one *consistent* snapshot: every field is read
// under the same lock that writers hold for the whole-query update, so
// cross-field invariants hold in every snapshot and every field is
// monotonic between snapshots. (The seed implementation used six
// independent atomics, which could tear across fields mid-query.)
TEST(ConcurrencyTest, StatsSnapshotsAreConsistentAndMonotonic) {
  workload::TraceConfig config = workload::TraceConfig::Small();
  config.num_hosts = 3;
  auto store = workload::BuildEnterpriseTrace(config);
  store->ResetStats();
  const auto alerts = workload::SampleAnomalyEvents(*store, 8, 17);

  std::atomic<bool> done{false};
  std::vector<StoreStats> snapshots;
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      snapshots.push_back(store->stats());
    }
    snapshots.push_back(store->stats());
  });

  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < alerts.size(); i += 4) {
        SimClock clock;
        Session session(store.get(), &clock);
        const auto spec = workload::GenericSpecFor(*store, alerts[i]);
        if (!session.StartWithSpec(spec, alerts[i]).ok()) continue;
        RunLimits limits;
        limits.sim_time = 2 * kMicrosPerMinute;
        (void)session.Step(limits);
      }
    });
  }
  for (auto& t : pool) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  ASSERT_FALSE(snapshots.empty());
  const StoreStats* prev = nullptr;
  for (const StoreStats& s : snapshots) {
    // Cross-field invariant inside one snapshot: a seek always follows
    // a probe of the same unit within the same locked update.
    EXPECT_LE(s.partitions_seeked, s.partitions_probed);
    if (prev != nullptr) {
      // Monotonic nondecreasing deltas between consecutive snapshots.
      EXPECT_GE(s.queries, prev->queries);
      EXPECT_GE(s.rows_matched, prev->rows_matched);
      EXPECT_GE(s.rows_filtered, prev->rows_filtered);
      EXPECT_GE(s.partitions_probed, prev->partitions_probed);
      EXPECT_GE(s.partitions_seeked, prev->partitions_seeked);
      EXPECT_GE(s.segments_pruned, prev->segments_pruned);
      EXPECT_GE(s.simulated_cost, prev->simulated_cost);
    }
    prev = &s;
  }
  EXPECT_GT(snapshots.back().queries, 0u);
}

// Sharded store under concurrent scans: N shard backends charge cost
// into the aggregate while readers take (total, per-shard) snapshots.
// Every snapshot is taken under the store's single aggregation lock, so
// the per-shard counters must sum exactly to the totals in EVERY
// observed snapshot — not just at quiescence — and both levels must be
// monotonic between snapshots. Under the CI TSan leg this doubles as
// the data-race certification of ShardedStore's scatter-gather path.
TEST(ConcurrencyTest, ShardedStatsSnapshotsReconcileUnderScans) {
  workload::TraceConfig config = workload::TraceConfig::Small();
  config.num_hosts = 4;
  config.shards = 4;
  auto store = workload::BuildEnterpriseTrace(config);
  ASSERT_EQ(store->shard_count(), 4u);
  store->ResetStats();
  const auto alerts = workload::SampleAnomalyEvents(*store, 8, 19);

  std::atomic<bool> done{false};
  std::vector<ShardedStore::Snapshot> snapshots;
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      snapshots.push_back(store->ShardSnapshot());
    }
    snapshots.push_back(store->ShardSnapshot());
  });

  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < alerts.size(); i += 4) {
        SimClock clock;
        SessionOptions options;
        options.scan_threads = 2;  // pool workers scatter-gather too
        Session session(store.get(), &clock, options);
        const auto spec = workload::GenericSpecFor(*store, alerts[i]);
        if (!session.StartWithSpec(spec, alerts[i]).ok()) continue;
        RunLimits limits;
        limits.sim_time = 2 * kMicrosPerMinute;
        (void)session.Step(limits);
      }
    });
  }
  for (auto& t : pool) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  ASSERT_FALSE(snapshots.empty());
  const ShardedStore::Snapshot* prev = nullptr;
  for (const ShardedStore::Snapshot& snap : snapshots) {
    ASSERT_EQ(snap.shards.size(), 4u);
    StoreStats sum;
    for (const auto& row : snap.shards) {
      sum.rows_matched += row.stats.rows_matched;
      sum.rows_filtered += row.stats.rows_filtered;
      sum.partitions_probed += row.stats.partitions_probed;
      sum.partitions_seeked += row.stats.partitions_seeked;
      sum.segments_pruned += row.stats.segments_pruned;
    }
    // The single-lock consistency contract: exact in every snapshot.
    EXPECT_EQ(sum.rows_matched, snap.total.rows_matched);
    EXPECT_EQ(sum.rows_filtered, snap.total.rows_filtered);
    EXPECT_EQ(sum.partitions_probed, snap.total.partitions_probed);
    EXPECT_EQ(sum.partitions_seeked, snap.total.partitions_seeked);
    EXPECT_EQ(sum.segments_pruned, snap.total.segments_pruned);
    if (prev != nullptr) {
      EXPECT_GE(snap.total.queries, prev->total.queries);
      EXPECT_GE(snap.total.rows_matched, prev->total.rows_matched);
      EXPECT_GE(snap.total.simulated_cost, prev->total.simulated_cost);
      for (size_t s = 0; s < snap.shards.size(); ++s) {
        EXPECT_GE(snap.shards[s].stats.rows_matched,
                  prev->shards[s].stats.rows_matched);
        EXPECT_GE(snap.shards[s].stats.partitions_probed,
                  prev->shards[s].stats.partitions_probed);
      }
    }
    prev = &snap;
  }
  EXPECT_GT(snapshots.back().total.queries, 0u);
}

// TrySubmit racing Shutdown: the valve must cleanly return false once
// the pool stops, never crash or leak a queued-but-dropped task count.
TEST(ConcurrencyTest, TrySubmitRacesShutdownSafely) {
  for (int round = 0; round < 8; ++round) {
    WorkerPool pool(2);
    std::atomic<int> accepted{0};
    std::atomic<int> ran{0};
    std::vector<std::thread> submitters;
    for (int s = 0; s < 4; ++s) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 200; ++i) {
          if (pool.TrySubmit([&ran] { ran.fetch_add(1); }, 64)) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    pool.Shutdown(/*run_pending=*/true);
    for (auto& s : submitters) s.join();
    // Everything accepted before the shutdown drain ran to completion;
    // nothing accepted afterwards (Shutdown(run_pending) drains fully).
    EXPECT_EQ(ran.load(), accepted.load()) << "round " << round;
  }
}

// Session::Snapshot is documented tear-free and callable from a thread
// other than the one driving Step(); TSan checks the synchronization,
// we check the monotonic-progress invariant across reads.
TEST(ConcurrencyTest, SnapshotReadableWhileStepping) {
  workload::TraceConfig config = workload::TraceConfig::Small();
  config.num_hosts = 3;
  auto store = workload::BuildEnterpriseTrace(config);
  const auto alerts = workload::SampleAnomalyEvents(*store, 1, 23);
  ASSERT_FALSE(alerts.empty());

  SimClock clock;
  Session session(store.get(), &clock);
  const auto spec = workload::GenericSpecFor(*store, alerts[0]);
  ASSERT_TRUE(session.StartWithSpec(spec, alerts[0]).ok());

  std::atomic<bool> done{false};
  std::thread reader([&] {
    size_t last_edges = 0;
    uint64_t last_work = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const SessionSnapshot snap = session.Snapshot();
      EXPECT_TRUE(snap.started);
      EXPECT_GE(snap.graph_edges, last_edges);
      EXPECT_GE(snap.work_units, last_work);
      last_edges = snap.graph_edges;
      last_work = snap.work_units;
    }
  });

  RunLimits limits;
  limits.sim_time = 10 * kMicrosPerMinute;
  EXPECT_TRUE(session.Step(limits).ok());
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_GT(session.Snapshot().work_units, 0u);
}

// Client-facing SessionManager entry points hammered from several
// threads while the scheduler interleaves the sessions' quanta. Poll,
// stats, and cancel must all stay well-formed mid-flight.
TEST(ConcurrencyTest, ServiceOpsRaceTheScheduler) {
  workload::TraceConfig config = workload::TraceConfig::Small();
  config.num_hosts = 3;
  auto store = workload::BuildEnterpriseTrace(config);
  const auto alerts = workload::SampleAnomalyEvents(*store, 4, 31);
  ASSERT_GE(alerts.size(), 4u);

  service::ServiceLimits limits;
  limits.quantum_windows = 2;  // many scheduler passes
  service::SessionManager manager(store.get(), limits);
  std::vector<uint64_t> ids;
  for (const Event& alert : alerts) {
    service::OpenOptions opts;
    opts.start_event = alert.id;
    auto id = manager.Open("backward proc x[] -> *", opts);
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.value());
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      uint64_t cursor = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const uint64_t id = ids[c % ids.size()];
        auto p = manager.Poll(id, cursor, 4);
        if (p.ok()) {
          cursor = p->next_cursor;
          EXPECT_TRUE(p->snapshot.started);
        }
        const service::ServiceStats stats = manager.stats();
        EXPECT_LE(stats.done + stats.cancelled + stats.budget_exhausted,
                  stats.opened_total);
      }
    });
  }
  // One client cancels a session mid-run; idempotent on repeat.
  EXPECT_TRUE(manager.Cancel(ids.back()).ok());
  EXPECT_TRUE(manager.Cancel(ids.back()).ok());

  EXPECT_TRUE(manager.WaitAllTerminal(60'000'000));
  done.store(true, std::memory_order_relaxed);
  for (auto& c : clients) c.join();

  const service::ServiceStats stats = manager.stats();
  EXPECT_EQ(stats.live, 0u);
  EXPECT_EQ(stats.opened_total, ids.size());
}

// HTTP scrapes racing the scheduler and each other: /metrics, /sessions,
// and /readyz are served from threads concurrent with session quanta and
// with other scrapes. TSan checks the synchronization (metrics registry,
// SessionRows, the draining flag); we check every response stays
// well-formed mid-flight.
TEST(ConcurrencyTest, ConcurrentScrapesRaceTheScheduler) {
  workload::TraceConfig config = workload::TraceConfig::Small();
  config.num_hosts = 3;
  auto store = workload::BuildEnterpriseTrace(config);
  const auto alerts = workload::SampleAnomalyEvents(*store, 4, 41);
  ASSERT_GE(alerts.size(), 4u);

  service::ServiceLimits limits;
  limits.quantum_windows = 2;   // many scheduler passes
  limits.window_budget = 2000;  // every session terminates (done/budget)
  service::SessionManager manager(store.get(), limits);
  std::vector<uint64_t> ids;
  for (const Event& alert : alerts) {
    service::OpenOptions opts;
    opts.start_event = alert.id;
    auto id = manager.Open("backward proc x[] -> *", opts);
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.value());
  }

  const char* targets[] = {"/metrics", "/sessions", "/readyz"};
  std::atomic<bool> done{false};
  std::vector<std::thread> scrapers;
  // One poller keeps the update buffers drained so no session parks on
  // backpressure — the scrapers race live, progressing sessions.
  scrapers.emplace_back([&] {
    std::vector<uint64_t> cursors(ids.size(), 0);
    while (!done.load(std::memory_order_relaxed)) {
      for (size_t i = 0; i < ids.size(); ++i) {
        auto p = manager.Poll(ids[i], cursors[i], 8);
        if (p.ok()) cursors[i] = p->next_cursor;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (size_t s = 0; s < 3; ++s) {
    scrapers.emplace_back([&, s] {
      while (!done.load(std::memory_order_relaxed)) {
        service::HttpRequest request;
        request.method = "GET";
        request.target = targets[s];
        const service::HttpResponse response =
            service::HandleHttpRequest(request, &manager);
        EXPECT_TRUE(response.status == 200 || response.status == 503);
        EXPECT_FALSE(response.body.empty());
        // Scrapers are periodic in practice; a tight loop would only
        // starve the scheduler of the manager mutex.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  EXPECT_TRUE(manager.WaitAllTerminal(60'000'000));
  manager.Stop();  // scrapes must survive the drain flip too
  done.store(true, std::memory_order_relaxed);
  for (auto& s : scrapers) s.join();
  EXPECT_EQ(manager.stats().live, 0u);
}

// ------------------------------------------------------------------
// Contention section for the util/sync.h wrappers. Runs in every build;
// under the CI TSan leg it doubles as the data-race certification of the
// Mutex/MutexLock/CondVar implementation itself (adopt/release tricks,
// lock-order bookkeeping, thread_local held stacks).

TEST(ConcurrencyTest, SyncWrappersUnderContention) {
  Mutex mu("test::contention");
  uint64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        if (i % 16 == 0 && mu.TryLock()) {
          counter++;
          mu.Unlock();
          continue;
        }
        MutexLock lock(&mu);
        counter++;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ConcurrencyTest, CondVarProducersConsumersUnderContention) {
  Mutex mu("test::pc_queue");
  CondVar not_empty;
  std::deque<int> queue;
  bool closed = false;
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2000;

  std::atomic<long> consumed_sum{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        int item = 0;
        {
          MutexLock lock(&mu);
          while (queue.empty() && !closed) not_empty.Wait(lock);
          if (queue.empty()) return;  // closed and drained
          item = queue.front();
          queue.pop_front();
        }
        consumed_sum.fetch_add(item, std::memory_order_relaxed);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) {
        {
          MutexLock lock(&mu);
          queue.push_back(i);
        }
        not_empty.NotifyOne();
      }
    });
  }
  for (size_t i = kConsumers; i < threads.size(); ++i) threads[i].join();
  {
    MutexLock lock(&mu);
    closed = true;
  }
  not_empty.NotifyAll();
  for (int c = 0; c < kConsumers; ++c) threads[static_cast<size_t>(c)].join();

  const long expected = static_cast<long>(kProducers) * kPerProducer *
                        (kPerProducer + 1) / 2;
  EXPECT_EQ(consumed_sum.load(), expected);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace aptrace
