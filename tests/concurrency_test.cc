// Concurrent analysis: after Seal(), any number of sessions may run
// against one store from different threads (atomic I/O counters,
// otherwise read-only state). Results must match the serial runs exactly.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "core/engine.h"
#include "workload/enterprise.h"

namespace aptrace {
namespace {

std::set<EventId> EdgeSet(const DepGraph& g) {
  std::set<EventId> out;
  g.ForEachEdge([&](const DepGraph::Edge& e) { out.insert(e.event); });
  return out;
}

TEST(ConcurrencyTest, ParallelSessionsMatchSerial) {
  workload::TraceConfig config = workload::TraceConfig::Small();
  config.num_hosts = 4;
  auto store = workload::BuildEnterpriseTrace(config);
  const auto alerts = workload::SampleAnomalyEvents(*store, 12, 7);

  const auto run_one = [&](const Event& alert) {
    SimClock clock;
    Session session(store.get(), &clock);
    const auto spec = workload::GenericSpecFor(*store, alert);
    EXPECT_TRUE(session.StartWithSpec(spec, alert).ok());
    RunLimits limits;
    limits.sim_time = 10 * kMicrosPerMinute;
    EXPECT_TRUE(session.Step(limits).ok());
    return EdgeSet(session.graph());
  };

  // Serial reference.
  std::vector<std::set<EventId>> serial;
  serial.reserve(alerts.size());
  for (const Event& alert : alerts) serial.push_back(run_one(alert));

  // The same cases across 4 threads, twice to shake out races.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::set<EventId>> parallel(alerts.size());
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
      pool.emplace_back([&, t] {
        for (size_t i = static_cast<size_t>(t); i < alerts.size(); i += 4) {
          parallel[i] = run_one(alerts[i]);
        }
      });
    }
    for (auto& t : pool) t.join();
    for (size_t i = 0; i < alerts.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i]) << "case " << i;
    }
  }
}

// The parallel scan pipeline inside one executor: scan_threads > 1 must
// reproduce the sequential edge set, including when several parallel
// executors run concurrently over the same store (worker pools of
// different sessions share nothing but the sealed store).
TEST(ConcurrencyTest, ParallelExecutorMatchesSequential) {
  workload::TraceConfig config = workload::TraceConfig::Small();
  config.num_hosts = 4;
  auto store = workload::BuildEnterpriseTrace(config);
  const auto alerts = workload::SampleAnomalyEvents(*store, 8, 13);

  const auto run_one = [&](const Event& alert, int scan_threads) {
    SimClock clock;
    SessionOptions options;
    options.scan_threads = scan_threads;
    Session session(store.get(), &clock, options);
    const auto spec = workload::GenericSpecFor(*store, alert);
    EXPECT_TRUE(session.StartWithSpec(spec, alert).ok());
    RunLimits limits;
    limits.sim_time = 10 * kMicrosPerMinute;
    EXPECT_TRUE(session.Step(limits).ok());
    return EdgeSet(session.graph());
  };

  std::vector<std::set<EventId>> serial;
  serial.reserve(alerts.size());
  for (const Event& alert : alerts) serial.push_back(run_one(alert, 1));

  // Sessions whose executors each own a 4-worker pool, themselves spread
  // across 2 outer threads: pool workers from different executors hit the
  // store concurrently.
  std::vector<std::set<EventId>> parallel(alerts.size());
  std::vector<std::thread> outer;
  for (int t = 0; t < 2; ++t) {
    outer.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < alerts.size(); i += 2) {
        parallel[i] = run_one(alerts[i], 4);
      }
    });
  }
  for (auto& t : outer) t.join();
  for (size_t i = 0; i < alerts.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "case " << i;
  }
}

TEST(ConcurrencyTest, StatsAggregateAcrossThreads) {
  workload::TraceConfig config = workload::TraceConfig::Small();
  config.num_hosts = 3;
  auto store = workload::BuildEnterpriseTrace(config);
  store->ResetStats();

  const auto alerts = workload::SampleAnomalyEvents(*store, 8, 11);
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < alerts.size(); i += 4) {
        SimClock clock;
        Session session(store.get(), &clock);
        const auto spec = workload::GenericSpecFor(*store, alerts[i]);
        if (!session.StartWithSpec(spec, alerts[i]).ok()) continue;
        RunLimits limits;
        limits.sim_time = 2 * kMicrosPerMinute;
        (void)session.Step(limits);
      }
    });
  }
  for (auto& t : pool) t.join();

  const StoreStats stats = store->stats();
  EXPECT_GT(stats.queries, 0u);
  // Cost is consistent with the accumulated counters (all queries were
  // charged through the same model).
  EXPECT_GT(stats.simulated_cost, 0);
}

}  // namespace
}  // namespace aptrace
