// Robustness of the BDL front end: any input — truncated scripts, mutated
// scripts, random token soup, binary garbage — must produce a clean error
// status, never a crash or an uninitialized spec.

#include <gtest/gtest.h>

#include <string>

#include "bdl/analyzer.h"
#include "util/rng.h"

namespace aptrace::bdl {
namespace {

constexpr char kGoodScript[] =
    "from \"03/26/2019\" to \"04/27/2019\"\n"
    "in \"desktop1\", \"desktop2\"\n"
    "backward ip alert[dst_ip = \"185.220.101.45\" and subject_name = "
    "\"java.exe\" and event_time = \"04/26/2019:16:31:16\"] -> proc "
    "p[exename = \"malware*\"] -> *\n"
    "where file.path != \"*.dll\" and time < 10mins and hop <= 25\n"
    "prioritize [type = file and src.path = \"*secret*\"] <- [type = "
    "network and dst.ip = \"203.*\" and amount >= size]\n"
    "output = \"./result.dot\"\n";

TEST(BdlRobustnessTest, KitchenSinkScriptCompiles) {
  auto spec = CompileBdl(kGoodScript);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->chain.size(), 3u);
  EXPECT_EQ(spec->hosts.size(), 2u);
  EXPECT_EQ(spec->time_budget, 10 * kMicrosPerMinute);
  EXPECT_EQ(spec->hop_limit, 25);
  EXPECT_EQ(spec->prioritize.size(), 1u);
  EXPECT_EQ(spec->output_path, "./result.dot");
}

TEST(BdlRobustnessTest, EveryPrefixFailsCleanly) {
  const std::string script = kGoodScript;
  size_t compiled_ok = 0;
  for (size_t len = 0; len < script.size(); ++len) {
    auto spec = CompileBdl(script.substr(0, len));
    // Either a clean error or (for a few lucky prefixes ending at a
    // statement boundary) a valid spec; never a crash.
    if (spec.ok()) compiled_ok++;
  }
  // Most prefixes are invalid.
  EXPECT_LT(compiled_ok, script.size() / 2);
}

TEST(BdlRobustnessTest, SingleCharacterMutationsFailCleanly) {
  const std::string script = kGoodScript;
  const char kMutations[] = {'!', '(', ')', '"', '\\', '-', '>', '.', '[',
                             ']', '\0', '\n', '*', '=', '7'};
  for (size_t pos = 0; pos < script.size(); pos += 3) {
    for (char m : kMutations) {
      std::string mutated = script;
      mutated[pos] = m;
      auto spec = CompileBdl(mutated);  // must not crash
      (void)spec;
    }
  }
  SUCCEED();
}

TEST(BdlRobustnessTest, RandomTokenSoupFailsCleanly) {
  const char* kTokens[] = {"backward", "where",  "proc",  "file",  "ip",
                           "->",       "<-",     "[",     "]",     "(",
                           ")",        "and",    "or",    "=",     "!=",
                           "<",        ">=",     "*",     ",",     ".",
                           "\"x\"",    "12",     "10mins", "from", "to",
                           "in",       "output", "prioritize", "exename",
                           "path",     "hop",    "time"};
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::string soup;
    const size_t len = 1 + rng.Uniform(40);
    for (size_t i = 0; i < len; ++i) {
      soup += kTokens[rng.Uniform(std::size(kTokens))];
      soup += ' ';
    }
    auto spec = CompileBdl(soup);  // must not crash
    (void)spec;
  }
  SUCCEED();
}

TEST(BdlRobustnessTest, BinaryGarbageFailsCleanly) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const size_t len = rng.Uniform(200);
    for (size_t i = 0; i < len; ++i) {
      garbage += static_cast<char>(rng.Uniform(256));
    }
    auto spec = CompileBdl(garbage);
    // Binary garbage is never a valid script (it would need the keyword
    // `backward` plus a well-formed node at minimum — astronomically
    // unlikely with these lengths; if it ever happens, the seed changed).
    EXPECT_FALSE(spec.ok());
  }
}

TEST(BdlRobustnessTest, DeeplyNestedParensCompile) {
  std::string cond = "pid = 1";
  for (int i = 0; i < 200; ++i) cond = "(" + cond + ")";
  auto spec = CompileBdl("backward proc p[" + cond + "] -> *");
  EXPECT_TRUE(spec.ok()) << spec.status();
}

TEST(BdlRobustnessTest, VeryLongConjunctionCompiles) {
  std::string cond = "pid != 0";
  for (int i = 1; i < 500; ++i) cond += " and pid != " + std::to_string(i);
  auto spec = CompileBdl("backward proc p[" + cond + "] -> *");
  EXPECT_TRUE(spec.ok()) << spec.status();
}

TEST(BdlRobustnessTest, LongStringLiteral) {
  const std::string path(10000, 'a');
  auto spec = CompileBdl("backward file f[path = \"" + path + "\"] -> *");
  EXPECT_TRUE(spec.ok()) << spec.status();
}

}  // namespace
}  // namespace aptrace::bdl
