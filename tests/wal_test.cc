// Unit tests for the write-ahead log (storage/wal.h): record codec,
// longest-valid-prefix scanning, writer append/rollback behavior, and —
// through FaultInjectingFileEnv — the ENOSPC / short-write / fsync
// failure modes of the durability contract (docs/durability.md).

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/fault_env.h"
#include "storage/file_env.h"

namespace aptrace {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// A deterministic batch of `n` events whose fields are all derived from
// `tag`, so round-trip mismatches point at the exact corrupted field.
std::vector<Event> MakeBatch(uint64_t tag, size_t n) {
  std::vector<Event> events;
  for (size_t i = 0; i < n; ++i) {
    Event e;
    e.timestamp = static_cast<TimeMicros>(1000 * tag + i);
    e.subject = 2 * tag + i;
    e.object = 3 * tag + i;
    e.amount = 40 + tag;
    e.host = static_cast<HostId>(tag % 3);
    e.action = static_cast<ActionType>((tag + i) % 8);
    e.direction = ActionDefaultDirection(e.action);
    events.push_back(e);
  }
  return events;
}

void ExpectBatchEq(const std::vector<Event>& want, const std::vector<Event>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].timestamp, got[i].timestamp) << "event " << i;
    EXPECT_EQ(want[i].subject, got[i].subject) << "event " << i;
    EXPECT_EQ(want[i].object, got[i].object) << "event " << i;
    EXPECT_EQ(want[i].amount, got[i].amount) << "event " << i;
    EXPECT_EQ(want[i].host, got[i].host) << "event " << i;
    EXPECT_EQ(want[i].action, got[i].action) << "event " << i;
    EXPECT_EQ(want[i].direction, got[i].direction) << "event " << i;
  }
}

// Fresh WAL file at `path` (removes any leftover from a prior run).
void RemoveIfExists(FileEnv* env, const std::string& path) {
  if (env->FileExists(path)) ASSERT_TRUE(env->RemoveFile(path).ok());
}

TEST(WalCodecTest, Crc32MatchesIeeeCheckValue) {
  // The canonical CRC-32/IEEE check value ("123456789" -> 0xCBF43926);
  // pinning it guards the on-disk format against accidental polynomial
  // or reflection changes.
  EXPECT_EQ(WalCrc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(WalCrc32(""), 0u);
}

TEST(WalCodecTest, RecordLayoutIsLengthPrefixedAndCrcd) {
  const std::vector<Event> batch = MakeBatch(7, 3);
  const std::string record = EncodeWalRecord(42, batch);
  // u32 len + u32 crc + (u64 seq + u32 count + n * 36).
  ASSERT_EQ(record.size(), 8 + 12 + 3 * kWalEventBytes);
  const std::string payload = record.substr(8);
  const auto* p = reinterpret_cast<const unsigned char*>(record.data());
  const uint32_t len = static_cast<uint32_t>(p[0]) | (p[1] << 8) |
                       (p[2] << 16) | (static_cast<uint32_t>(p[3]) << 24);
  EXPECT_EQ(len, payload.size());
  const uint32_t crc = static_cast<uint32_t>(p[4]) | (p[5] << 8) |
                       (p[6] << 16) | (static_cast<uint32_t>(p[7]) << 24);
  EXPECT_EQ(crc, WalCrc32(payload));
}

TEST(WalCodecTest, ScanRoundTripsMultipleBatches) {
  std::string bytes(kWalMagic, kWalMagicLen);
  std::vector<std::vector<Event>> batches;
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    batches.push_back(MakeBatch(seq, seq % 3 + 1));
    bytes += EncodeWalRecord(seq, batches.back());
  }
  auto scan = ScanWalBytes(bytes);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->valid_bytes, bytes.size());
  EXPECT_EQ(scan->truncated_bytes, 0u);
  EXPECT_EQ(scan->duplicates_skipped, 0u);
  EXPECT_TRUE(scan->diagnostic.empty()) << scan->diagnostic;
  ASSERT_EQ(scan->batches.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(scan->batches[i].seq, i + 1);
    ExpectBatchEq(batches[i], scan->batches[i].events);
  }
}

TEST(WalCodecTest, EmptyBytesAreAFreshLog) {
  auto scan = ScanWalBytes("");
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->batches.empty());
  EXPECT_EQ(scan->valid_bytes, 0u);
}

TEST(WalCodecTest, WrongMagicIsAHardError) {
  auto scan = ScanWalBytes("definitely not a wal file\n");
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.status().message().find("STO-E002"), std::string::npos)
      << scan.status();
  // A short fragment that cannot even hold the magic is also not a WAL.
  auto tiny = ScanWalBytes("apt");
  ASSERT_FALSE(tiny.ok());
  EXPECT_NE(tiny.status().message().find("STO-E002"), std::string::npos);
}

TEST(WalCodecTest, MagicAloneIsACleanEmptyLog) {
  auto scan = ScanWalBytes(std::string(kWalMagic, kWalMagicLen));
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->batches.empty());
  EXPECT_EQ(scan->valid_bytes, kWalMagicLen);
  EXPECT_TRUE(scan->diagnostic.empty());
}

TEST(WalWriterTest, AppendAssignsSequenceAndPersists) {
  FileEnv* env = FileEnv::Posix();
  const std::string path = TestPath("wal_append.log");
  RemoveIfExists(env, path);

  auto writer = WalWriter::Open(env, path, 0, 1);
  ASSERT_TRUE(writer.ok()) << writer.status();
  WalWriter* w = writer->get();
  for (uint64_t i = 1; i <= 3; ++i) {
    auto seq = w->AppendBatch(MakeBatch(i, 2));
    ASSERT_TRUE(seq.ok()) << seq.status();
    EXPECT_EQ(seq.value(), i);
  }
  EXPECT_EQ(w->next_seq(), 4u);

  auto bytes = env->ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->size(), w->offset());
  auto scan = ScanWalBytes(*bytes);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->batches.size(), 3u);
  for (uint64_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(scan->batches[i - 1].seq, i);
    ExpectBatchEq(MakeBatch(i, 2), scan->batches[i - 1].events);
  }
}

TEST(WalWriterTest, ReopenContinuesWhereRecoveryLeftOff) {
  FileEnv* env = FileEnv::Posix();
  const std::string path = TestPath("wal_reopen.log");
  RemoveIfExists(env, path);

  uint64_t valid_bytes = 0;
  {
    auto writer = WalWriter::Open(env, path, 0, 1);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->AppendBatch(MakeBatch(1, 1)).ok());
    ASSERT_TRUE((*writer)->AppendBatch(MakeBatch(2, 1)).ok());
    valid_bytes = (*writer)->offset();
  }
  auto writer = WalWriter::Open(env, path, valid_bytes, 3);
  ASSERT_TRUE(writer.ok()) << writer.status();
  auto seq = (*writer)->AppendBatch(MakeBatch(3, 1));
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value(), 3u);

  auto bytes = env->ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  auto scan = ScanWalBytes(*bytes);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->batches.size(), 3u);
  EXPECT_EQ(scan->batches.back().seq, 3u);
}

TEST(WalWriterTest, OpenCutsTheFileBackToTheValidPrefix) {
  FileEnv* env = FileEnv::Posix();
  const std::string path = TestPath("wal_cut.log");
  RemoveIfExists(env, path);

  uint64_t valid_bytes = 0;
  {
    auto writer = WalWriter::Open(env, path, 0, 1);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->AppendBatch(MakeBatch(1, 2)).ok());
    valid_bytes = (*writer)->offset();
  }
  // Torn tail from a crash mid-append.
  {
    auto f = env->OpenForAppend(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("torn half-record bytes").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  auto writer = WalWriter::Open(env, path, valid_bytes, 2);
  ASSERT_TRUE(writer.ok()) << writer.status();
  auto size = env->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, valid_bytes);
}

TEST(WalWriterTest, ResetForgetsDurablySnapshottedBatches) {
  FileEnv* env = FileEnv::Posix();
  const std::string path = TestPath("wal_reset.log");
  RemoveIfExists(env, path);

  auto writer = WalWriter::Open(env, path, 0, 1);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->AppendBatch(MakeBatch(1, 3)).ok());
  ASSERT_TRUE((*writer)->Reset().ok());
  EXPECT_EQ((*writer)->offset(), kWalMagicLen);

  auto bytes = env->ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, std::string(kWalMagic, kWalMagicLen));
  // The sequence keeps counting across the reset — recovery relies on
  // monotone seqs to skip snapshot-covered batches.
  auto seq = (*writer)->AppendBatch(MakeBatch(2, 1));
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value(), 2u);
}

// --- Fault injection ----------------------------------------------------

TEST(WalFaultTest, EnospcRejectsTheBatchAndKeepsTheLogClean) {
  FaultInjectingFileEnv env(FileEnv::Posix());
  const std::string path = TestPath("wal_enospc.log");
  RemoveIfExists(&env, path);

  auto writer = WalWriter::Open(&env, path, 0, 1);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->AppendBatch(MakeBatch(1, 2)).ok());
  const uint64_t good_offset = (*writer)->offset();

  env.SetWriteBudget(0);  // disk full
  auto rejected = (*writer)->AppendBatch(MakeBatch(2, 2));
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("STO-E007"), std::string::npos)
      << rejected.status();
  EXPECT_GE(env.write_failures(), 1u);

  // Rolled back to the last record boundary: the on-disk log still scans
  // clean with exactly the acknowledged batch.
  auto size = env.FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, good_offset);

  // Disk space freed: the writer recovers and the sequence has no hole —
  // the failed batch was never acknowledged, so seq 2 is reused.
  env.SetWriteBudget(FaultInjectingFileEnv::kUnlimited);
  auto seq = (*writer)->AppendBatch(MakeBatch(2, 2));
  ASSERT_TRUE(seq.ok()) << seq.status();
  EXPECT_EQ(seq.value(), 2u);

  auto bytes = env.ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  auto scan = ScanWalBytes(*bytes);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->batches.size(), 2u);
  EXPECT_TRUE(scan->diagnostic.empty()) << scan->diagnostic;
}

TEST(WalFaultTest, ShortWriteIsRolledBackToARecordBoundary) {
  FaultInjectingFileEnv env(FileEnv::Posix());
  const std::string path = TestPath("wal_short.log");
  RemoveIfExists(&env, path);

  auto writer = WalWriter::Open(&env, path, 0, 1);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->AppendBatch(MakeBatch(1, 2)).ok());
  const uint64_t good_offset = (*writer)->offset();

  // Allow 10 more bytes and land them: the record tears mid-write.
  env.SetWriteBudget(10);
  env.SetPartialWrites(true);
  auto rejected = (*writer)->AppendBatch(MakeBatch(2, 2));
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("STO-E007"), std::string::npos);

  // The reported failure was repaired immediately: no torn bytes remain.
  auto size = env.FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, good_offset);

  env.SetWriteBudget(FaultInjectingFileEnv::kUnlimited);
  auto seq = (*writer)->AppendBatch(MakeBatch(2, 2));
  ASSERT_TRUE(seq.ok()) << seq.status();
  EXPECT_EQ(seq.value(), 2u);
}

TEST(WalFaultTest, FsyncFailureIsNotAcknowledged) {
  FaultInjectingFileEnv env(FileEnv::Posix());
  const std::string path = TestPath("wal_fsync.log");
  RemoveIfExists(&env, path);

  auto writer = WalWriter::Open(&env, path, 0, 1);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->AppendBatch(MakeBatch(1, 1)).ok());
  const uint64_t good_offset = (*writer)->offset();

  env.FailNextSyncs(1);
  auto rejected = (*writer)->AppendBatch(MakeBatch(2, 1));
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("STO-E007"), std::string::npos);
  EXPECT_NE(rejected.status().message().find("fsync"), std::string::npos)
      << rejected.status();
  EXPECT_EQ(env.sync_failures(), 1u);

  // The un-synced record was rolled back: what is on disk is exactly the
  // acknowledged prefix, so a crash right now loses nothing acked.
  auto size = env.FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, good_offset);

  auto seq = (*writer)->AppendBatch(MakeBatch(2, 1));
  ASSERT_TRUE(seq.ok()) << seq.status();
  EXPECT_EQ(seq.value(), 2u);
}

TEST(WalFaultTest, WriterSurvivesARunOfFailures) {
  FaultInjectingFileEnv env(FileEnv::Posix());
  const std::string path = TestPath("wal_flaky.log");
  RemoveIfExists(&env, path);

  auto writer = WalWriter::Open(&env, path, 0, 1);
  ASSERT_TRUE(writer.ok()) << writer.status();

  uint64_t acked = 0;
  for (int round = 0; round < 20; ++round) {
    if (round % 3 == 1) env.FailNextSyncs(1);
    if (round % 5 == 2) env.SetWriteBudget(3);
    auto seq = (*writer)->AppendBatch(MakeBatch(static_cast<uint64_t>(round), 1));
    env.SetWriteBudget(FaultInjectingFileEnv::kUnlimited);
    if (seq.ok()) acked = seq.value();
  }
  ASSERT_GT(acked, 0u);

  // Whatever subset of appends succeeded, the log is a clean record of
  // exactly the acknowledged batches, in order, with contiguous seqs.
  auto bytes = env.ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  auto scan = ScanWalBytes(*bytes);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->diagnostic.empty()) << scan->diagnostic;
  ASSERT_EQ(scan->batches.size(), acked);
  for (size_t i = 0; i < scan->batches.size(); ++i) {
    EXPECT_EQ(scan->batches[i].seq, i + 1);
  }
}

}  // namespace
}  // namespace aptrace
