// Concurrency stress tests for util/worker_pool.h: bursty submission,
// drain-vs-discard shutdown, exception containment, and concurrent
// submitters. Runs in the CI TSan matrix entry (see .github/workflows).

#include "util/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace aptrace {
namespace {

TEST(WorkerPoolTest, RunsEverySubmittedTask) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.tasks_completed(), 100u);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(WorkerPoolTest, ClampsThreadCount) {
  WorkerPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  WorkerPool huge(100000);
  EXPECT_EQ(huge.num_threads(), WorkerPool::kMaxThreads);
}

TEST(WorkerPoolTest, BurstyRoundsDrainCompletely) {
  WorkerPool pool(3);
  std::atomic<int> ran{0};
  int expected = 0;
  for (int round = 0; round < 20; ++round) {
    const int burst = 1 + (round * 7) % 17;
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
    }
    expected += burst;
    if (round % 3 == 0) {
      pool.WaitIdle();
      EXPECT_EQ(ran.load(), expected);
    }
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), expected);
}

TEST(WorkerPoolTest, ExceptionsAreCountedAndPoolSurvives) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.Submit([&ran, i] {
      if (i % 2 == 0) throw std::runtime_error("task failure");
      ran.fetch_add(1);
    }));
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(pool.exceptions_caught(), 5u);
  EXPECT_EQ(pool.tasks_completed(), 10u);
  // The pool still accepts and runs work after task exceptions.
  ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 6);
}

TEST(WorkerPoolTest, ShutdownDrainRunsPendingTasks) {
  std::atomic<int> ran{0};
  WorkerPool pool(1);
  // A slow first task guarantees a backlog exists at Shutdown time.
  ASSERT_TRUE(pool.Submit([&ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ran.fetch_add(1);
  }));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Shutdown(/*run_pending=*/true);
  EXPECT_EQ(ran.load(), 51);
}

TEST(WorkerPoolTest, ShutdownDiscardDropsBacklog) {
  std::atomic<int> ran{0};
  WorkerPool pool(1);
  ASSERT_TRUE(pool.Submit([&ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ran.fetch_add(1);
  }));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Shutdown(/*run_pending=*/false);
  // The queued backlog is dropped. The slow task runs only if the worker
  // popped it before Shutdown won the lock (it may not have, on a busy
  // single-core machine), so 0 or 1 — never the 50 queued behind it.
  EXPECT_LE(ran.load(), 1);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(WorkerPoolTest, SubmitAfterShutdownReturnsFalse) {
  WorkerPool pool(2);
  pool.Shutdown(/*run_pending=*/false);
  EXPECT_FALSE(pool.Submit([] {}));
  // Idempotent: a second Shutdown (and the destructor's) is a no-op.
  pool.Shutdown(/*run_pending=*/true);
}

TEST(WorkerPoolTest, TrySubmitRespectsBacklogCap) {
  WorkerPool pool(1);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // Park the single worker so everything else stays queued.
  ASSERT_TRUE(pool.Submit([&release, &ran] {
    while (!release.load()) std::this_thread::yield();
    ran.fetch_add(1);
  }));
  while (pool.pending() > 0) std::this_thread::yield();  // worker popped it

  ASSERT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }, 2));
  ASSERT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }, 2));
  // Backlog is at the cap: the valve closes without queueing or crashing.
  EXPECT_FALSE(pool.TrySubmit([&ran] { ran.fetch_add(1); }, 2));
  EXPECT_EQ(pool.pending(), 2u);
  // Plain Submit ignores the cap — it is the scheduler's opt-in valve.
  ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));

  release.store(true);
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 4);
}

TEST(WorkerPoolTest, TrySubmitAfterShutdownReturnsFalse) {
  WorkerPool pool(2);
  pool.Shutdown(/*run_pending=*/false);
  EXPECT_FALSE(pool.TrySubmit([] {}, 100));
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(WorkerPoolTest, ConcurrentSubmittersAreSerializedSafely) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  constexpr int kSubmitters = 6;
  constexpr int kPerSubmitter = 200;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &ran] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
      }
    });
  }
  for (auto& s : submitters) s.join();
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), kSubmitters * kPerSubmitter);
  EXPECT_EQ(pool.tasks_completed(),
            static_cast<uint64_t>(kSubmitters * kPerSubmitter));
}

TEST(WorkerPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  WorkerPool pool(2);
  pool.WaitIdle();  // no tasks ever submitted
  EXPECT_EQ(pool.tasks_completed(), 0u);
}

TEST(WorkerPoolTest, WaitIdleFromInsideATaskFailsFast) {
  WorkerPool pool(2);
  // A task waiting for the pool to drain waits for itself — previously
  // documented UB (a silent self-deadlock). Now it throws immediately.
  std::atomic<bool> threw{false};
  ASSERT_TRUE(pool.Submit([&pool, &threw] {
    try {
      pool.WaitIdle();
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  }));
  pool.WaitIdle();  // from a non-pool thread: still fine
  EXPECT_TRUE(threw.load());
  // The task caught the error itself, so the pool counted no escape.
  EXPECT_EQ(pool.exceptions_caught(), 0u);
  EXPECT_EQ(pool.tasks_completed(), 1u);
}

TEST(WorkerPoolTest, WaitIdleFromTaskUncaughtIsContained) {
  WorkerPool pool(1);
  // Even when the task lets the error escape, the worker survives and
  // the escape is counted like any other task exception.
  ASSERT_TRUE(pool.Submit([&pool] { pool.WaitIdle(); }));
  pool.WaitIdle();
  EXPECT_EQ(pool.exceptions_caught(), 1u);
  ASSERT_TRUE(pool.Submit([] {}));  // worker still serving
  pool.WaitIdle();
  EXPECT_EQ(pool.tasks_completed(), 2u);
}

}  // namespace
}  // namespace aptrace
