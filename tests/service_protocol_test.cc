// Unit tests for the daemon's wire layer: the JSON request parser
// (src/service/json.h) and the ProtocolHandler's request routing and
// SRV-E0xx error mapping (docs/service.md lists the codes).

#include <gtest/gtest.h>

#include <string>

#include "service/json.h"
#include "service/protocol.h"
#include "service/session_manager.h"
#include "tests/test_trace.h"

namespace aptrace::service {
namespace {

// ------------------------------------------------------------ ParseJson

TEST(JsonParserTest, Scalars) {
  EXPECT_EQ(ParseJson("null").value().kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(ParseJson("true").value().bool_v);
  EXPECT_FALSE(ParseJson("false").value().bool_v);

  const JsonValue n = ParseJson("42").value();
  ASSERT_TRUE(n.IsNumber());
  EXPECT_TRUE(n.is_int);
  EXPECT_EQ(n.int_v, 42);

  const JsonValue neg = ParseJson("-7").value();
  EXPECT_EQ(neg.int_v, -7);

  const JsonValue d = ParseJson("2.5e3").value();
  ASSERT_TRUE(d.IsNumber());
  EXPECT_FALSE(d.is_int);
  EXPECT_DOUBLE_EQ(d.num_v, 2500.0);

  const JsonValue s = ParseJson("\"hi\"").value();
  ASSERT_TRUE(s.IsString());
  EXPECT_EQ(s.str_v, "hi");
}

TEST(JsonParserTest, LargeIdsSurviveExactly) {
  // Event ids are uint64-ish; the exact-integer path must not round.
  const JsonValue v = ParseJson("{\"id\":9007199254740993}").value();
  EXPECT_EQ(v.GetInt("id"), 9007199254740993LL);
  EXPECT_EQ(v.GetUint("id"), 9007199254740993ULL);
}

TEST(JsonParserTest, StringEscapes) {
  const JsonValue v =
      ParseJson("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"").value();
  EXPECT_EQ(v.str_v, "a\"b\\c\n\tA\xc3\xa9");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(ParseJson("\"\\ud83d\\ude00\"").value().str_v,
            "\xf0\x9f\x98\x80");
  // A lone surrogate degrades to U+FFFD instead of emitting invalid
  // UTF-8 (the daemon must never echo malformed bytes back on the wire).
  EXPECT_EQ(ParseJson("\"\\ud83d\"").value().str_v, "\xef\xbf\xbd");
}

TEST(JsonParserTest, ArraysAndObjects) {
  const JsonValue v =
      ParseJson("{\"a\":[1,2,3],\"b\":{\"c\":true},\"a\":\"dup\"}").value();
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->IsArray());  // duplicate keys resolve to the first
  EXPECT_EQ(a->items.size(), 3u);
  EXPECT_TRUE(v.Find("b")->Find("c")->bool_v);
  EXPECT_EQ(v.Find("missing"), nullptr);
  EXPECT_EQ(v.GetInt("missing", -1), -1);
  EXPECT_EQ(v.GetString("missing", "d"), "d");
}

TEST(JsonParserTest, Errors) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // trailing non-whitespace
  EXPECT_TRUE(ParseJson(" 1 ").ok());

  // Depth cap: 100 nested arrays exceeds kMaxDepth.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

// ------------------------------------------------------ ProtocolHandler

class ProtocolTest : public testing::Test {
 protected:
  ProtocolTest() : trace_(testing_support::MakeMiniTrace()) {
    ServiceLimits limits;
    manager_ = std::make_unique<SessionManager>(trace_.store.get(), limits);
    handler_ = std::make_unique<ProtocolHandler>(manager_.get());
  }

  /// One request/response exchange, parsed.
  JsonValue Call(const std::string& line, bool* shutdown = nullptr) {
    bool unused = false;
    const std::string response =
        handler_->HandleLine(line, shutdown ? shutdown : &unused);
    auto parsed = ParseJson(response);
    EXPECT_TRUE(parsed.ok()) << response;
    return parsed.ok() ? std::move(parsed.value()) : JsonValue{};
  }

  testing_support::MiniTrace trace_;
  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ProtocolHandler> handler_;
};

TEST_F(ProtocolTest, MalformedRequestsReportE001) {
  EXPECT_EQ(Call("not json").GetString("code"), "SRV-E001");
  EXPECT_EQ(Call("[1,2]").GetString("code"), "SRV-E001");
  EXPECT_EQ(Call("{\"op\":\"frobnicate\"}").GetString("code"), "SRV-E001");
  EXPECT_EQ(Call("{}").GetString("code"), "SRV-E001");
}

TEST_F(ProtocolTest, OpenBadScriptReportsE004) {
  const JsonValue r = Call("{\"op\":\"open\",\"bdl\":\"not a script\"}");
  EXPECT_FALSE(r.GetBool("ok"));
  EXPECT_EQ(r.GetString("code"), "SRV-E004");
}

TEST_F(ProtocolTest, UnknownSessionReportsE003) {
  EXPECT_EQ(Call("{\"op\":\"poll\",\"session\":99}").GetString("code"),
            "SRV-E003");
  EXPECT_EQ(Call("{\"op\":\"cancel\",\"session\":99}").GetString("code"),
            "SRV-E003");
  EXPECT_EQ(Call("{\"op\":\"graph\",\"session\":99}").GetString("code"),
            "SRV-E003");
  EXPECT_EQ(
      Call("{\"op\":\"checkpoint\",\"session\":99,\"path\":\"/tmp/x\"}")
          .GetString("code"),
      "SRV-E003");
}

TEST_F(ProtocolTest, OpenPollGraphRoundTrip) {
  const JsonValue opened =
      Call("{\"op\":\"open\",\"bdl\":\"backward ip x[dst_ip = \\\"185.220.101.45\\\"] -> *\"}");
  ASSERT_TRUE(opened.GetBool("ok"));
  const uint64_t id = opened.GetUint("session");
  ASSERT_GE(id, 1u);

  ASSERT_TRUE(manager_->WaitAllTerminal(10'000'000));
  const JsonValue polled = Call(
      "{\"op\":\"poll\",\"session\":" + std::to_string(id) + "}");
  ASSERT_TRUE(polled.GetBool("ok"));
  EXPECT_EQ(polled.GetString("state"), "done");
  EXPECT_TRUE(polled.GetBool("terminal"));
  const JsonValue* batches = polled.Find("batches");
  ASSERT_NE(batches, nullptr);
  ASSERT_TRUE(batches->IsArray());
  EXPECT_FALSE(batches->items.empty());
  const JsonValue* snapshot = polled.Find("snapshot");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_GT(snapshot->GetUint("graph_edges"), 0u);

  const JsonValue graph = Call(
      "{\"op\":\"graph\",\"session\":" + std::to_string(id) + "}");
  ASSERT_TRUE(graph.GetBool("ok"));
  const std::string bytes = graph.GetString("graph");
  EXPECT_EQ(bytes.rfind("{", 0), 0u);  // canonical graph JSON object
  EXPECT_NE(bytes.find("\"edges\""), std::string::npos);
}

TEST_F(ProtocolTest, StatsWithAndWithoutSession) {
  const JsonValue service = Call("{\"op\":\"stats\"}");
  ASSERT_TRUE(service.GetBool("ok"));
  EXPECT_FALSE(service.GetBool("draining"));
  EXPECT_EQ(service.GetUint("opened_total"), 0u);

  const JsonValue opened =
      Call("{\"op\":\"open\",\"bdl\":\"backward ip x[dst_ip = \\\"185.220.101.45\\\"] -> *\"}");
  const uint64_t id = opened.GetUint("session");
  const JsonValue per = Call(
      "{\"op\":\"stats\",\"session\":" + std::to_string(id) + "}");
  ASSERT_TRUE(per.GetBool("ok"));
  ASSERT_NE(per.Find("snapshot"), nullptr);
  EXPECT_TRUE(per.Find("snapshot")->GetBool("started"));
}

TEST_F(ProtocolTest, IngestParsesActionsAndDirections) {
  // Action by name, direction defaulted from the action.
  JsonValue r = Call(
      "{\"op\":\"ingest\",\"events\":[{\"subject\":0,\"object\":1,"
      "\"timestamp\":100,\"action\":\"read\"}]}");
  ASSERT_TRUE(r.GetBool("ok")) << r.GetString("error");
  EXPECT_EQ(r.GetUint("accepted"), 1u);

  // Action by number, explicit direction by name.
  r = Call(
      "{\"op\":\"ingest\",\"events\":[{\"subject\":0,\"object\":1,"
      "\"timestamp\":101,\"action\":1,\"direction\":\"o2s\"}]}");
  ASSERT_TRUE(r.GetBool("ok")) << r.GetString("error");

  // Missing required field.
  r = Call(
      "{\"op\":\"ingest\",\"events\":[{\"subject\":0,"
      "\"timestamp\":100,\"action\":\"read\"}]}");
  EXPECT_EQ(r.GetString("code"), "SRV-E007");

  // Bad action name.
  r = Call(
      "{\"op\":\"ingest\",\"events\":[{\"subject\":0,\"object\":1,"
      "\"timestamp\":100,\"action\":\"frob\"}]}");
  EXPECT_EQ(r.GetString("code"), "SRV-E007");

  // Unknown object id: rejected by validation, not appended.
  r = Call(
      "{\"op\":\"ingest\",\"events\":[{\"subject\":999999,\"object\":1,"
      "\"timestamp\":100,\"action\":\"read\"}]}");
  EXPECT_EQ(r.GetString("code"), "SRV-E007");

  // Not an array.
  r = Call("{\"op\":\"ingest\",\"events\":{}}");
  EXPECT_EQ(r.GetString("code"), "SRV-E007");
}

TEST_F(ProtocolTest, ShutdownSetsFlagAndAnswersFirst) {
  bool shutdown = false;
  const JsonValue r = Call("{\"op\":\"shutdown\"}", &shutdown);
  EXPECT_TRUE(shutdown);
  ASSERT_TRUE(r.GetBool("ok"));
  EXPECT_TRUE(r.GetBool("draining"));

  // Once the manager drains, opens are refused with the drain code.
  manager_->Stop();
  const JsonValue refused =
      Call("{\"op\":\"open\",\"bdl\":\"backward ip x[dst_ip = \\\"185.220.101.45\\\"] -> *\"}");
  EXPECT_EQ(refused.GetString("code"), "SRV-E008");
}

}  // namespace
}  // namespace aptrace::service
