#include <gtest/gtest.h>

#include <sstream>

#include "graph/dep_graph.h"
#include "graph/dot_writer.h"

namespace aptrace {
namespace {

Event Ev(EventId id, ObjectId subject, ObjectId object, TimeMicros t,
         ActionType action) {
  Event e;
  e.id = id;
  e.subject = subject;
  e.object = object;
  e.timestamp = t;
  e.action = action;
  e.direction = ActionDefaultDirection(action);
  return e;
}

// Object ids used symbolically; the graph never dereferences them.
constexpr ObjectId kIp = 1, kJava = 2, kExcel = 3, kAttach = 4, kOutlook = 5;

class DepGraphTest : public testing::Test {
 protected:
  void SetUp() override {
    graph_.SetStart(kIp);
    // Alert: java -> ip (connect).
    graph_.AddEventEdge(Ev(100, kJava, kIp, 50, ActionType::kConnect));
  }
  DepGraph graph_;
};

TEST_F(DepGraphTest, StartNodeProperties) {
  EXPECT_TRUE(graph_.HasNode(kIp));
  EXPECT_EQ(graph_.HopOf(kIp), 0);
  EXPECT_EQ(graph_.StateOf(kIp), 1);
  EXPECT_EQ(graph_.start(), kIp);
}

TEST_F(DepGraphTest, AddEventEdgeCreatesNodesAndHops) {
  EXPECT_TRUE(graph_.HasNode(kJava));
  EXPECT_EQ(graph_.HopOf(kJava), 1);  // discovered from the start
  EXPECT_EQ(graph_.NumNodes(), 2u);
  EXPECT_EQ(graph_.NumEdges(), 1u);

  // excel -> java (start event): excel is hop 2.
  auto res = graph_.AddEventEdge(Ev(101, kExcel, kJava, 40,
                                    ActionType::kStart));
  EXPECT_EQ(res, DepGraph::AddResult::kNewEdgeAndNode);
  EXPECT_EQ(graph_.HopOf(kExcel), 2);
  EXPECT_EQ(graph_.MaxHop(), 2);
}

TEST_F(DepGraphTest, DuplicateEdgeIgnored) {
  auto res = graph_.AddEventEdge(Ev(100, kJava, kIp, 50,
                                    ActionType::kConnect));
  EXPECT_EQ(res, DepGraph::AddResult::kDuplicate);
  EXPECT_EQ(graph_.NumEdges(), 1u);
}

TEST_F(DepGraphTest, ShortcutEdgeLowersHop) {
  graph_.AddEventEdge(Ev(101, kExcel, kJava, 40, ActionType::kStart));
  // excel reads attach: flow attach -> excel, so attach is hop 3.
  graph_.AddEventEdge(Ev(102, kExcel, kAttach, 30, ActionType::kRead));
  EXPECT_EQ(graph_.HopOf(kAttach), 3);
  // java also reads attach directly: flow attach -> java shortens attach
  // to hop 2.
  graph_.AddEventEdge(Ev(103, kJava, kAttach, 35, ActionType::kRead));
  EXPECT_EQ(graph_.HopOf(kAttach), 2);
}

TEST_F(DepGraphTest, AdjacencyListsTrackEdges) {
  graph_.AddEventEdge(Ev(101, kExcel, kJava, 40, ActionType::kStart));
  const auto& java = graph_.GetNode(kJava);
  EXPECT_EQ(java.in_edges.size(), 1u);   // excel -> java
  EXPECT_EQ(java.out_edges.size(), 1u);  // java -> ip
  const auto& edge = graph_.GetEdge(101);
  EXPECT_EQ(edge.src, kExcel);
  EXPECT_EQ(edge.dst, kJava);
}

TEST_F(DepGraphTest, StatesSetAndCleared) {
  graph_.AddEventEdge(Ev(101, kExcel, kJava, 40, ActionType::kStart));
  graph_.SetState(kJava, 2);
  graph_.SetState(kExcel, 3);
  graph_.ClearStates();
  EXPECT_EQ(graph_.StateOf(kIp), 1);  // start keeps state 1
  EXPECT_EQ(graph_.StateOf(kJava), 0);
  EXPECT_EQ(graph_.StateOf(kExcel), 0);
}

TEST_F(DepGraphTest, RemoveNodesIfCascadesEdges) {
  graph_.AddEventEdge(Ev(101, kExcel, kJava, 40, ActionType::kStart));
  graph_.AddEventEdge(Ev(102, kExcel, kAttach, 30, ActionType::kRead));
  graph_.AddEventEdge(Ev(103, kOutlook, kAttach, 20, ActionType::kWrite));
  EXPECT_EQ(graph_.NumNodes(), 5u);
  EXPECT_EQ(graph_.NumEdges(), 4u);

  const size_t removed =
      graph_.RemoveNodesIf([](ObjectId id) { return id == kExcel; });
  EXPECT_EQ(removed, 1u);
  EXPECT_FALSE(graph_.HasNode(kExcel));
  EXPECT_FALSE(graph_.HasEdge(101));
  EXPECT_FALSE(graph_.HasEdge(102));
  EXPECT_TRUE(graph_.HasEdge(103));  // outlook -> attach survives
  // Neighbors' adjacency lists no longer reference the removed edges.
  EXPECT_TRUE(graph_.GetNode(kJava).in_edges.empty());
  EXPECT_EQ(graph_.GetNode(kAttach).in_edges.size(), 1u);
}

TEST_F(DepGraphTest, StartNodeIsNeverRemoved) {
  const size_t removed = graph_.RemoveNodesIf([](ObjectId) { return true; });
  EXPECT_EQ(removed, 1u);  // only java
  EXPECT_TRUE(graph_.HasNode(kIp));
}

TEST(DotWriterTest, EmitsNodesEdgesAndAlertHighlight) {
  ObjectCatalog catalog;
  const HostId h = catalog.InternHost("desktop1");
  const ObjectId proc = catalog.AddProcess(h, {.exename = "java.exe",
                                               .pid = 1});
  const ObjectId ip = catalog.AddIp(h, {.src_ip = "10.0.0.1",
                                        .dst_ip = "1.2.3.4"});
  DepGraph graph;
  graph.SetStart(ip);
  Event alert = Ev(7, proc, ip, 1000, ActionType::kConnect);
  graph.AddEventEdge(alert);

  std::ostringstream os;
  DotOptions options;
  options.alert_event = 7;
  WriteDot(graph, catalog, os, options);
  const std::string dot = os.str();

  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("java.exe"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);   // ip node
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);   // process node
  EXPECT_NE(dot.find("color=red"), std::string::npos);       // alert edge
  EXPECT_NE(dot.find("connect"), std::string::npos);         // edge label
}

TEST(DotWriterTest, EscapesQuotesInLabels) {
  ObjectCatalog catalog;
  const HostId h = catalog.InternHost("h");
  const ObjectId f = catalog.AddFile(h, {.path = "/tmp/we\"ird"});
  DepGraph graph;
  graph.SetStart(f);
  std::ostringstream os;
  WriteDot(graph, catalog, os);
  EXPECT_NE(os.str().find("we\\\"ird"), std::string::npos);
}

TEST(DotWriterTest, FileWriteFailsGracefully) {
  ObjectCatalog catalog;
  DepGraph graph;
  const Status s =
      WriteDotFile(graph, catalog, "/nonexistent-dir/out.dot", {});
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace aptrace
