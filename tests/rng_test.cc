#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace aptrace {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(17);
  bool lo_seen = false;
  bool hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) lo_seen = true;
    if (v == 3) hi_seen = true;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(19);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgesAndMean) {
  Rng rng(23);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(29);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Exponential(5.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000, 5.0, 0.25);
}

TEST(RngTest, ZipfIsHeavyTailed) {
  Rng rng(31);
  const uint64_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t r = rng.Zipf(n, 1.1);
    ASSERT_LT(r, n);
    counts[r]++;
  }
  // Rank 0 should dominate the median rank by a large factor.
  EXPECT_GT(counts[0], counts[n / 2] * 5);
  // And the head should carry a large share of the mass.
  int head = 0;
  for (int i = 0; i < 10; ++i) head += counts[i];
  EXPECT_GT(head, 50000 / 2);
}

TEST(RngTest, ZipfHandlesExponentOne) {
  // Regression: s = 1.0 used to divide by zero in the normalizer and
  // always return n - 1.
  Rng rng(33);
  const uint64_t n = 64;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.Zipf(n, 1.0)]++;
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[0], counts[n - 1]);
  EXPECT_LT(counts[n - 1], 20000 / 4);  // not everything at the last rank
}

TEST(RngTest, GaussianMoments) {
  Rng rng(37);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(41);
  std::vector<double> w{1, 0, 3};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.WeightedIndex(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 10000.0, 0.75, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng child = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == child.Next()) same++;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace aptrace
