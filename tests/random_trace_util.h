// Shared randomized-trace generator and reference oracles for the
// executor property and differential tests. Header-only; requires gtest
// (Spec/Ctx report compile failures through EXPECT).

#ifndef APTRACE_TESTS_RANDOM_TRACE_UTIL_H_
#define APTRACE_TESTS_RANDOM_TRACE_UTIL_H_

#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdl/analyzer.h"
#include "core/context.h"
#include "core/executor.h"
#include "util/rng.h"

namespace aptrace {

struct RandomTrace {
  std::unique_ptr<EventStore> store;
  std::vector<Event> events;
  Event alert;
};

/// A soup of random events over a handful of processes, files, and
/// sockets; the alert is a random event with a process flow source (so
/// there is something to explore). The optional backend override pins
/// the physical layout (default: APTRACE_BACKEND env var, else row) and
/// `shards` the shard count (default: APTRACE_SHARDS env var, else 1);
/// the generated events are identical in every configuration. `tweak`
/// (when set) edits the store options last — the distributed fabric
/// tests use it to inject remote shard-backend factories.
inline RandomTrace MakeRandomTrace(
    uint64_t seed, size_t num_events,
    StorageBackendKind backend = DefaultStorageBackendKind(),
    size_t shards = DefaultShardCount(),
    const std::function<void(EventStoreOptions&)>& tweak = nullptr) {
  RandomTrace t;
  EventStoreOptions options;
  options.partition_micros = 500;  // many partitions
  options.segment_rows = 64;       // many columnar segments, likewise
  options.cost_model = CostModel::Free();
  options.backend = backend;
  options.shards = shards;
  if (tweak) tweak(options);
  t.store = std::make_unique<EventStore>(options);
  auto& c = t.store->catalog();
  Rng rng(seed);

  const HostId h1 = c.InternHost("h1");
  const HostId h2 = c.InternHost("h2");
  std::vector<ObjectId> procs, files, socks;
  const char* names[] = {"app.exe", "svc.exe", "sh", "helper.exe"};
  for (int i = 0; i < 8; ++i) {
    procs.push_back(c.AddProcess(i % 2 ? h1 : h2,
                                 {.exename = names[rng.Uniform(4)],
                                  .pid = 100 + i}));
  }
  for (int i = 0; i < 14; ++i) {
    const bool dll = rng.Bernoulli(0.3);
    files.push_back(c.AddFile(
        i % 2 ? h1 : h2,
        {.path = (dll ? "/lib/l" : "/data/f") + std::to_string(i) +
                 (dll ? ".dll" : ".dat")}));
  }
  for (int i = 0; i < 5; ++i) {
    socks.push_back(c.AddIp(h1, {.src_ip = "10.0.0.1",
                                 .dst_ip = "198.18.0." + std::to_string(i)}));
  }

  for (size_t i = 0; i < num_events; ++i) {
    Event e;
    e.subject = procs[rng.Uniform(procs.size())];
    const double pick = rng.NextDouble();
    if (pick < 0.55) {
      e.object = files[rng.Uniform(files.size())];
      e.action = rng.Bernoulli(0.5) ? ActionType::kRead : ActionType::kWrite;
    } else if (pick < 0.75) {
      ObjectId other = procs[rng.Uniform(procs.size())];
      if (other == e.subject) other = procs[(other + 1) % procs.size()];
      e.object = other;
      e.action = rng.Bernoulli(0.5) ? ActionType::kStart : ActionType::kWrite;
    } else {
      e.object = socks[rng.Uniform(socks.size())];
      e.action = rng.Bernoulli(0.5) ? ActionType::kConnect
                                    : ActionType::kAccept;
    }
    e.direction = ActionDefaultDirection(e.action);
    e.timestamp = static_cast<TimeMicros>(rng.Uniform(20000));
    e.host = c.Get(e.subject).host();
    e.id = t.store->Append(e);
    t.events.push_back(e);
  }
  t.store->Seal();

  // Alert: the latest event whose flow source is a process (gives the
  // closure a chance to be non-trivial).
  t.alert = t.events.front();
  TimeMicros best = -1;
  for (const Event& e : t.events) {
    if (c.Get(e.FlowSource()).is_process() && e.timestamp > best) {
      best = e.timestamp;
      t.alert = e;
    }
  }
  return t;
}

/// Independent reference: a direct transcription of the paper's backward
/// dependency definition (Section II) with per-object exploration
/// watermarks — no windows, no coverage machinery, no priority queue.
inline std::set<EventId> ReferenceClosure(
    const RandomTrace& t,
    const std::function<bool(ObjectId)>& object_allowed) {
  std::set<EventId> closure{t.alert.id};
  std::unordered_map<ObjectId, TimeMicros> watermark;
  std::deque<ObjectId> queue;

  const auto want = [&](ObjectId o, TimeMicros until) {
    auto [it, inserted] = watermark.try_emplace(o, until);
    if (!inserted) {
      if (until <= it->second) return;
      it->second = until;
    }
    queue.push_back(o);
  };
  want(t.alert.FlowSource(), t.alert.timestamp);

  std::unordered_map<ObjectId, TimeMicros> covered;
  while (!queue.empty()) {
    const ObjectId o = queue.front();
    queue.pop_front();
    if (!object_allowed(o)) continue;
    const TimeMicros until = watermark[o];
    TimeMicros& done = covered[o];
    if (until <= done) continue;
    for (const Event& e : t.events) {
      if (e.FlowDest() != o) continue;
      if (e.timestamp < done || e.timestamp >= until) continue;
      if (!object_allowed(e.FlowSource())) continue;
      closure.insert(e.id);
      want(e.FlowSource(), e.timestamp);
    }
    done = until;
  }
  return closure;
}

inline std::set<EventId> EdgeSet(const DepGraph& g) {
  std::set<EventId> out;
  g.ForEachEdge([&](const DepGraph::Edge& e) { out.insert(e.event); });
  return out;
}

inline bdl::TrackingSpec Spec(const std::string& text) {
  auto spec = bdl::CompileBdl(text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return spec.ok() ? std::move(spec.value()) : bdl::TrackingSpec{};
}

inline TrackingContext Ctx(const RandomTrace& t, const std::string& script,
                           int scan_threads = 1) {
  SimClock clock;
  auto ctx = ResolveContext(*t.store, Spec(script), &clock, t.alert);
  EXPECT_TRUE(ctx.ok()) << ctx.status();
  TrackingContext out = ctx.ok() ? std::move(ctx.value()) : TrackingContext{};
  out.scan_threads = scan_threads;
  return out;
}

inline std::string UnconstrainedScript(const RandomTrace& t) {
  const ObjectType type = t.store->catalog().Get(t.alert.FlowDest()).type();
  return std::string("backward ") + ObjectTypeName(type) + " x[] -> *";
}

}  // namespace aptrace

#endif  // APTRACE_TESTS_RANDOM_TRACE_UTIL_H_
