// Differential oracle, service axis: N >= 4 tracking sessions served
// concurrently by the daemon's SessionManager must each produce a final
// graph byte-identical to a sequential CLI-style run of the same spec —
// across session scan-thread counts {1, 4} and both storage backends.
// The cross-session fair-share scheduler interleaves the sessions'
// quanta arbitrarily; none of that interleaving may leak into results.

#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "dist/fleet.h"
#include "dist/remote_backend.h"
#include "dist/shard_client.h"
#include "graph/json_writer.h"
#include "service/session_manager.h"
#include "storage/file_env.h"
#include "storage/recovery.h"
#include "storage/trace_io.h"
#include "storage/wal.h"
#include "tests/random_trace_util.h"
#include "util/clock.h"

namespace aptrace::service {
namespace {

/// Sequential reference: plain Session start/step/finish, the exact code
/// path `aptrace run` drives.
std::string DirectRunGraph(const RandomTrace& t, const std::string& script,
                           int scan_threads) {
  SimClock clock;
  SessionOptions options;
  options.scan_threads = scan_threads;
  Session session(t.store.get(), &clock, options);
  EXPECT_TRUE(session.Start(script, t.alert).ok());
  auto reason = session.Step();
  EXPECT_TRUE(reason.ok()) << reason.status();
  EXPECT_EQ(reason.value(), StopReason::kCompleted);
  EXPECT_TRUE(session.Finish(/*prune_to_matched_paths=*/true).ok());
  std::ostringstream os;
  WriteGraphJson(session.graph(), t.store->catalog(), os);
  return os.str();
}

/// Spec variants exercising the order-sensitive paths (mirrors the
/// executor differential test's variant list).
std::vector<std::string> SpecVariants(const RandomTrace& t) {
  const std::string base = UnconstrainedScript(t);
  return {
      base,
      base + " where file.path != \"*.dll\"",
      base + " where hop <= 3",
      base + " where proc.exename != \"svc.exe\" and hop <= 5",
  };
}

class ServiceDifferential
    : public testing::TestWithParam<StorageBackendKind> {};

TEST_P(ServiceDifferential, ConcurrentSessionsBitIdenticalToSequential) {
  const StorageBackendKind backend = GetParam();
  for (const int scan_threads : {1, 4}) {
    const RandomTrace t = MakeRandomTrace(97, 600, backend);
    const std::vector<std::string> variants = SpecVariants(t);

    // Sequential references first (one at a time, nothing shared).
    std::vector<std::string> expected;
    expected.reserve(variants.size());
    for (const std::string& script : variants) {
      expected.push_back(DirectRunGraph(t, script, scan_threads));
    }

    // Then all variants live in the daemon at once, interleaved by the
    // fair-share scheduler onto one shared worker pool.
    ServiceLimits limits;
    limits.quantum_windows = 2;  // force many interleavings
    limits.scan_threads = 4;
    SessionManager manager(t.store.get(), limits);
    std::vector<uint64_t> ids;
    for (const std::string& script : variants) {
      OpenOptions opts;
      opts.start_event = t.alert.id;
      opts.scan_threads = scan_threads;
      auto id = manager.Open(script, opts);
      ASSERT_TRUE(id.ok()) << id.status();
      ids.push_back(id.value());
    }
    ASSERT_TRUE(manager.WaitAllTerminal(60'000'000));

    for (size_t i = 0; i < ids.size(); ++i) {
      auto poll = manager.Poll(ids[i], 0, 0);
      ASSERT_TRUE(poll.ok());
      EXPECT_EQ(poll->state, SessionState::kDone)
          << "variant " << i << ": " << poll->detail;
      auto graph = manager.GraphJson(ids[i]);
      ASSERT_TRUE(graph.ok());
      EXPECT_EQ(graph.value(), expected[i])
          << "variant " << i << " threads=" << scan_threads << " backend="
          << StorageBackendName(backend);
    }
  }
}

// Shard axis: concurrent daemon sessions over a store partitioned into
// {2, 4, 8} shards must serve graphs byte-identical to sequential runs
// over the monolithic (shards = 1) store, at session scan-thread counts
// {1, 4} — and the /sessions per-shard rows must sum exactly to the
// store totals (the single-snapshot-lock contract, docs/sharding.md).
TEST_P(ServiceDifferential, ShardedSessionsBitIdenticalToMonolithic) {
  const StorageBackendKind backend = GetParam();
  for (const size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    const RandomTrace mono = MakeRandomTrace(97, 600, backend, 1);
    const RandomTrace t = MakeRandomTrace(97, 600, backend, shards);
    ASSERT_EQ(t.store->shard_count(), shards);
    const std::vector<std::string> variants = SpecVariants(t);
    ASSERT_EQ(SpecVariants(mono), variants);

    for (const int scan_threads : {1, 4}) {
      std::vector<std::string> expected;
      expected.reserve(variants.size());
      for (const std::string& script : variants) {
        expected.push_back(DirectRunGraph(mono, script, scan_threads));
      }

      ServiceLimits limits;
      limits.quantum_windows = 2;
      limits.scan_threads = 4;
      SessionManager manager(t.store.get(), limits);
      std::vector<uint64_t> ids;
      for (const std::string& script : variants) {
        OpenOptions opts;
        opts.start_event = t.alert.id;
        opts.scan_threads = scan_threads;
        auto id = manager.Open(script, opts);
        ASSERT_TRUE(id.ok()) << id.status();
        ids.push_back(id.value());
      }
      ASSERT_TRUE(manager.WaitAllTerminal(60'000'000));

      for (size_t i = 0; i < ids.size(); ++i) {
        auto graph = manager.GraphJson(ids[i]);
        ASSERT_TRUE(graph.ok());
        EXPECT_EQ(graph.value(), expected[i])
            << "variant " << i << " shards=" << shards
            << " threads=" << scan_threads << " backend="
            << StorageBackendName(backend);
      }

      // Per-shard rows (the /sessions payload) reconcile exactly with
      // the store totals. `scans` is per-touched-shard and so sums to
      // >= the store's query count.
      const std::vector<StoreShardRow> rows = manager.StoreShardRows();
      EXPECT_EQ(rows.size(), shards);
      const StoreStats total = t.store->stats();
      uint64_t matched = 0, filtered = 0, probed = 0, seeked = 0,
               pruned = 0, resident = 0, scans = 0;
      for (const StoreShardRow& row : rows) {
        matched += row.rows_matched;
        filtered += row.rows_filtered;
        probed += row.partitions_probed;
        seeked += row.partitions_seeked;
        pruned += row.segments_pruned;
        resident += row.resident_rows;
        scans += row.scans;
      }
      EXPECT_EQ(matched, total.rows_matched);
      EXPECT_EQ(filtered, total.rows_filtered);
      EXPECT_EQ(probed, total.partitions_probed);
      EXPECT_EQ(seeked, total.partitions_seeked);
      EXPECT_EQ(pruned, total.segments_pruned);
      EXPECT_EQ(resident, t.store->NumEvents());
      EXPECT_GE(scans, total.queries);
      manager.StopAndJoin();
    }
  }
}

// Durability axis: ingest through the durable daemon (WAL + background
// tail sealing), crash without any drain snapshot, recover the data dir,
// and serve sessions over the recovered store — every graph must be
// byte-identical to a sequential run over the store that never crashed,
// across both backends and session scan-thread counts {1, 4}.
TEST_P(ServiceDifferential, DurableIngestCrashRecoverServesIdenticalGraphs) {
  const StorageBackendKind backend = GetParam();
  FileEnv* env = FileEnv::Posix();

  // Uninterrupted reference: the ingested tail lands directly in the
  // store, then each spec variant runs sequentially.
  RandomTrace t = MakeRandomTrace(101, 500, backend);
  const std::string trace_path =
      ::testing::TempDir() + "/svc_durable_" +
      std::string(StorageBackendName(backend)) + "." +
      std::to_string(::getpid()) + ".trace";
  ASSERT_TRUE(
      SaveTraceFile(*t.store, trace_path, TraceFormat::kBinaryV2).ok());

  Rng rng(202);
  std::vector<std::vector<Event>> batches;
  for (size_t b = 0; b < 6; ++b) {
    std::vector<Event> batch;
    const size_t n = rng.Uniform(4) + 2;
    for (size_t i = 0; i < n; ++i) {
      Event e = t.events[rng.Uniform(t.events.size())];
      e.id = kInvalidEventId;
      e.timestamp += static_cast<TimeMicros>(60000 + b * 53 + i);
      batch.push_back(e);
    }
    batches.push_back(std::move(batch));
  }
  for (const auto& batch : batches) {
    for (Event e : batch) t.store->Append(e);
  }
  const std::string script = UnconstrainedScript(t);
  std::vector<std::string> expected;
  for (const int threads : {1, 4}) {
    expected.push_back(DirectRunGraph(t, script, threads));
  }

  // Durable daemon: recover the dir (first boot: fallback trace), accept
  // every batch through the acked ingest path with background sealing
  // enabled, then "crash" — no drain snapshot, plus a torn half-record
  // as if the kill landed mid-append.
  const std::string dir = ::testing::TempDir() + "/svc_durable_dir_" +
                          std::string(StorageBackendName(backend)) + "." +
                          std::to_string(::getpid());
  ASSERT_TRUE(env->CreateDir(dir).ok());
  for (const char* leftover : {"wal.log", "MANIFEST"}) {
    const std::string path = dir + std::string("/") + leftover;
    if (env->FileExists(path)) {
      ASSERT_TRUE(env->RemoveFile(path).ok());
    }
  }
  EventStoreOptions options;
  options.partition_micros = 500;
  options.segment_rows = 64;
  options.cost_model = CostModel::Free();
  options.backend = backend;
  {
    auto recovered = OpenDataDir(env, dir, trace_path, options);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    auto wal = WalWriter::Open(env, dir + "/wal.log",
                               recovered->wal_valid_bytes,
                               recovered->next_seq);
    ASSERT_TRUE(wal.ok()) << wal.status();

    ServiceLimits limits;
    limits.seal_tail_rows = 8;  // background seals mid-stream
    SessionManager manager(recovered->store.get(), limits);
    manager.EnableDurability(wal->get(), recovered->next_seq - 1);
    for (size_t b = 0; b < batches.size(); ++b) {
      auto ack = manager.Ingest(batches[b]);
      ASSERT_TRUE(ack.ok()) << ack.status();
      EXPECT_EQ(ack.value().wal_seq, b + 1);
    }
    const TimeMicros deadline = MonotonicNowMicros() + 60'000'000;
    while (manager.stats().wal_applied_through < batches.size() &&
           MonotonicNowMicros() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(manager.stats().wal_applied_through, batches.size());
    manager.StopAndJoin();
    // No SnapshotDataDir: the WAL alone carries the acked batches.
  }
  {
    auto f = env->OpenForAppend(dir + "/wal.log");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(EncodeWalRecord(99, batches[0]).substr(0, 9))
                    .ok());
    ASSERT_TRUE((*f)->Close().ok());
  }

  // Restarted daemon: recovery replays the WAL, repairs the torn tail,
  // and the served graphs are byte-identical to the never-crashed run.
  auto recovered = OpenDataDir(env, dir, trace_path, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->wal.batches_applied, batches.size());
  EXPECT_GT(recovered->wal.truncated_bytes, 0u);
  EXPECT_NE(recovered->wal.diagnostic.find("STO-E00"), std::string::npos)
      << recovered->wal.diagnostic;

  SessionManager manager(recovered->store.get(), ServiceLimits{});
  size_t which = 0;
  for (const int threads : {1, 4}) {
    OpenOptions opts;
    opts.start_event = t.alert.id;
    opts.scan_threads = threads;
    auto id = manager.Open(script, opts);
    ASSERT_TRUE(id.ok()) << id.status();
    ASSERT_TRUE(manager.WaitAllTerminal(60'000'000));
    auto graph = manager.GraphJson(id.value());
    ASSERT_TRUE(graph.ok()) << graph.status();
    EXPECT_EQ(graph.value(), expected[which])
        << "threads=" << threads << " backend="
        << StorageBackendName(backend);
    which++;
  }
  manager.StopAndJoin();
}

// Durability axis at shards > 1: the same ingest -> background seal ->
// crash -> recover flow, but with the store partitioned 4 ways. The WAL
// carries no shard information — replay routes every acknowledged batch
// through the shard map on boot — and the recovered daemon must serve
// graphs byte-identical to a sequential run over the monolithic store
// that never crashed.
TEST_P(ServiceDifferential, ShardedDurableIngestCrashRecover) {
  const StorageBackendKind backend = GetParam();
  FileEnv* env = FileEnv::Posix();
  constexpr size_t kShards = 4;

  RandomTrace mono = MakeRandomTrace(103, 500, backend, 1);
  RandomTrace t = MakeRandomTrace(103, 500, backend, kShards);
  const std::string trace_path =
      ::testing::TempDir() + "/svc_shard_durable_" +
      std::string(StorageBackendName(backend)) + "." +
      std::to_string(::getpid()) + ".trace";
  ASSERT_TRUE(
      SaveTraceFile(*t.store, trace_path, TraceFormat::kBinaryV2).ok());

  Rng rng(204);
  std::vector<std::vector<Event>> batches;
  for (size_t b = 0; b < 6; ++b) {
    std::vector<Event> batch;
    const size_t n = rng.Uniform(4) + 2;
    for (size_t i = 0; i < n; ++i) {
      Event e = t.events[rng.Uniform(t.events.size())];
      e.id = kInvalidEventId;
      e.timestamp += static_cast<TimeMicros>(60000 + b * 59 + i);
      batch.push_back(e);
    }
    batches.push_back(std::move(batch));
  }
  for (const auto& batch : batches) {
    for (Event e : batch) mono.store->Append(e);
  }
  const std::string script = UnconstrainedScript(mono);
  std::vector<std::string> expected;
  for (const int threads : {1, 4}) {
    expected.push_back(DirectRunGraph(mono, script, threads));
  }

  const std::string dir = ::testing::TempDir() + "/svc_shard_durable_dir_" +
                          std::string(StorageBackendName(backend)) + "." +
                          std::to_string(::getpid());
  ASSERT_TRUE(env->CreateDir(dir).ok());
  for (const char* leftover : {"wal.log", "MANIFEST"}) {
    const std::string path = dir + std::string("/") + leftover;
    if (env->FileExists(path)) {
      ASSERT_TRUE(env->RemoveFile(path).ok());
    }
  }
  EventStoreOptions options;
  options.partition_micros = 500;
  options.segment_rows = 64;
  options.cost_model = CostModel::Free();
  options.backend = backend;
  options.shards = kShards;
  {
    auto recovered = OpenDataDir(env, dir, trace_path, options);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    ASSERT_EQ(recovered->store->shard_count(), kShards);
    auto wal = WalWriter::Open(env, dir + "/wal.log",
                               recovered->wal_valid_bytes,
                               recovered->next_seq);
    ASSERT_TRUE(wal.ok()) << wal.status();

    ServiceLimits limits;
    limits.seal_tail_rows = 8;  // background seals fan out to shards
    SessionManager manager(recovered->store.get(), limits);
    manager.EnableDurability(wal->get(), recovered->next_seq - 1);
    for (size_t b = 0; b < batches.size(); ++b) {
      auto ack = manager.Ingest(batches[b]);
      ASSERT_TRUE(ack.ok()) << ack.status();
    }
    const TimeMicros deadline = MonotonicNowMicros() + 60'000'000;
    while (manager.stats().wal_applied_through < batches.size() &&
           MonotonicNowMicros() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(manager.stats().wal_applied_through, batches.size());
    manager.StopAndJoin();
  }
  {
    auto f = env->OpenForAppend(dir + "/wal.log");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(EncodeWalRecord(99, batches[0]).substr(0, 9))
                    .ok());
    ASSERT_TRUE((*f)->Close().ok());
  }

  auto recovered = OpenDataDir(env, dir, trace_path, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->wal.batches_applied, batches.size());
  EXPECT_EQ(recovered->store->shard_count(), kShards);

  SessionManager manager(recovered->store.get(), ServiceLimits{});
  size_t which = 0;
  for (const int threads : {1, 4}) {
    OpenOptions opts;
    opts.start_event = t.alert.id;
    opts.scan_threads = threads;
    auto id = manager.Open(script, opts);
    ASSERT_TRUE(id.ok()) << id.status();
    ASSERT_TRUE(manager.WaitAllTerminal(60'000'000));
    auto graph = manager.GraphJson(id.value());
    ASSERT_TRUE(graph.ok()) << graph.status();
    EXPECT_EQ(graph.value(), expected[which])
        << "threads=" << threads << " backend="
        << StorageBackendName(backend);
    which++;
  }
  manager.StopAndJoin();
}

// Distributed axis: the same concurrent-session oracle, but the store's
// shards are RemoteShardBackends talking to a real 4-daemon shardd fleet
// (docs/distribution.md). Every daemon-served graph must stay
// byte-identical to a sequential run over the monolithic in-process
// store, at session scan-thread counts {1, 4}, both backends.
TEST_P(ServiceDifferential, DistributedSessionsBitIdenticalToMonolithic) {
  const StorageBackendKind backend = GetParam();
  dist::FleetOptions fleet_options;
  fleet_options.shardd_bin = APTRACE_SHARDD_BIN;
  fleet_options.shards = 4;
  fleet_options.backend = backend;
  // Match MakeRandomTrace's layout knobs so the remote shards build the
  // same partition structure as the in-process reference.
  if (backend == StorageBackendKind::kColumnar) {
    fleet_options.extra_args = {"--segment-rows=64"};
  } else {
    fleet_options.extra_args = {"--partition-micros=500"};
  }
  auto fleet = dist::ShardFleet::Launch(fleet_options);
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  std::vector<dist::ShardEndpoint> endpoints;
  for (const dist::ShardProcess& p : fleet.value()->shards()) {
    auto ep = dist::ParseShardEndpoint(p.endpoint);
    ASSERT_TRUE(ep.ok()) << ep.status();
    endpoints.push_back(std::move(ep).value());
  }

  const RandomTrace mono = MakeRandomTrace(97, 400, backend, 1);
  const RandomTrace t = MakeRandomTrace(
      97, 400, backend, endpoints.size(),
      [&endpoints](EventStoreOptions& options) {
        options.dist_fanout_threads = endpoints.size();
        options.shard_backend_factory =
            [&endpoints](size_t shard, const EventStoreOptions& o)
            -> std::unique_ptr<StorageBackend> {
          auto client = std::make_shared<dist::ShardClient>(
              endpoints[shard], static_cast<uint32_t>(shard), o.backend);
          return std::make_unique<dist::RemoteShardBackend>(
              std::move(client), o.backend, o.cost_model);
        };
      });
  const std::vector<std::string> variants = SpecVariants(mono);

  for (const int scan_threads : {1, 4}) {
    std::vector<std::string> expected;
    expected.reserve(variants.size());
    for (const std::string& script : variants) {
      expected.push_back(DirectRunGraph(mono, script, scan_threads));
    }

    ServiceLimits limits;
    limits.quantum_windows = 2;
    limits.scan_threads = 4;
    SessionManager manager(t.store.get(), limits);
    std::vector<uint64_t> ids;
    for (const std::string& script : variants) {
      OpenOptions opts;
      opts.start_event = t.alert.id;
      opts.scan_threads = scan_threads;
      auto id = manager.Open(script, opts);
      ASSERT_TRUE(id.ok()) << id.status();
      ids.push_back(id.value());
    }
    ASSERT_TRUE(manager.WaitAllTerminal(120'000'000));

    for (size_t i = 0; i < ids.size(); ++i) {
      auto poll = manager.Poll(ids[i], 0, 0);
      ASSERT_TRUE(poll.ok());
      EXPECT_EQ(poll->state, SessionState::kDone)
          << "variant " << i << ": " << poll->detail;
      auto graph = manager.GraphJson(ids[i]);
      ASSERT_TRUE(graph.ok());
      EXPECT_EQ(graph.value(), expected[i])
          << "variant " << i << " threads=" << scan_threads
          << " backend=" << StorageBackendName(backend);
    }
    manager.StopAndJoin();
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ServiceDifferential,
                         testing::Values(StorageBackendKind::kRow,
                                         StorageBackendKind::kColumnar),
                         [](const auto& info) {
                           return std::string(
                               StorageBackendName(info.param));
                         });

}  // namespace
}  // namespace aptrace::service
