// Differential oracle, service axis: N >= 4 tracking sessions served
// concurrently by the daemon's SessionManager must each produce a final
// graph byte-identical to a sequential CLI-style run of the same spec —
// across session scan-thread counts {1, 4} and both storage backends.
// The cross-session fair-share scheduler interleaves the sessions'
// quanta arbitrarily; none of that interleaving may leak into results.

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.h"
#include "graph/json_writer.h"
#include "service/session_manager.h"
#include "tests/random_trace_util.h"

namespace aptrace::service {
namespace {

/// Sequential reference: plain Session start/step/finish, the exact code
/// path `aptrace run` drives.
std::string DirectRunGraph(const RandomTrace& t, const std::string& script,
                           int scan_threads) {
  SimClock clock;
  SessionOptions options;
  options.scan_threads = scan_threads;
  Session session(t.store.get(), &clock, options);
  EXPECT_TRUE(session.Start(script, t.alert).ok());
  auto reason = session.Step();
  EXPECT_TRUE(reason.ok()) << reason.status();
  EXPECT_EQ(reason.value(), StopReason::kCompleted);
  EXPECT_TRUE(session.Finish(/*prune_to_matched_paths=*/true).ok());
  std::ostringstream os;
  WriteGraphJson(session.graph(), t.store->catalog(), os);
  return os.str();
}

/// Spec variants exercising the order-sensitive paths (mirrors the
/// executor differential test's variant list).
std::vector<std::string> SpecVariants(const RandomTrace& t) {
  const std::string base = UnconstrainedScript(t);
  return {
      base,
      base + " where file.path != \"*.dll\"",
      base + " where hop <= 3",
      base + " where proc.exename != \"svc.exe\" and hop <= 5",
  };
}

class ServiceDifferential
    : public testing::TestWithParam<StorageBackendKind> {};

TEST_P(ServiceDifferential, ConcurrentSessionsBitIdenticalToSequential) {
  const StorageBackendKind backend = GetParam();
  for (const int scan_threads : {1, 4}) {
    const RandomTrace t = MakeRandomTrace(97, 600, backend);
    const std::vector<std::string> variants = SpecVariants(t);

    // Sequential references first (one at a time, nothing shared).
    std::vector<std::string> expected;
    expected.reserve(variants.size());
    for (const std::string& script : variants) {
      expected.push_back(DirectRunGraph(t, script, scan_threads));
    }

    // Then all variants live in the daemon at once, interleaved by the
    // fair-share scheduler onto one shared worker pool.
    ServiceLimits limits;
    limits.quantum_windows = 2;  // force many interleavings
    limits.scan_threads = 4;
    SessionManager manager(t.store.get(), limits);
    std::vector<uint64_t> ids;
    for (const std::string& script : variants) {
      OpenOptions opts;
      opts.start_event = t.alert.id;
      opts.scan_threads = scan_threads;
      auto id = manager.Open(script, opts);
      ASSERT_TRUE(id.ok()) << id.status();
      ids.push_back(id.value());
    }
    ASSERT_TRUE(manager.WaitAllTerminal(60'000'000));

    for (size_t i = 0; i < ids.size(); ++i) {
      auto poll = manager.Poll(ids[i], 0, 0);
      ASSERT_TRUE(poll.ok());
      EXPECT_EQ(poll->state, SessionState::kDone)
          << "variant " << i << ": " << poll->detail;
      auto graph = manager.GraphJson(ids[i]);
      ASSERT_TRUE(graph.ok());
      EXPECT_EQ(graph.value(), expected[i])
          << "variant " << i << " threads=" << scan_threads << " backend="
          << StorageBackendName(backend);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ServiceDifferential,
                         testing::Values(StorageBackendKind::kRow,
                                         StorageBackendKind::kColumnar),
                         [](const auto& info) {
                           return std::string(
                               StorageBackendName(info.param));
                         });

}  // namespace
}  // namespace aptrace::service
