// Streaming ingestion: events appended after Seal() are indexed
// incrementally, so live collectors can keep feeding a store that
// analyses run against (appends and queries interleave on one thread).

#include <gtest/gtest.h>

#include "core/engine.h"
#include "tests/test_trace.h"
#include "workload/trace_builder.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

Event Mk(ObjectId subject, ObjectId object, TimeMicros t, ActionType a,
         HostId host) {
  Event e;
  e.subject = subject;
  e.object = object;
  e.timestamp = t;
  e.action = a;
  e.direction = ActionDefaultDirection(a);
  e.host = host;
  return e;
}

TEST(StreamingTest, PostSealAppendsAreQueryable) {
  MiniTrace t = MakeMiniTrace();
  EventStore& store = *t.store;
  const size_t before = store.NumEvents();

  // A new write into the attachment arrives after sealing.
  const EventId id = store.Append(
      Mk(t.benign, t.attach, 95, ActionType::kWrite, t.host));
  EXPECT_EQ(id, before);
  EXPECT_EQ(store.MaxTime(), 95);

  size_t seen = 0;
  store.ScanDest(t.attach, 0, 1000, nullptr, [&](const Event& e) {
    if (e.id == id) seen++;
  });
  EXPECT_EQ(seen, 1u);
  // ScanRange and ScanSrc see it too.
  seen = 0;
  store.ScanRange(95, 96, nullptr, [&](const Event&) { seen++; });
  EXPECT_EQ(seen, 1u);
  seen = 0;
  store.ScanSrc(t.benign, 0, 1000, nullptr,
                [&](const Event& e) { seen += e.id == id; });
  EXPECT_EQ(seen, 1u);
}

TEST(StreamingTest, OutOfOrderAppendKeepsIndexSorted) {
  MiniTrace t = MakeMiniTrace();
  EventStore& store = *t.store;
  // Insert an event with a timestamp in the middle of existing history.
  store.Append(Mk(t.benign, t.attach, 33, ActionType::kWrite, t.host));
  std::vector<TimeMicros> times;
  store.ScanDest(t.attach, 0, 1000, nullptr,
                 [&](const Event& e) { times.push_back(e.timestamp); });
  ASSERT_EQ(times.size(), 2u);  // the t=20 write and the new t=33 write
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

TEST(StreamingTest, NewEventsVisibleToSubsequentAnalyses) {
  MiniTrace t = MakeMiniTrace();
  EventStore& store = *t.store;
  const Event alert = store.Get(t.alert_event);

  // Baseline closure before the stream delivers more history.
  SimClock c1;
  Session before(&store, &c1);
  ASSERT_TRUE(before.Start("backward ip x[] -> *", alert).ok());
  ASSERT_TRUE(before.Step({}).ok());
  const size_t edges_before = before.graph().NumEdges();

  // The collector delivers a late-arriving event: another feed INTO
  // outlook before the alert (a second mail fetch at t=12).
  const ObjectId sock2 = store.catalog().AddIp(
      t.host, {.src_ip = "10.0.0.1", .dst_ip = "198.51.100.10"});
  store.Append(Mk(t.outlook, sock2, 12, ActionType::kAccept, t.host));

  SimClock c2;
  Session after(&store, &c2);
  ASSERT_TRUE(after.Start("backward ip x[] -> *", alert).ok());
  ASSERT_TRUE(after.Step({}).ok());
  EXPECT_EQ(after.graph().NumEdges(), edges_before + 1);
  EXPECT_TRUE(after.graph().HasNode(sock2));
}

TEST(StreamingTest, LiveTailDrivesForwardTracking) {
  // Forward tracking over a stream: taint the file, then keep appending
  // downstream activity and re-running — the taint set grows with the
  // stream.
  EventStore store(
      {.partition_micros = 50, .cost_model = CostModel::Free()});
  workload::TraceBuilder b(&store);
  const HostId h = b.Host("h");
  const ObjectId writer = b.Proc(h, "writer", 0);
  const ObjectId file = b.File(h, "/payload", 0);
  const EventId taint = b.Write(writer, file, 10, 100);
  store.Seal();

  auto run = [&] {
    SimClock clock;
    Session session(&store, &clock);
    EXPECT_TRUE(session.Start("forward file f[] -> *",
                              store.Get(taint)).ok());
    EXPECT_TRUE(session.Step({}).ok());
    return session.graph().NumNodes();
  };
  const size_t initial = run();

  const ObjectId reader = b.Proc(h, "reader", 0);
  b.Read(reader, file, 200, 100);
  EXPECT_EQ(run(), initial + 1);

  const ObjectId sock = b.Socket(h, "10.0.0.1", "203.0.113.9", 443, 300);
  b.Connect(reader, sock, 300, 100);
  EXPECT_EQ(run(), initial + 2);
}

}  // namespace
}  // namespace aptrace
