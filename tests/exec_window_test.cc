#include <gtest/gtest.h>

#include <queue>

#include "core/exec_window.h"

namespace aptrace {
namespace {

Event Ev(EventId id, ObjectId src_proc, ObjectId dst, TimeMicros t) {
  Event e;
  e.id = id;
  e.subject = src_proc;
  e.object = dst;
  e.timestamp = t;
  e.action = ActionType::kWrite;  // flow subject -> object
  e.direction = FlowDirection::kSubjectToObject;
  return e;
}

TEST(GenExeWindowsTest, GeometricLengthsRatioTwo) {
  // [0, 255) with k=8: sigma = 255/255 = 1; lengths 1,2,4,...,128.
  const Event e = Ev(1, 10, 20, 255);
  const auto windows = GenExeWindows(e, 0, 0, 8);
  ASSERT_EQ(windows.size(), 8u);
  TimeMicros expected_len = 1;
  TimeMicros expected_end = 255;
  for (const auto& w : windows) {
    EXPECT_EQ(w.finish, expected_end);
    EXPECT_EQ(w.finish - w.begin, expected_len);
    expected_end = w.begin;
    expected_len *= 2;
  }
}

TEST(GenExeWindowsTest, UnionCoversRangeExactly) {
  const Event e = Ev(1, 10, 20, 1000003);  // deliberately not divisible
  const auto windows = GenExeWindows(e, 17, 17, 8);
  ASSERT_FALSE(windows.empty());
  // Nearest-first: finish of the first window is the event time.
  EXPECT_EQ(windows.front().finish, 1000003);
  // Contiguous, non-overlapping, covering down to global start.
  for (size_t i = 1; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].finish, windows[i - 1].begin);
  }
  EXPECT_EQ(windows.back().begin, 17);
}

TEST(GenExeWindowsTest, ClipBeginDropsCoveredHistory) {
  const Event e = Ev(1, 10, 20, 1000);
  const auto windows = GenExeWindows(e, 0, 900, 8);
  for (const auto& w : windows) {
    EXPECT_GE(w.begin, 900);
    EXPECT_LE(w.finish, 1000);
  }
  ASSERT_FALSE(windows.empty());
  EXPECT_EQ(windows.back().begin, 900);
  EXPECT_EQ(windows.front().finish, 1000);
}

TEST(GenExeWindowsTest, EmptyWhenFullyCovered) {
  const Event e = Ev(1, 10, 20, 1000);
  EXPECT_TRUE(GenExeWindows(e, 0, 1000, 8).empty());
  EXPECT_TRUE(GenExeWindows(e, 0, 2000, 8).empty());
  EXPECT_TRUE(GenExeWindows(e, 1000, 0, 8).empty());  // te == ts
}

TEST(GenExeWindowsTest, CarriesFrontierAndDepEvent) {
  const Event e = Ev(42, 10, 20, 500);
  const auto windows = GenExeWindows(e, 0, 0, 4);
  for (const auto& w : windows) {
    EXPECT_EQ(w.dep_event, 42u);
    EXPECT_EQ(w.frontier, 10u);  // FlowSource of a write is the subject
  }
}

TEST(GenExeWindowsTest, TinyRangeProducesFewerWindows) {
  // Range of 3 micros with k=8: sigma clamps to 1; only ~2-3 windows fit.
  const Event e = Ev(1, 10, 20, 3);
  const auto windows = GenExeWindows(e, 0, 0, 8);
  ASSERT_FALSE(windows.empty());
  EXPECT_LE(windows.size(), 3u);
  EXPECT_EQ(windows.back().begin, 0);
  EXPECT_EQ(windows.front().finish, 3);
}

TEST(GenExeWindowsTest, KOneIsMonolithic) {
  const Event e = Ev(1, 10, 20, 1000);
  const auto windows = GenExeWindows(e, 100, 100, 1);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].begin, 100);
  EXPECT_EQ(windows[0].finish, 1000);
}

// Property sweep: for any k and range, windows tile [clip, te) exactly
// with no gaps or overlaps, and lengths (except the last) double.
struct SweepParam {
  int k;
  TimeMicros ts;
  TimeMicros te;
  TimeMicros clip;
};

class GenExeWindowsSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(GenExeWindowsSweep, TilesExactly) {
  const auto& p = GetParam();
  const Event e = Ev(1, 10, 20, p.te);
  const auto windows = GenExeWindows(e, p.ts, p.clip, p.k);
  const TimeMicros effective_begin = std::max(p.ts, p.clip);
  if (effective_begin >= p.te) {
    EXPECT_TRUE(windows.empty());
    return;
  }
  ASSERT_FALSE(windows.empty());
  EXPECT_LE(windows.size(), static_cast<size_t>(p.k));
  EXPECT_EQ(windows.front().finish, p.te);
  EXPECT_EQ(windows.back().begin, effective_begin);
  for (size_t i = 1; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].finish, windows[i - 1].begin);  // contiguous
    EXPECT_GT(windows[i].finish, windows[i].begin);      // non-empty
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GenExeWindowsSweep,
    testing::Values(SweepParam{1, 0, 1000, 0}, SweepParam{2, 0, 1000, 0},
                    SweepParam{4, 0, 1000, 0}, SweepParam{8, 0, 1000, 0},
                    SweepParam{12, 0, 1000, 0}, SweepParam{16, 0, 1000, 0},
                    SweepParam{8, 500, 1000000, 0},
                    SweepParam{8, 0, 1000000007, 12345},
                    SweepParam{8, 0, 7, 0}, SweepParam{8, 0, 1, 0},
                    SweepParam{62, 0, 1000000, 0},
                    SweepParam{8, 0, 1000, 999},
                    SweepParam{8, 0, 1000, 1000}));

TEST(ExecWindowLessTest, PriorityOrdering) {
  std::priority_queue<ExecWindow, std::vector<ExecWindow>, ExecWindowLess> q;
  auto mk = [](bool boosted, int state, TimeMicros finish, uint64_t seq) {
    ExecWindow w;
    w.boosted = boosted;
    w.state = state;
    w.finish = finish;
    w.priority_key = finish;  // backward windows key on their finish time
    w.seq = seq;
    return w;
  };
  q.push(mk(false, 1, 100, 0));  // plain, early finish
  q.push(mk(false, 1, 900, 1));  // plain, late finish (closer to start)
  q.push(mk(false, 3, 100, 2));  // high state
  q.push(mk(true, 1, 50, 3));    // boosted

  // Boosted first, then highest state, then latest finish.
  EXPECT_TRUE(q.top().boosted);
  q.pop();
  EXPECT_EQ(q.top().state, 3);
  q.pop();
  EXPECT_EQ(q.top().finish, 900);
  q.pop();
  EXPECT_EQ(q.top().finish, 100);
}

TEST(ExecWindowLessTest, FifoTieBreak) {
  ExecWindowLess less;
  ExecWindow a;
  a.seq = 1;
  ExecWindow b;
  b.seq = 2;
  // Same priority: the earlier seq is "greater" (popped first).
  EXPECT_TRUE(less(b, a));
  EXPECT_FALSE(less(a, b));
}

}  // namespace
}  // namespace aptrace
