// WAL corruption fuzz tests (docs/durability.md failure taxonomy): every
// mutilation of the log — torn tails at every byte, bit flips at every
// byte, duplicated batches, sequence jumps — must recover the longest
// valid prefix with a typed STO-E0xx diagnostic, and never abort, crash,
// or silently diverge from that prefix.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/file_env.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace aptrace {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<Event> MakeBatch(uint64_t tag, size_t n) {
  std::vector<Event> events;
  for (size_t i = 0; i < n; ++i) {
    Event e;
    e.timestamp = static_cast<TimeMicros>(1000 * tag + i);
    e.subject = 2 * tag + i;
    e.object = 3 * tag + i;
    e.amount = 40 + tag;
    e.host = static_cast<HostId>(tag % 3);
    e.action = static_cast<ActionType>((tag + i) % 8);
    e.direction = ActionDefaultDirection(e.action);
    events.push_back(e);
  }
  return events;
}

struct FuzzLog {
  std::string bytes;                   // magic + all records
  std::vector<size_t> boundaries;      // offset after magic, after rec 1, ...
  std::vector<std::vector<Event>> batches;
};

FuzzLog BuildLog(size_t num_batches) {
  FuzzLog log;
  log.bytes.assign(kWalMagic, kWalMagicLen);
  log.boundaries.push_back(log.bytes.size());
  for (uint64_t seq = 1; seq <= num_batches; ++seq) {
    log.batches.push_back(MakeBatch(seq, seq % 4 + 1));
    log.bytes += EncodeWalRecord(seq, log.batches.back());
    log.boundaries.push_back(log.bytes.size());
  }
  return log;
}

// Number of complete records contained in a prefix of `cut` bytes.
size_t CompleteRecords(const FuzzLog& log, size_t cut) {
  size_t k = 0;
  while (k + 1 < log.boundaries.size() && log.boundaries[k + 1] <= cut) ++k;
  return k;
}

void ExpectPrefix(const FuzzLog& log, const WalScan& scan, size_t k,
                  const std::string& context) {
  ASSERT_EQ(scan.batches.size(), k) << context;
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(scan.batches[i].seq, i + 1) << context;
    ASSERT_EQ(scan.batches[i].events.size(), log.batches[i].size()) << context;
    for (size_t j = 0; j < log.batches[i].size(); ++j) {
      EXPECT_EQ(scan.batches[i].events[j].timestamp,
                log.batches[i][j].timestamp)
          << context << " batch " << i << " event " << j;
      EXPECT_EQ(scan.batches[i].events[j].subject, log.batches[i][j].subject)
          << context;
      EXPECT_EQ(scan.batches[i].events[j].object, log.batches[i][j].object)
          << context;
    }
  }
}

TEST(WalFuzzTest, TornTailAtEveryByteRecoversTheLongestValidPrefix) {
  const FuzzLog log = BuildLog(5);
  ASSERT_GT(log.bytes.size(), 300u);  // hundreds of distinct cut points
  for (size_t cut = kWalMagicLen; cut < log.bytes.size(); ++cut) {
    auto scan = ScanWalBytes(std::string_view(log.bytes).substr(0, cut));
    ASSERT_TRUE(scan.ok()) << "cut " << cut << ": " << scan.status();
    const size_t k = CompleteRecords(log, cut);
    ExpectPrefix(log, *scan, k, "cut " + std::to_string(cut));
    EXPECT_EQ(scan->valid_bytes, log.boundaries[k]) << "cut " << cut;
    EXPECT_EQ(scan->truncated_bytes, cut - log.boundaries[k])
        << "cut " << cut;
    if (cut != log.boundaries[k]) {
      // Something was cut: the diagnostic must carry a typed code.
      EXPECT_NE(scan->diagnostic.find("STO-E00"), std::string::npos)
          << "cut " << cut << ": '" << scan->diagnostic << "'";
    } else {
      EXPECT_TRUE(scan->diagnostic.empty())
          << "cut " << cut << ": '" << scan->diagnostic << "'";
    }
  }
}

TEST(WalFuzzTest, BitFlipAtEveryByteNeverYieldsDivergentBatches) {
  const FuzzLog log = BuildLog(4);
  for (size_t pos = kWalMagicLen; pos < log.bytes.size(); ++pos) {
    std::string mutated = log.bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x40);
    auto scan = ScanWalBytes(mutated);
    ASSERT_TRUE(scan.ok()) << "flip at " << pos << ": " << scan.status();
    // Whatever byte was hit — length, CRC, seq, payload — the scanner
    // must return some clean prefix of the original batches: corrupt
    // data may be dropped, but never altered data accepted. (The CRC
    // covers the payload; the structure checks cover the header.)
    const size_t k = scan->batches.size();
    ASSERT_LE(k, log.batches.size()) << "flip at " << pos;
    ExpectPrefix(log, *scan, k, "flip at " + std::to_string(pos));
    if (k < log.batches.size()) {
      EXPECT_NE(scan->diagnostic.find("STO-E00"), std::string::npos)
          << "flip at " << pos << ": '" << scan->diagnostic << "'";
    }
  }
}

TEST(WalFuzzTest, FlippedMagicIsRefusedNotRepaired) {
  FuzzLog log = BuildLog(2);
  log.bytes[3] ^= 0x01;
  auto scan = ScanWalBytes(log.bytes);
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.status().message().find("STO-E002"), std::string::npos)
      << scan.status();
}

TEST(WalFuzzTest, DuplicatedBatchIsSkippedIdempotently) {
  // Re-append the record for batch 2 after batch 3 — the shape a retried
  // append that actually landed twice leaves behind.
  FuzzLog log = BuildLog(3);
  const std::string dup = EncodeWalRecord(2, log.batches[1]);
  std::string bytes = log.bytes + dup + EncodeWalRecord(4, MakeBatch(4, 2));
  auto scan = ScanWalBytes(bytes);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->batches.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(scan->batches[i].seq, i + 1);
  EXPECT_EQ(scan->duplicates_skipped, 1u);
  EXPECT_EQ(scan->valid_bytes, bytes.size());
  EXPECT_NE(scan->diagnostic.find("STO-E006"), std::string::npos)
      << scan->diagnostic;
  EXPECT_NE(scan->diagnostic.find("duplicate"), std::string::npos);
}

TEST(WalFuzzTest, SequenceJumpEndsTheTrustedPrefix) {
  FuzzLog log = BuildLog(2);
  // Batch 5 after batch 2: CRC-valid bytes our writer cannot have
  // produced (a spliced foreign log). Everything from the jump on is
  // untrusted.
  std::string bytes = log.bytes + EncodeWalRecord(5, MakeBatch(5, 1));
  auto scan = ScanWalBytes(bytes);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->batches.size(), 2u);
  EXPECT_EQ(scan->valid_bytes, log.bytes.size());
  EXPECT_NE(scan->diagnostic.find("STO-E006"), std::string::npos)
      << scan->diagnostic;
  EXPECT_NE(scan->diagnostic.find("sequence break"), std::string::npos);
}

TEST(WalFuzzTest, ImplausibleLengthStopsTheScan) {
  FuzzLog log = BuildLog(2);
  // Hand-craft a header whose payload_len is far beyond the sanity cap.
  std::string bytes = log.bytes;
  const uint32_t huge = (kWalMaxBatchEvents + 1) * kWalEventBytes + 12;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  bytes += std::string(4, '\0');  // crc
  bytes += "some trailing payload";
  auto scan = ScanWalBytes(bytes);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->batches.size(), 2u);
  EXPECT_EQ(scan->valid_bytes, log.bytes.size());
  EXPECT_NE(scan->diagnostic.find("STO-E005"), std::string::npos)
      << scan->diagnostic;
}

// --- ReplayWal over real files -----------------------------------------

TEST(WalFuzzTest, ReplayTruncatesTornTailsOnDisk) {
  FileEnv* env = FileEnv::Posix();
  const std::string path = TestPath("wal_fuzz_replay.log");
  if (env->FileExists(path)) ASSERT_TRUE(env->RemoveFile(path).ok());

  const FuzzLog log = BuildLog(3);
  {
    auto f = env->OpenForAppend(path);
    ASSERT_TRUE(f.ok());
    // Full log plus half of a fourth record: a crash mid-append.
    const std::string torn =
        EncodeWalRecord(4, MakeBatch(4, 2)).substr(0, 13);
    ASSERT_TRUE((*f)->Append(log.bytes + torn).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }

  std::vector<uint64_t> applied;
  auto replay = ReplayWal(env, path, 0,
                          [&](uint64_t seq, std::vector<Event>&& events) {
                            applied.push_back(seq);
                            EXPECT_FALSE(events.empty());
                            return Status::Ok();
                          });
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->batches_applied, 3u);
  EXPECT_EQ(replay->last_seq, 3u);
  EXPECT_EQ(replay->valid_bytes, log.bytes.size());
  EXPECT_EQ(replay->truncated_bytes, 13u);
  EXPECT_NE(replay->diagnostic.find("STO-E003"), std::string::npos)
      << replay->diagnostic;
  ASSERT_EQ(applied, (std::vector<uint64_t>{1, 2, 3}));

  // The torn bytes were cut: the file is now exactly the valid prefix,
  // and a second replay reports a pristine log.
  auto size = env->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, log.bytes.size());
  auto again = ReplayWal(env, path, 0,
                         [](uint64_t, std::vector<Event>&&) {
                           return Status::Ok();
                         });
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->batches_applied, 3u);
  EXPECT_EQ(again->truncated_bytes, 0u);
  EXPECT_TRUE(again->diagnostic.empty()) << again->diagnostic;
}

TEST(WalFuzzTest, ReplaySkipsBatchesTheSnapshotAlreadyCovers) {
  FileEnv* env = FileEnv::Posix();
  const std::string path = TestPath("wal_fuzz_skip.log");
  if (env->FileExists(path)) ASSERT_TRUE(env->RemoveFile(path).ok());

  const FuzzLog log = BuildLog(5);
  {
    auto f = env->OpenForAppend(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(log.bytes).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  std::vector<uint64_t> applied;
  auto replay = ReplayWal(env, path, 3,
                          [&](uint64_t seq, std::vector<Event>&&) {
                            applied.push_back(seq);
                            return Status::Ok();
                          });
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->batches_applied, 2u);
  EXPECT_EQ(replay->duplicates_skipped, 3u);
  EXPECT_EQ(replay->last_seq, 5u);
  ASSERT_EQ(applied, (std::vector<uint64_t>{4, 5}));
}

TEST(WalFuzzTest, ReplayOfAMissingFileIsACleanEmptyLog) {
  FileEnv* env = FileEnv::Posix();
  const std::string path = TestPath("wal_fuzz_missing.log");
  if (env->FileExists(path)) ASSERT_TRUE(env->RemoveFile(path).ok());
  auto replay = ReplayWal(env, path, 0,
                          [](uint64_t, std::vector<Event>&&) {
                            return Status::Ok();
                          });
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->batches_applied, 0u);
  EXPECT_EQ(replay->valid_bytes, 0u);
}

TEST(WalFuzzTest, ReplayRefusesAForeignFile) {
  FileEnv* env = FileEnv::Posix();
  const std::string path = TestPath("wal_fuzz_foreign.log");
  if (env->FileExists(path)) ASSERT_TRUE(env->RemoveFile(path).ok());
  {
    auto f = env->OpenForAppend(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("aptrace-trace v1\nH 0 h1\n").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  auto replay = ReplayWal(env, path, 0,
                          [](uint64_t, std::vector<Event>&&) {
                            return Status::Ok();
                          });
  ASSERT_FALSE(replay.ok());
  EXPECT_NE(replay.status().message().find("STO-E002"), std::string::npos)
      << replay.status();
  // Refusing means not touching: the foreign file must be intact.
  auto size = env->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_GT(*size, 0u);
}

}  // namespace
}  // namespace aptrace
