// Tests for the daemon's HTTP scrape surface (src/service/http.*):
// request-line parsing, response rendering, routing, and the live
// endpoints of a running Server — /metrics stays a valid Prometheus
// exposition while concurrent sessions run, /readyz flips to 503 the
// moment the manager drains while /metrics keeps serving, malformed
// request lines get 400, unknown paths 404.

#include <dirent.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "service/http.h"
#include "service/json.h"
#include "service/server.h"
#include "service/session_manager.h"
#include "tests/random_trace_util.h"
#include "tests/test_trace.h"

namespace aptrace::service {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

// ------------------------------------------------------------ unit layer

TEST(HttpParseTest, AcceptsOriginFormRequestLines) {
  HttpRequest r;
  ASSERT_TRUE(ParseHttpRequestLine("GET /metrics HTTP/1.1", &r));
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/metrics");

  ASSERT_TRUE(ParseHttpRequestLine("GET / HTTP/1.0", &r));
  EXPECT_EQ(r.target, "/");

  ASSERT_TRUE(ParseHttpRequestLine("POST /sessions HTTP/1.1", &r));
  EXPECT_EQ(r.method, "POST");  // routed to 405, but it parses
}

TEST(HttpParseTest, RejectsMalformedRequestLines) {
  HttpRequest r;
  EXPECT_FALSE(ParseHttpRequestLine("", &r));
  EXPECT_FALSE(ParseHttpRequestLine("GET", &r));
  EXPECT_FALSE(ParseHttpRequestLine("GET /metrics", &r));      // no version
  EXPECT_FALSE(ParseHttpRequestLine("GET  HTTP/1.1", &r));     // empty target
  EXPECT_FALSE(ParseHttpRequestLine("GET metrics HTTP/1.1", &r));  // relative
  EXPECT_FALSE(ParseHttpRequestLine("GET /x FTP/1.1", &r));    // bad version
  EXPECT_FALSE(
      ParseHttpRequestLine("GET http://h/metrics HTTP/1.1", &r));  // absolute
}

TEST(HttpRenderTest, ResponseCarriesStatusHeadersAndBody) {
  HttpResponse response;
  response.body = "ok\n";
  const std::string wire = RenderHttpResponse(response);
  EXPECT_EQ(wire.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(wire.find("Content-Type: text/plain; charset=utf-8\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 3\r\n"), std::string::npos);
  const std::string tail = "Connection: close\r\n\r\nok\n";
  ASSERT_GE(wire.size(), tail.size());
  EXPECT_EQ(wire.substr(wire.size() - tail.size()), tail);

  response.status = 503;
  response.body = "draining\n";
  EXPECT_EQ(RenderHttpResponse(response).rfind(
                "HTTP/1.1 503 Service Unavailable\r\n", 0),
            0u);
}

TEST(HttpRenderTest, StatusTextCoversEveryEmittedStatus) {
  EXPECT_STREQ(HttpStatusText(200), "OK");
  EXPECT_STREQ(HttpStatusText(400), "Bad Request");
  EXPECT_STREQ(HttpStatusText(404), "Not Found");
  EXPECT_STREQ(HttpStatusText(405), "Method Not Allowed");
  EXPECT_STREQ(HttpStatusText(503), "Service Unavailable");
  EXPECT_STREQ(HttpStatusText(418), "Unknown");
}

TEST(HttpRouteTest, RoutesWithoutAServer) {
  MiniTrace t = MakeMiniTrace();
  SessionManager manager(t.store.get(), ServiceLimits{});

  const auto route = [&](const char* method, const char* target) {
    HttpRequest request;
    request.method = method;
    request.target = target;
    return HandleHttpRequest(request, &manager);
  };

  EXPECT_EQ(route("POST", "/metrics").status, 405);
  EXPECT_EQ(route("GET", "/nope").status, 404);
  EXPECT_EQ(route("GET", "/healthz").status, 200);
  EXPECT_EQ(route("GET", "/healthz").body, "ok\n");
  // Scrapers may append query noise; it is stripped before routing.
  EXPECT_EQ(route("GET", "/readyz?verbose=1").status, 200);
  EXPECT_EQ(route("GET", "/readyz").body, "ready\n");

  const HttpResponse sessions = route("GET", "/sessions");
  EXPECT_EQ(sessions.status, 200);
  EXPECT_EQ(sessions.content_type, "application/json");
  auto parsed = ParseJson(sessions.body);
  ASSERT_TRUE(parsed.ok()) << sessions.body;
  EXPECT_FALSE(parsed->GetBool("draining", true));
}

// ------------------------------------------------------------ live layer

/// One whole scrape: fresh connection, raw request bytes, read to EOF
/// (the server half-closes after its single response).
struct ScrapeResult {
  int status = -1;
  std::string body;
};

ScrapeResult RawScrape(const std::string& socket_path,
                       const std::string& request) {
  ScrapeResult result;
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return result;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return result;
  }
  EXPECT_EQ(send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string raw;
  for (;;) {
    char buf[4096];
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return result;
  std::sscanf(raw.c_str(), "HTTP/%*s %d", &result.status);
  result.body = raw.substr(header_end + 4);
  return result;
}

ScrapeResult HttpGet(const std::string& socket_path, const std::string& path) {
  return RawScrape(socket_path, "GET " + path +
                                    " HTTP/1.1\r\nHost: aptrace\r\n"
                                    "Connection: close\r\n\r\n");
}

/// Every non-empty line of a Prometheus text exposition is a comment or
/// a `name value` sample with a parseable value.
void ExpectValidPrometheus(const std::string& body) {
  ASSERT_FALSE(body.empty());
  size_t start = 0;
  while (start < body.size()) {
    size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.find(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_EQ(line.find(' ', sp + 1), std::string::npos) << line;
    char* endp = nullptr;
    std::strtod(line.c_str() + sp + 1, &endp);
    EXPECT_EQ(*endp, '\0') << line;
  }
}

TEST(ServiceHttpTest, EndpointsServeWhileConcurrentSessionsRun) {
  // Four stalled (hence live, mid-run) sessions under the server while
  // every endpoint is scraped.
  RandomTrace t = MakeRandomTrace(29, 600);
  ServiceLimits limits;
  limits.update_buffer_cap = 1;  // sessions park on backpressure: stay live
  SessionManager manager(t.store.get(), limits);
  const std::string socket_path =
      testing::TempDir() + "aptrace_http_test.sock";
  ServerOptions options;
  options.unix_socket_path = socket_path;
  Server server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  OpenOptions opts;
  opts.start_event = t.alert.id;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(manager.Open(UnconstrainedScript(t), opts).ok());
  }

  const ScrapeResult health = HttpGet(socket_path, "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const ScrapeResult ready = HttpGet(socket_path, "/readyz");
  EXPECT_EQ(ready.status, 200);
  EXPECT_EQ(ready.body, "ready\n");

  const ScrapeResult metrics = HttpGet(socket_path, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  ExpectValidPrometheus(metrics.body);
  EXPECT_NE(metrics.body.find("aptrace_service_http_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("aptrace_service_sessions_live 4"),
            std::string::npos)
      << metrics.body;

  const ScrapeResult sessions = HttpGet(socket_path, "/sessions");
  EXPECT_EQ(sessions.status, 200);
  auto parsed = ParseJson(sessions.body);
  ASSERT_TRUE(parsed.ok()) << sessions.body;
  EXPECT_FALSE(parsed->GetBool("draining", true));
  const JsonValue* rows = parsed->Find("sessions");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->IsArray());
  EXPECT_EQ(rows->items.size(), 4u);
  for (const JsonValue& row : rows->items) {
    EXPECT_GT(row.GetUint("id"), 0u);
    EXPECT_FALSE(row.GetString("state").empty());
  }

  // Error paths: a request line missing its version parses as HTTP (it
  // starts with "GET ") but fails validation; unknown paths are 404.
  const ScrapeResult bad = RawScrape(socket_path, "GET /metrics\r\n\r\n");
  EXPECT_EQ(bad.status, 400);
  const ScrapeResult missing = HttpGet(socket_path, "/nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(missing.body, "not found\n");

  // Drain-awareness: readiness flips the moment the manager drains, but
  // /metrics and /healthz keep answering — the last scrape of a stopping
  // daemon is the one worth having.
  manager.Stop();
  const ScrapeResult draining = HttpGet(socket_path, "/readyz");
  EXPECT_EQ(draining.status, 503);
  EXPECT_EQ(draining.body, "draining\n");
  EXPECT_EQ(HttpGet(socket_path, "/healthz").status, 200);
  const ScrapeResult last = HttpGet(socket_path, "/metrics");
  EXPECT_EQ(last.status, 200);
  ExpectValidPrometheus(last.body);

  auto drained = ParseJson(HttpGet(socket_path, "/sessions").body);
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(drained->GetBool("draining"));

  server.Shutdown();
}

TEST(ServiceHttpTest, HttpRequestCounterTracksScrapes) {
  MiniTrace t = MakeMiniTrace();
  SessionManager manager(t.store.get(), ServiceLimits{});
  const std::string socket_path =
      testing::TempDir() + "aptrace_http_count.sock";
  ServerOptions options;
  options.unix_socket_path = socket_path;
  Server server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  const auto scrape_count = [&] {
    const std::string body = HttpGet(socket_path, "/metrics").body;
    // Newline-anchored: the bare needle would match the # HELP line.
    const std::string needle = "\naptrace_service_http_requests_total ";
    const size_t pos = body.find(needle);
    EXPECT_NE(pos, std::string::npos);
    return std::strtoull(body.c_str() + pos + needle.size(), nullptr, 10);
  };

  const uint64_t base = scrape_count();
  EXPECT_EQ(HttpGet(socket_path, "/healthz").status, 200);
  EXPECT_EQ(RawScrape(socket_path, "GET broken\r\n\r\n").status, 400);
  // The two requests above plus this scrape itself.
  EXPECT_EQ(scrape_count(), base + 3);
  server.Shutdown();
}

size_t CountOpenFds() {
  size_t n = 0;
  DIR* d = opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  while (readdir(d) != nullptr) ++n;
  closedir(d);
  return n;
}

// Regression: the one-request-per-connection HTTP model must not retain
// per-connection resources until Shutdown — a scraper refreshing every
// second would exhaust the fd ulimit in minutes. Each connection closes
// its fd (and its detached thread exits) as soon as its loop returns.
TEST(ServiceHttpTest, FinishedConnectionsReleaseTheirFds) {
  MiniTrace t = MakeMiniTrace();
  SessionManager manager(t.store.get(), ServiceLimits{});
  const std::string socket_path =
      testing::TempDir() + "aptrace_http_fds.sock";
  ServerOptions options;
  options.unix_socket_path = socket_path;
  Server server(&manager, options);
  ASSERT_TRUE(server.Start().ok());

  // One warm-up scrape, then let its cleanup settle before baselining.
  EXPECT_EQ(HttpGet(socket_path, "/healthz").status, 200);
  usleep(50 * 1000);
  const size_t baseline = CountOpenFds();

  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(HttpGet(socket_path, "/healthz").status, 200);
  }

  // Cleanup runs on detached connection threads just after the response
  // is sent; poll for the fd count to return to the baseline instead of
  // sampling once.
  size_t now = CountOpenFds();
  for (int i = 0; i < 200 && now > baseline; ++i) {
    usleep(10 * 1000);
    now = CountOpenFds();
  }
  EXPECT_LE(now, baseline);
  server.Shutdown();
}

}  // namespace
}  // namespace aptrace::service
