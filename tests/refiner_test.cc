#include <gtest/gtest.h>

#include <set>

#include "bdl/analyzer.h"
#include "core/refiner.h"
#include "core/session.h"
#include "tests/test_trace.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

std::set<EventId> EdgeSet(const DepGraph& g) {
  std::set<EventId> out;
  g.ForEachEdge([&](const DepGraph::Edge& e) { out.insert(e.event); });
  return out;
}

class RefinerTest : public testing::Test {
 protected:
  TrackingContext Ctx(const std::string& script,
                      std::optional<EventId> start = std::nullopt) {
    auto spec = bdl::CompileBdl(script);
    EXPECT_TRUE(spec.ok()) << spec.status();
    std::optional<Event> override_event;
    override_event = trace_.store->Get(start.value_or(trace_.alert_event));
    auto ctx = ResolveContext(*trace_.store, std::move(spec.value()),
                              &clock_, override_event);
    EXPECT_TRUE(ctx.ok()) << ctx.status();
    return std::move(ctx.value());
  }

  MiniTrace trace_ = MakeMiniTrace();
  SimClock clock_;
};

TEST_F(RefinerTest, IdenticalSpecsAreNoChange) {
  const auto a = Ctx("backward ip x[] -> *");
  const auto b = Ctx("backward ip x[] -> *");
  EXPECT_EQ(Refiner::Classify(a, b).action, RefineAction::kNoChange);
}

TEST_F(RefinerTest, WhereChangeIsReuse) {
  const auto a = Ctx("backward ip x[] -> *");
  const auto b = Ctx("backward ip x[] -> * where file.path != \"*.dll\"");
  const auto r = Refiner::Classify(a, b);
  EXPECT_EQ(r.action, RefineAction::kReuse);
  EXPECT_TRUE(r.delta.where_changed);
  EXPECT_FALSE(r.delta.chain_changed);
}

TEST_F(RefinerTest, ChainChangeIsReuse) {
  const auto a = Ctx("backward ip x[] -> *");
  const auto b =
      Ctx("backward ip x[] -> proc p[exename = \"excel.exe\"] -> *");
  const auto r = Refiner::Classify(a, b);
  EXPECT_EQ(r.action, RefineAction::kReuse);
  EXPECT_TRUE(r.delta.chain_changed);
}

TEST_F(RefinerTest, BudgetChangeIsReuse) {
  const auto a = Ctx("backward ip x[] -> *");
  const auto b = Ctx("backward ip x[] -> * where hop <= 5");
  const auto r = Refiner::Classify(a, b);
  EXPECT_EQ(r.action, RefineAction::kReuse);
  EXPECT_TRUE(r.delta.budgets_changed);
  EXPECT_FALSE(r.delta.where_changed);
}

TEST_F(RefinerTest, DifferentStartIsRestart) {
  const auto a = Ctx("backward ip x[] -> *");
  // Use a different event as the starting point (event 0: the mail
  // accept).
  const auto b = Ctx("backward ip x[] -> *", EventId{0});
  EXPECT_EQ(Refiner::Classify(a, b).action, RefineAction::kRestart);
}

TEST_F(RefinerTest, DifferentHostRangeIsRestart) {
  const auto a = Ctx("backward ip x[] -> *");
  const auto b = Ctx("in \"desktop1\" backward ip x[] -> *");
  // Same effective hosts? The filter set differs from "all hosts": the
  // coverage semantics changed, so the Refiner restarts.
  EXPECT_EQ(Refiner::Classify(a, b).action, RefineAction::kRestart);
}

// ------------------------------------------------- session-level reuse

TEST_F(RefinerTest, SessionRefineMatchesFreshRun) {
  // Iterative workflow: explore a little, add the dll exclusion, finish.
  Session session(trace_.store.get(), &clock_);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> *",
                         trace_.store->Get(trace_.alert_event))
                  .ok());
  RunLimits limits;
  limits.max_updates = 2;
  ASSERT_TRUE(session.Step(limits).ok());
  ASSERT_TRUE(session
                  .UpdateScript(
                      "backward ip x[] -> * where file.path != \"*.dll\"")
                  .ok());
  EXPECT_EQ(session.last_refine_action(), RefineAction::kReuse);
  auto reason = session.Step({});
  ASSERT_TRUE(reason.ok());
  EXPECT_EQ(reason.value(), StopReason::kCompleted);

  // A fresh session running the refined script directly must agree.
  SimClock clock2;
  Session fresh(trace_.store.get(), &clock2);
  ASSERT_TRUE(fresh
                  .Start("backward ip x[] -> * where file.path != \"*.dll\"",
                         trace_.store->Get(trace_.alert_event))
                  .ok());
  ASSERT_TRUE(fresh.Step({}).ok());
  EXPECT_EQ(EdgeSet(session.graph()), EdgeSet(fresh.graph()));
}

TEST_F(RefinerTest, SessionRestartOnNewStart) {
  Session session(trace_.store.get(), &clock_);
  ASSERT_TRUE(session
                  .Start("backward ip x[dst_ip = \"185.220.101.45\"] -> *")
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());
  const size_t full = session.graph().NumEdges();
  EXPECT_EQ(full, MiniTrace::kClosureEdges);

  // Point the script at a different starting event: restart with a clean
  // graph.
  ASSERT_TRUE(session
                  .UpdateScript(
                      "backward ip x[dst_ip = \"198.51.100.9\"] -> *")
                  .ok());
  EXPECT_EQ(session.last_refine_action(), RefineAction::kRestart);
  EXPECT_EQ(session.graph().NumEdges(), 0u);  // not bootstrapped yet
  ASSERT_TRUE(session.Step({}).ok());
  // Backtracking from the mail socket: the graph is tiny and rooted at
  // the socket (the endpoint that matched the new start pattern).
  EXPECT_EQ(session.graph().start(), trace_.mail_sock);
  EXPECT_EQ(session.graph().NumEdges(), 1u);
}

TEST_F(RefinerTest, SessionNoChangeKeepsEverything) {
  Session session(trace_.store.get(), &clock_);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> *",
                         trace_.store->Get(trace_.alert_event))
                  .ok());
  RunLimits limits;
  limits.max_updates = 1;
  ASSERT_TRUE(session.Step(limits).ok());
  const size_t edges = session.graph().NumEdges();
  ASSERT_TRUE(session.UpdateScript("backward ip x[] -> *").ok());
  EXPECT_EQ(session.last_refine_action(), RefineAction::kNoChange);
  EXPECT_EQ(session.graph().NumEdges(), edges);
}

TEST_F(RefinerTest, RelaxedWhereViaRestartFindsPrunedNodes) {
  // Tighten, then relax: relaxation classifies as reuse (the strings
  // differ), which cannot resurrect pruned scans; analysts restart by
  // changing the start or range. Here we verify the documented contract:
  // a fresh run of the relaxed script recovers the dll nodes.
  Session session(trace_.store.get(), &clock_);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> * where file.path != \"*.dll\"",
                         trace_.store->Get(trace_.alert_event))
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());
  EXPECT_FALSE(session.graph().HasNode(trace_.dll[0]));

  SimClock clock2;
  Session fresh(trace_.store.get(), &clock2);
  ASSERT_TRUE(fresh
                  .Start("backward ip x[] -> *",
                         trace_.store->Get(trace_.alert_event))
                  .ok());
  ASSERT_TRUE(fresh.Step({}).ok());
  EXPECT_TRUE(fresh.graph().HasNode(trace_.dll[0]));
}

}  // namespace
}  // namespace aptrace
