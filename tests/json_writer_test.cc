#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/json_writer.h"
#include "tests/test_trace.h"
#include "core/session.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

class JsonWriterTest : public testing::Test {
 protected:
  void SetUp() override {
    trace_ = MakeMiniTrace();
    session_ = std::make_unique<Session>(trace_.store.get(), &clock_);
    ASSERT_TRUE(session_
                    ->Start("backward ip x[] -> *",
                            trace_.store->Get(trace_.alert_event))
                    .ok());
    ASSERT_TRUE(session_->Step({}).ok());
  }

  MiniTrace trace_;
  SimClock clock_;
  std::unique_ptr<Session> session_;
};

TEST_F(JsonWriterTest, StructureAndContent) {
  std::ostringstream os;
  WriteGraphJson(session_->graph(), trace_.store->catalog(), os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"start\": " + std::to_string(trace_.ext_sock)),
            std::string::npos);
  EXPECT_NE(json.find("\"nodes\": ["), std::string::npos);
  EXPECT_NE(json.find("\"edges\": ["), std::string::npos);
  EXPECT_NE(json.find("java.exe"), std::string::npos);
  EXPECT_NE(json.find("\"action\": \"connect\""), std::string::npos);
  EXPECT_NE(json.find("\"host\": \"desktop1\""), std::string::npos);

  // Balanced braces / brackets (cheap well-formedness check).
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  char prev = 0;
  for (char c : json) {
    if (c == '"' && prev != '\\') in_string = !in_string;
    if (!in_string) {
      if (c == '{') braces++;
      if (c == '}') braces--;
      if (c == '[') brackets++;
      if (c == ']') brackets--;
      EXPECT_GE(braces, 0);
      EXPECT_GE(brackets, 0);
    }
    prev = c;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  // Node count and edge count equal the graph's.
  size_t id_count = 0;
  for (size_t pos = 0; (pos = json.find("{\"id\":", pos)) != std::string::npos;
       ++pos) {
    id_count++;
  }
  EXPECT_EQ(id_count, session_->graph().NumNodes());
  size_t edge_count = 0;
  for (size_t pos = 0;
       (pos = json.find("{\"event\":", pos)) != std::string::npos; ++pos) {
    edge_count++;
  }
  EXPECT_EQ(edge_count, session_->graph().NumEdges());
}

TEST_F(JsonWriterTest, EscapesSpecialCharacters) {
  ObjectCatalog catalog;
  const HostId h = catalog.InternHost("h");
  const ObjectId f = catalog.AddFile(
      h, {.path = "C:\\weird\"path\nwith newline"});
  DepGraph graph;
  graph.SetStart(f);
  std::ostringstream os;
  WriteGraphJson(graph, catalog, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\\\\weird\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find("weird\"path"), std::string::npos);
}

TEST_F(JsonWriterTest, FileOutput) {
  const std::string path = ::testing::TempDir() + "/aptrace_graph.json";
  ASSERT_TRUE(WriteGraphJsonFile(session_->graph(), trace_.store->catalog(),
                                 path)
                  .ok());
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::remove(path.c_str());
  EXPECT_FALSE(WriteGraphJsonFile(session_->graph(),
                                  trace_.store->catalog(),
                                  "/no-such-dir/graph.json")
                   .ok());
}

}  // namespace
}  // namespace aptrace
