#ifndef APTRACE_TESTS_TEST_TRACE_H_
#define APTRACE_TESTS_TEST_TRACE_H_

#include <memory>

#include "storage/event_store.h"

namespace aptrace::testing_support {

/// A miniature phishing-style trace with a fully hand-computed backward
/// closure, shared by the core-engine tests.
///
/// Timeline (flow direction in parentheses):
///   t=10  outlook accepts mail_sock      (mail_sock -> outlook)
///   t=15  benign writes doc1             (benign -> doc1)        [noise]
///   t=20  outlook writes attach          (outlook -> attach)
///   t=30  outlook starts excel           (outlook -> excel)
///   t=40  excel reads attach             (attach -> excel)
///   t=50  excel writes java_file         (excel -> java_file)
///   t=60  excel starts java              (excel -> java)
///   t=65  java reads java_file           (java_file -> java)
///   t=70..72  java reads dll1..dll3      (dll_i -> java)
///   t=80  java connects ext_sock [ALERT] (java -> ext_sock)
///   t=90  java reads late_file           (late_file -> java)     [after
///         the alert: must never enter the backward closure]
///
/// Expected closure from the alert: 11 edges, 10 nodes (everything except
/// benign, doc1, late_file).
struct MiniTrace {
  std::unique_ptr<EventStore> store;
  HostId host;
  ObjectId outlook, excel, java, benign;
  ObjectId mail_sock, ext_sock;
  ObjectId attach, java_file, doc1, late_file;
  ObjectId dll[3];
  EventId alert_event;

  static constexpr size_t kClosureEdges = 11;
  static constexpr size_t kClosureNodes = 10;
};

inline MiniTrace MakeMiniTrace(CostModel cost_model = CostModel::Free()) {
  MiniTrace t;
  EventStoreOptions options;
  options.partition_micros = 25;  // several partitions across t=10..90
  options.cost_model = cost_model;
  t.store = std::make_unique<EventStore>(options);
  ObjectCatalog& c = t.store->catalog();
  t.host = c.InternHost("desktop1");

  t.outlook = c.AddProcess(t.host, {.exename = "outlook.exe", .pid = 11});
  t.excel = c.AddProcess(t.host, {.exename = "excel.exe", .pid = 12});
  t.java = c.AddProcess(t.host, {.exename = "java.exe", .pid = 13});
  t.benign = c.AddProcess(t.host, {.exename = "benign.exe", .pid = 14});
  t.mail_sock = c.AddIp(t.host, {.src_ip = "10.0.0.1",
                                 .dst_ip = "198.51.100.9",
                                 .dst_port = 993});
  t.ext_sock = c.AddIp(t.host, {.src_ip = "10.0.0.1",
                                .dst_ip = "185.220.101.45",
                                .dst_port = 443});
  t.attach = c.AddFile(t.host, {.path = "C://Temp/attach.xls"});
  t.java_file = c.AddFile(t.host, {.path = "C://Docs/java.exe"});
  t.doc1 = c.AddFile(t.host, {.path = "C://Docs/doc1.txt"});
  t.late_file = c.AddFile(t.host, {.path = "C://Docs/late.txt"});
  for (int i = 0; i < 3; ++i) {
    t.dll[i] = c.AddFile(
        t.host, {.path = "C://Windows/System32/lib" + std::to_string(i) +
                         ".dll"});
  }

  auto emit = [&](ObjectId subject, ObjectId object, TimeMicros ts,
                  ActionType action, uint64_t amount = 1024) {
    Event e;
    e.subject = subject;
    e.object = object;
    e.timestamp = ts;
    e.action = action;
    e.direction = ActionDefaultDirection(action);
    e.amount = amount;
    e.host = t.host;
    return t.store->Append(e);
  };

  emit(t.outlook, t.mail_sock, 10, ActionType::kAccept, 2048);
  emit(t.benign, t.doc1, 15, ActionType::kWrite);
  emit(t.outlook, t.attach, 20, ActionType::kWrite, 1800);
  emit(t.outlook, t.excel, 30, ActionType::kStart);
  emit(t.excel, t.attach, 40, ActionType::kRead, 1800);
  emit(t.excel, t.java_file, 50, ActionType::kWrite, 300);
  emit(t.excel, t.java, 60, ActionType::kStart);
  emit(t.java, t.java_file, 65, ActionType::kRead, 300);
  for (int i = 0; i < 3; ++i) {
    emit(t.java, t.dll[i], 70 + i, ActionType::kRead, 64);
  }
  t.alert_event = emit(t.java, t.ext_sock, 80, ActionType::kConnect, 5000);
  emit(t.java, t.late_file, 90, ActionType::kRead);

  t.store->Seal();
  return t;
}

}  // namespace aptrace::testing_support

#endif  // APTRACE_TESTS_TEST_TRACE_H_
