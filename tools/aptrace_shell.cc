#include "tools/aptrace_shell.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "bdl/formatter.h"
#include "bdl/lint.h"
#include "core/engine.h"
#include "detect/detector.h"
#include "graph/json_writer.h"
#include "graph/path.h"
#include "graph/summarize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace aptrace::tools {

namespace {

constexpr char kHelp[] =
    "commands:\n"
    "  start <file.bdl>     begin an analysis from a script file\n"
    "  refine <file.bdl>    pause + update the script (Refiner reuses the "
    "graph)\n"
    "  from <event-id>      unconstrained backtrack from an event\n"
    "  step [n]             process until n more updates arrive (default "
    "1)\n"
    "  run [duration]       run until done or simulated duration elapses\n"
    "  status               graph size, pending queue, elapsed\n"
    "  alerts [train-days]  run the anomaly detectors over the trace\n"
    "  path <object-id>     causal chain from the start to the object\n"
    "  dot <file> | json <file> | summary <file>   export the graph\n"
    "  save <file> | load <file>  checkpoint / resume the investigation\n"
    "  lint <file.bdl>      check a script against this trace without "
    "running it\n"
    "  fmt                  print the current script, formatted\n"
    "  stats                print the process metrics (Prometheus text)\n"
    "  trace-dump <file>    write recorded spans as Chrome trace JSON\n"
    "  help | quit\n";

struct ShellState {
  EventStore* store = nullptr;
  ShellOptions options;
  SimClock clock;
  std::unique_ptr<Session> session;
  bool session_started = false;

  Session* NewSession() {
    SessionOptions session_options;
    session_options.scan_threads = options.scan_threads;
    session = std::make_unique<Session>(store, &clock, session_options);
    session_started = false;
    return session.get();
  }
};

std::string ReadFileOr(const std::string& path, std::ostream& out) {
  std::ifstream f(path);
  if (!f) {
    out << "error: cannot open " << path << "\n";
    return {};
  }
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void PrintStatus(ShellState& st, std::ostream& out) {
  if (!st.session_started) {
    out << "no analysis running; use `start`, `from`, or `alerts`\n";
    return;
  }
  // One consistent Snapshot() read instead of piecemeal accessor calls:
  // every figure below comes from the same instant, so a status printed
  // while a Step is advancing elsewhere (the daemon reuses this path)
  // can never pair a fresh edge count with a stale update count.
  const SessionSnapshot snap = st.session->Snapshot();
  out << "graph: " << snap.graph_edges << " events / " << snap.graph_nodes
      << " nodes, max hop " << snap.max_hop << "\n";
  out << "updates: " << snap.update_batches << ", elapsed "
      << FormatDuration(snap.sim_now - snap.run_start) << " (simulated), "
      << (snap.exhausted ? "done" : "paused") << "\n";
  out << "direction: " << bdl::TrackDirectionName(snap.direction)
      << ", start node " << st.store->catalog().Get(snap.start_node).Label()
      << "\n";
  if (snap.scan_threads > 1) {
    out << "scan threads: " << snap.scan_threads << "\n";
  }
  if (st.store->shard_count() > 1) {
    out << "store shards: " << st.store->shard_count()
        << " (scatter-gather scans; see docs/sharding.md)\n";
  }
}

void Step(ShellState& st, std::ostream& out, const RunLimits& limits) {
  auto reason = st.session->Step(limits);
  if (!reason.ok()) {
    out << "error: " << reason.status() << "\n";
    return;
  }
  out << StopReasonName(reason.value()) << "; ";
  PrintStatus(st, out);
}

}  // namespace

int RunShell(EventStore* store, std::istream& in, std::ostream& out,
             ShellOptions options) {
  ShellState st;
  st.store = store;
  st.options = options;
  // Interactive sessions record spans so `trace-dump` always has data;
  // the per-command cost is noise at analyst speed.
  obs::Tracer::Global().SetEnabled(true);
  out << "aptrace shell — " << store->NumEvents() << " events, "
      << store->catalog().NumHosts() << " hosts. Type `help`.\n";

  std::string line;
  while ((out << "aptrace> " << std::flush, std::getline(in, line))) {
    const std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    std::istringstream args(trimmed);
    std::string cmd;
    args >> cmd;
    cmd = ToLower(cmd);

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      out << kHelp;
      continue;
    }
    if (cmd == "stats") {
      out << obs::Metrics().ExportPrometheus();
      continue;
    }
    if (cmd == "trace-dump") {
      std::string path;
      args >> path;
      if (path.empty()) {
        out << "error: need an output path\n";
        continue;
      }
      const Status s = obs::Tracer::Global().WriteChromeTrace(path);
      out << (s.ok() ? "trace written to " + path +
                           " (load in ui.perfetto.dev)"
                     : "error: " + s.ToString())
          << "\n";
      continue;
    }
    if (cmd == "load") {
      std::string path;
      args >> path;
      const Status s = st.NewSession()->LoadCheckpoint(path);
      st.session_started = s.ok();
      if (s.ok()) {
        out << "resumed from " << path << "\n";
        PrintStatus(st, out);
      } else {
        out << "error: " << s << "\n";
      }
      continue;
    }
    if (cmd == "lint") {
      std::string path;
      args >> path;
      const std::string text = ReadFileOr(path, out);
      if (text.empty()) continue;
      bdl::LintOptions options;
      options.store = st.store;
      const bdl::LintReport report = bdl::LintBdl(text, options);
      out << bdl::RenderHuman(text, path, report.diagnostics);
      out << report.num_errors << " error(s), " << report.num_warnings
          << " warning(s)"
          << (report.ok() ? "; the script compiles" : "") << "\n";
      continue;
    }
    if (cmd == "start" || cmd == "refine") {
      std::string path;
      args >> path;
      const std::string text = ReadFileOr(path, out);
      if (text.empty()) continue;
      Status s;
      if (cmd == "start" || !st.session_started) {
        s = st.NewSession()->Start(text);
        st.session_started = s.ok();
      } else {
        s = st.session->UpdateScript(text);
        if (s.ok()) {
          out << "refiner: "
              << RefineActionName(st.session->last_refine_action()) << "\n";
        }
      }
      if (!s.ok()) out << "error: " << s << "\n";
      continue;
    }
    if (cmd == "from") {
      unsigned long long id = 0;
      if (!(args >> id) || id >= store->NumEvents()) {
        out << "error: need a valid event id (< " << store->NumEvents()
            << ")\n";
        continue;
      }
      const Event alert = store->Get(id);
      const ObjectType type = store->catalog().Get(alert.FlowDest()).type();
      const std::string script =
          std::string("backward ") + ObjectTypeName(type) + " x[] -> *";
      const Status s = st.NewSession()->Start(script, alert);
      st.session_started = s.ok();
      if (!s.ok()) {
        out << "error: " << s << "\n";
      } else {
        out << "tracking backward from event " << id << "\n";
      }
      continue;
    }
    if (!st.session_started &&
        (cmd == "step" || cmd == "run" || cmd == "status" || cmd == "path" ||
         cmd == "dot" || cmd == "json" || cmd == "fmt" || cmd == "save" ||
         cmd == "summary")) {
      out << "no analysis running; use `start`, `from`, or `alerts`\n";
      continue;
    }
    if (cmd == "step") {
      size_t n = 1;
      args >> n;
      RunLimits limits;
      limits.max_updates = n == 0 ? 1 : n;
      Step(st, out, limits);
      continue;
    }
    if (cmd == "run") {
      std::string dur;
      args >> dur;
      RunLimits limits;
      if (!dur.empty()) {
        auto d = ParseBdlDuration(dur);
        if (!d.ok()) {
          out << "error: " << d.status() << "\n";
          continue;
        }
        limits.sim_time = d.value();
      }
      Step(st, out, limits);
      continue;
    }
    if (cmd == "status") {
      PrintStatus(st, out);
      continue;
    }
    if (cmd == "alerts") {
      int train_days = -1;
      args >> train_days;
      const TimeMicros span = store->MaxTime() - store->MinTime();
      const TimeMicros train_until =
          train_days >= 0 ? store->MinTime() + train_days * kMicrosPerDay
                          : store->MinTime() + span * 6 / 10;
      auto pipeline = detect::DetectorPipeline::Standard();
      const auto alerts = pipeline.Run(*store, train_until);
      out << alerts.size() << " alerts (training before "
          << FormatBdlTime(train_until) << "); `from <event-id>` to "
          << "backtrack one\n";
      for (const auto& a : alerts) {
        out << "  event " << a.event << "  [" << a.rule << "] " << a.message
            << "\n";
      }
      continue;
    }
    if (cmd == "path") {
      unsigned long long id = 0;
      if (!(args >> id)) {
        out << "error: need an object id\n";
        continue;
      }
      const bool forward = st.session->context().spec.direction ==
                           bdl::TrackDirection::kForward;
      const CausalPath path =
          FindCausalPath(st.session->graph(), id, forward);
      if (path.empty()) {
        out << "object " << id << " is not in the graph\n";
        continue;
      }
      out << store->catalog().Get(path.origin).Label() << "\n";
      for (const PathStep& step : path.steps) {
        const auto& edge = st.session->graph().GetEdge(step.event);
        out << "  " << (forward ? "->" : "<-") << " ["
            << ActionTypeName(edge.action) << " "
            << FormatBdlTime(edge.timestamp) << "] "
            << store->catalog().Get(step.node).Label() << "\n";
      }
      continue;
    }
    if (cmd == "summary") {
      std::string path;
      args >> path;
      if (path.empty()) {
        out << "error: need an output path\n";
        continue;
      }
      std::ofstream f(path);
      if (!f) {
        out << "error: cannot open " << path << "\n";
        continue;
      }
      SummarizeOptions options;
      options.alert_event = st.session->context().start_event.id;
      const SummaryStats stats = WriteDotSummarized(
          st.session->graph(), store->catalog(), f, options);
      out << "written to " << path << ": " << stats.original_nodes
          << " nodes drawn as " << stats.summary_nodes << " ("
          << stats.groups << " groups hide " << stats.collapsed_nodes
          << " nodes)\n";
      continue;
    }
    if (cmd == "dot" || cmd == "json") {
      std::string path;
      args >> path;
      if (path.empty()) {
        out << "error: need an output path\n";
        continue;
      }
      Status s;
      if (cmd == "dot") {
        DotOptions options;
        options.alert_event = st.session->context().start_event.id;
        s = WriteDotFile(st.session->graph(), store->catalog(), path,
                         options);
      } else {
        s = WriteGraphJsonFile(st.session->graph(), store->catalog(), path);
      }
      out << (s.ok() ? "written to " + path : "error: " + s.ToString())
          << "\n";
      continue;
    }
    if (cmd == "fmt") {
      out << bdl::FormatSpec(st.session->context().spec);
      continue;
    }
    if (cmd == "save") {
      std::string path;
      args >> path;
      const Status s = st.session->SaveCheckpoint(path);
      out << (s.ok() ? "checkpoint written to " + path
                     : "error: " + s.ToString())
          << "\n";
      continue;
    }
    out << "unknown command '" << cmd << "'; type `help`\n";
  }
  return 0;
}

}  // namespace aptrace::tools
