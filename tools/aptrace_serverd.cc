// aptrace_serverd — the resident multi-session query daemon.
//
//   aptrace_serverd --trace=<trace.tsv|.bin> [options]
//       Load and seal a trace, then serve concurrent tracking sessions
//       over the line-delimited JSON protocol (docs/service.md).
//         --socket=<path>     unix-domain listener (default: the
//                             APTRACE_SERVER_SOCKET env var)
//         --tcp-port=N        loopback TCP listener; 0 = ephemeral
//                             (printed on stdout), omit to disable
//         --backend=row|columnar
//                             storage backend (default: APTRACE_BACKEND
//                             env var, else row)
//         --shards=N          store shard count in [1, 64] (default:
//                             APTRACE_SHARDS env var, else 1); scans
//                             scatter-gather across (host, time) shards,
//                             /sessions lists one row per shard
//         --shard-endpoint=<ep>
//                             distributed fabric (docs/distribution.md):
//                             repeat once per shard daemon ("host:port",
//                             "unix:<path>", or a comma-separated list;
//                             default: APTRACE_SHARD_ENDPOINTS env var).
//                             The store becomes a coordinator over N
//                             remote shards — scans fan out concurrently
//                             over the shard-RPC protocol and a dead
//                             daemon degrades to a typed DST-E005 error,
//                             never a hang. Incompatible with --data-dir
//                             (durability lives in each shardd's
//                             --data-dir); an explicit --shards must
//                             match the endpoint count.
//         --max-sessions=N    live-session admission cap (default 8)
//         --quantum=N         windows per scheduling quantum (default 8)
//         --window-budget=N   default per-session window budget (0 = off)
//         --sim-budget=<dur>  default per-session simulated-time budget
//                             (BDL durations: 90m, 2h, ...; 0 = off)
//         --buffer-cap=N      per-session undelivered-batch cap before
//                             backpressure stalls it (default 256)
//         --ingest-cap=N      pending live-ingest events before `ingest`
//                             is rejected (default 4096)
//         --threads=N         shared scan-pool width (default: hardware
//                             concurrency)
//         --session-threads=N default modeled scan threads per session
//                             (results identical at any value; default 1)
//         --slow-query-micros=N
//                             cumulative per-session wall-micros threshold
//                             for the slow-query log + flight dump
//                             (default: APTRACE_SLOW_QUERY_MICROS env var,
//                             else 0 = off)
//         --flight-dir=<dir>  directory for anomaly flight-recorder dumps
//                             (flight-<id>-<reason>.json; omit to disable)
//         --data-dir=<dir>    durable ingest (docs/durability.md): every
//                             accepted `ingest` batch is fsync'd to
//                             <dir>/wal.log before it is acked, and boot
//                             recovers the store from the dir's snapshot
//                             + WAL replay. With a manifest present,
//                             --trace becomes the first-boot fallback
//                             only.
//         --seal-tail=N       hot-tail rows that trigger a background
//                             seal into column segments between quanta
//                             (columnar backend; 0 = off, the default)
//         --retention=<dur>   evict sealed rows older than MaxTime minus
//                             this BDL duration from scans (0/omit = off)
//
//   The flight recorder is always on: every thread records its recent
//   spans into a ring buffer (capacity: the APTRACE_FLIGHT_BUFFER env
//   var, default 16Ki spans per thread), dumpable retroactively via the
//   `flight-dump` op or the HTTP scrape endpoints' sibling ops, and
//   dumped automatically on anomalies when --flight-dir is set.
//
//   The same listeners also answer plain HTTP GETs — /metrics, /healthz,
//   /readyz, /sessions (see docs/observability.md).
//
//   SIGINT/SIGTERM (and the protocol `shutdown` op) trigger a graceful
//   drain: in-flight responses finish, the scheduler stops at a quantum
//   boundary, and the process exits 0. On start the daemon prints one
//   "serverd: ready" line to stdout so scripts can wait for it.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/dist_error.h"
#include "dist/remote_backend.h"
#include "dist/shard_client.h"
#include "obs/trace.h"
#include "service/server.h"
#include "service/session_manager.h"
#include "storage/file_env.h"
#include "storage/recovery.h"
#include "storage/trace_io.h"
#include "storage/wal.h"
#include "util/env.h"
#include "util/string_util.h"
#include "util/worker_pool.h"

namespace aptrace {
namespace {

struct Flags {
  std::string trace_path;
  std::string socket_path;
  std::string data_dir;
  int tcp_port = -1;
  StorageBackendKind backend = DefaultStorageBackendKind();
  size_t shards = DefaultShardCount();
  bool shards_set = false;  // explicit --shards must match endpoints
  std::vector<std::string> shard_endpoints;
  service::ServiceLimits limits;
  bool ok = true;
};

bool TakeValue(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

/// Positive-integer flag in the CLI's `severity[CODE]` diagnostic style.
bool ParseCount(const char* flag, const std::string& value, long min,
                long* out) {
  char* end = nullptr;
  const long n = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || n < min) {
    std::fprintf(stderr,
                 "%s: error[CLI-E001]: expected an integer >= %ld, got "
                 "'%s'\n",
                 flag, min, value.c_str());
    return false;
  }
  *out = n;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: aptrace_serverd --trace=<file> [--socket=<path>] "
               "[--tcp-port=N] [flags]\n"
               "  see the header comment of tools/aptrace_serverd.cc or "
               "docs/service.md\n");
  return 2;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  // The env var supplies the default socket; an invalid (empty) value
  // warns once via the shared helper and falls back to "no unix socket".
  if (auto s = GetValidatedEnv(
          kEnvServerSocket,
          [](const std::string& v) { return !v.empty(); },
          "a non-empty unix socket path")) {
    f.socket_path = *s;
  }
  if (const auto micros = GetValidatedEnvCount(kEnvSlowQueryMicros)) {
    f.limits.slow_query_micros = *micros;
  }
  std::string v;
  long n = 0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (TakeValue(a, "--trace", &f.trace_path) ||
        TakeValue(a, "--socket", &f.socket_path)) {
      continue;
    }
    if (TakeValue(a, "--tcp-port", &v)) {
      if (!ParseCount("--tcp-port", v, 0, &n) || n > 65535) {
        if (n > 65535) {
          std::fprintf(stderr,
                       "--tcp-port: error[CLI-E001]: %ld is not a valid "
                       "TCP port\n",
                       n);
        }
        f.ok = false;
      } else {
        f.tcp_port = static_cast<int>(n);
      }
    } else if (TakeValue(a, "--backend", &v)) {
      const auto parsed = ParseStorageBackendKind(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "--backend: error[CLI-E002]: expected 'row' or "
                     "'columnar', got '%s'\n",
                     v.c_str());
        f.ok = false;
      } else {
        f.backend = *parsed;
      }
    } else if (TakeValue(a, "--shards", &v)) {
      char* end = nullptr;
      n = std::strtol(v.c_str(), &end, 10);
      if (v.empty() || *end != '\0' || n < 1 ||
          n > static_cast<long>(kMaxStoreShards)) {
        std::fprintf(stderr,
                     "--shards: error[CLI-E005]: expected a shard count in "
                     "[1, 64], got '%s'\n",
                     v.c_str());
        f.ok = false;
      } else {
        f.shards = static_cast<size_t>(n);
        f.shards_set = true;
      }
    } else if (TakeValue(a, "--shard-endpoint", &v)) {
      if (v.empty()) {
        std::fprintf(stderr,
                     "--shard-endpoint: error[CLI-E006]: expected "
                     "'host:port' or 'unix:<path>'\n");
        f.ok = false;
      } else {
        f.shard_endpoints.push_back(v);
      }
    } else if (TakeValue(a, "--max-sessions", &v)) {
      if (ParseCount("--max-sessions", v, 1, &n)) {
        f.limits.max_live_sessions = static_cast<int>(n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--quantum", &v)) {
      if (ParseCount("--quantum", v, 1, &n)) {
        f.limits.quantum_windows = static_cast<uint64_t>(n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--window-budget", &v)) {
      if (ParseCount("--window-budget", v, 0, &n)) {
        f.limits.window_budget = static_cast<uint64_t>(n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--sim-budget", &v)) {
      auto d = ParseBdlDuration(v);
      if (!d.ok()) {
        std::fprintf(stderr, "--sim-budget: error[CLI-E001]: %s\n",
                     d.status().message().c_str());
        f.ok = false;
      } else {
        f.limits.sim_budget = d.value();
      }
    } else if (TakeValue(a, "--buffer-cap", &v)) {
      if (ParseCount("--buffer-cap", v, 1, &n)) {
        f.limits.update_buffer_cap = static_cast<size_t>(n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--ingest-cap", &v)) {
      if (ParseCount("--ingest-cap", v, 1, &n)) {
        f.limits.ingest_queue_cap = static_cast<size_t>(n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--threads", &v)) {
      if (ParseCount("--threads", v, 1, &n)) {
        f.limits.scan_threads = static_cast<int>(
            n > static_cast<long>(WorkerPool::kMaxThreads)
                ? WorkerPool::kMaxThreads
                : n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--session-threads", &v)) {
      if (ParseCount("--session-threads", v, 1, &n)) {
        f.limits.session_scan_threads = static_cast<int>(n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--slow-query-micros", &v)) {
      if (ParseCount("--slow-query-micros", v, 0, &n)) {
        f.limits.slow_query_micros = static_cast<uint64_t>(n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--flight-dir", &v)) {
      f.limits.flight_dump_dir = v;
    } else if (TakeValue(a, "--data-dir", &f.data_dir)) {
      // value captured
    } else if (TakeValue(a, "--seal-tail", &v)) {
      if (ParseCount("--seal-tail", v, 0, &n)) {
        f.limits.seal_tail_rows = static_cast<size_t>(n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--retention", &v)) {
      auto d = ParseBdlDuration(v);
      if (!d.ok()) {
        std::fprintf(stderr, "--retention: error[CLI-E001]: %s\n",
                     d.status().message().c_str());
        f.ok = false;
      } else {
        f.limits.retention_micros = d.value();
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      f.ok = false;
    }
  }
  // Flags win over the env var; the var is the zero-flag path CI's fleet
  // launcher uses (warn-once validation through the shared helper).
  if (f.shard_endpoints.empty()) {
    if (auto eps = GetValidatedEnv(
            kEnvShardEndpoints,
            [](const std::string& value) { return !value.empty(); },
            "a comma-separated shard endpoint list")) {
      f.shard_endpoints.push_back(*eps);
    }
  }
  return f;
}

// Signal handlers may only touch async-signal-safe state; a watcher
// thread polls this flag and performs the actual (mutex-taking) drain.
volatile std::sig_atomic_t g_signalled = 0;

void OnSignal(int) { g_signalled = 1; }

int Main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  if (!flags.ok || (flags.trace_path.empty() && flags.data_dir.empty())) {
    return Usage();
  }
  if (flags.socket_path.empty() && flags.tcp_port < 0) {
    std::fprintf(stderr,
                 "error[CLI-E004]: no listener: pass --socket=<path> (or "
                 "set %s) or --tcp-port=N\n",
                 kEnvServerSocket);
    return 2;
  }

  // Always-on flight recorder: ring capacity must be set before the
  // first thread records (rings are sized at first use).
  if (const auto cap = GetValidatedEnvCount(kEnvFlightBuffer)) {
    obs::Tracer::Global().SetRingCapacity(static_cast<size_t>(*cap));
  }
  obs::Tracer::Global().SetEnabled(true);

  // Distributed fabric: each store shard becomes a RemoteShardBackend
  // talking to its own shard daemon; shard count is the endpoint count.
  std::shared_ptr<std::vector<dist::ShardEndpoint>> endpoints;
  if (!flags.shard_endpoints.empty()) {
    std::string csv;
    for (const std::string& e : flags.shard_endpoints) {
      if (!csv.empty()) csv += ',';
      csv += e;
    }
    auto parsed = dist::ParseShardEndpoints(csv);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--shard-endpoint: error[CLI-E006]: %s\n",
                   parsed.status().message().c_str());
      return 2;
    }
    if (!flags.data_dir.empty()) {
      std::fprintf(stderr,
                   "--shard-endpoint: error[CLI-E006]: incompatible with "
                   "--data-dir (run each shardd with its own --data-dir "
                   "instead)\n");
      return 2;
    }
    if (flags.shards_set && flags.shards != parsed->size()) {
      std::fprintf(stderr,
                   "--shards: error[CLI-E005]: --shards=%zu disagrees with "
                   "%zu shard endpoint(s)\n",
                   flags.shards, parsed->size());
      return 2;
    }
    if (parsed->size() > kMaxStoreShards) {
      std::fprintf(stderr,
                   "--shard-endpoint: error[CLI-E006]: %zu endpoints exceed "
                   "the %zu-shard store limit\n",
                   parsed->size(), kMaxStoreShards);
      return 2;
    }
    endpoints = std::make_shared<std::vector<dist::ShardEndpoint>>(
        std::move(parsed).value());
  }

  EventStoreOptions store_options;
  store_options.backend = flags.backend;
  store_options.shards = flags.shards;
  if (endpoints != nullptr) {
    store_options.shards = endpoints->size();
    store_options.dist_fanout_threads =
        std::min<size_t>(endpoints->size(), 16);
    store_options.shard_backend_factory =
        [endpoints](size_t shard, const EventStoreOptions& o)
        -> std::unique_ptr<StorageBackend> {
      auto client = std::make_shared<dist::ShardClient>(
          (*endpoints)[shard], static_cast<uint32_t>(shard), o.backend);
      return std::make_unique<dist::RemoteShardBackend>(
          std::move(client), o.backend, o.cost_model);
    };
  }

  // With --data-dir the store comes out of crash recovery (snapshot +
  // WAL replay; --trace is only the first-boot fallback) and every
  // accepted ingest batch is fsync'd to the WAL before it is acked.
  std::unique_ptr<EventStore> store;
  std::unique_ptr<WalWriter> wal;
  uint64_t recovered_through = 0;
  FileEnv* env = FileEnv::Posix();
  if (!flags.data_dir.empty()) {
    auto recovered =
        OpenDataDir(env, flags.data_dir, flags.trace_path, store_options);
    if (!recovered.ok()) {
      std::fprintf(stderr, "%s\n", recovered.status().ToString().c_str());
      return 1;
    }
    store = std::move(recovered->store);
    recovered_through = recovered->next_seq - 1;
    std::printf("serverd: recovered %llu events (%llu batches, %llu "
                "duplicates skipped, %llu torn bytes truncated) from %s\n",
                static_cast<unsigned long long>(recovered->wal.events_applied),
                static_cast<unsigned long long>(
                    recovered->wal.batches_applied),
                static_cast<unsigned long long>(
                    recovered->wal.duplicates_skipped),
                static_cast<unsigned long long>(
                    recovered->wal.truncated_bytes),
                flags.data_dir.c_str());
    if (!recovered->wal.diagnostic.empty()) {
      std::printf("serverd: wal repair: %s\n",
                  recovered->wal.diagnostic.c_str());
    }
    auto writer = WalWriter::Open(env, flags.data_dir + "/wal.log",
                                  recovered->wal_valid_bytes,
                                  recovered->next_seq);
    if (!writer.ok()) {
      std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
      return 1;
    }
    wal = std::move(writer).value();
  } else {
    // With remote shards the load path itself RPCs (append batches, the
    // final seal): a dead daemon surfaces as a typed DST-E00x here, not
    // a crash.
    try {
      auto loaded = LoadTraceFile(flags.trace_path, store_options);
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
        return 1;
      }
      store = std::move(loaded).value();
    } catch (const dist::DistError& e) {
      std::fprintf(stderr, "serverd: distributed load failed: %s\n",
                   e.what());
      return 1;
    }
  }

  service::SessionManager manager(store.get(), flags.limits);
  if (wal != nullptr) {
    manager.EnableDurability(wal.get(), recovered_through);
  }
  service::ServerOptions server_options;
  server_options.unix_socket_path = flags.socket_path;
  server_options.tcp_port = flags.tcp_port;
  service::Server server(&manager, server_options);
  if (auto s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::thread signal_watcher([&server] {
    while (g_signalled == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.RequestShutdown();
  });

  if (endpoints != nullptr) {
    std::printf("serverd: distributed fabric: %zu remote shard(s):",
                endpoints->size());
    for (const auto& ep : *endpoints) {
      std::printf(" %s", ep.ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("serverd: serving %zu events", store->NumEvents());
  if (!flags.socket_path.empty()) {
    std::printf(" on %s", flags.socket_path.c_str());
  }
  if (server.port() >= 0) std::printf(" (tcp 127.0.0.1:%d)", server.port());
  std::printf("\nserverd: ready\n");
  std::fflush(stdout);

  server.Wait();
  g_signalled = 1;  // release the watcher if the drain came from a client
  signal_watcher.join();
  server.Shutdown();
  if (wal != nullptr) {
    // Every acked batch is applied once the scheduler joins; fold them
    // into a fresh snapshot and reset the WAL so the next boot replays
    // nothing. A failure here is safe — the WAL still covers the
    // batches, recovery just replays them.
    manager.StopAndJoin();
    if (auto st = SnapshotDataDir(env, flags.data_dir, *store,
                                  manager.AppliedThrough(), wal.get());
        !st.ok()) {
      std::fprintf(stderr, "serverd: drain snapshot failed: %s\n",
                   st.ToString().c_str());
    } else {
      std::printf("serverd: snapshot through batch %llu written to %s\n",
                  static_cast<unsigned long long>(manager.AppliedThrough()),
                  flags.data_dir.c_str());
    }
  }
  std::printf("serverd: drained\n");
  return 0;
}

}  // namespace
}  // namespace aptrace

int main(int argc, char** argv) { return aptrace::Main(argc, argv); }
