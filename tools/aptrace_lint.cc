// aptrace_lint — static analysis for BDL scripts.
//
//   aptrace_lint [flags] <script.bdl>...
//     --trace=<trace.tsv>  load a trace so trace-aware checks run
//                          (unmatchable patterns, windows/budgets outside
//                          the trace horizon)
//     --sarif=<file|->     also write a SARIF 2.1.0 log for all scripts
//     --werror             treat warnings as errors
//
// Every problem in every script is reported in one invocation: the lexer,
// parser, and analyzer all recover and continue, and the lint pass adds
// semantic warnings (see docs/bdl_lint.md for the code catalog). Human
// diagnostics go to stdout in caret style; exit status is 0 when clean,
// 1 when any error (or, under --werror, warning) was reported, 2 on usage
// or I/O problems.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bdl/diagnostics.h"
#include "bdl/lint.h"
#include "storage/trace_io.h"

namespace aptrace {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: aptrace_lint [--trace=<trace.tsv>] [--sarif=<file|->]"
               " [--werror] <script.bdl>...\n");
  return 2;
}

bool TakeValue(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

int Main(int argc, char** argv) {
  std::string trace_path;
  std::string sarif_path;
  bool werror = false;
  std::vector<std::string> scripts;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (TakeValue(a, "--trace", &trace_path) ||
        TakeValue(a, "--sarif", &sarif_path)) {
      continue;
    }
    if (std::strcmp(a, "--werror") == 0) {
      werror = true;
    } else if (a[0] == '-' && a[1] != '\0') {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return Usage();
    } else {
      scripts.push_back(a);
    }
  }
  if (scripts.empty()) return Usage();

  std::unique_ptr<EventStore> store;
  if (!trace_path.empty()) {
    auto loaded = LoadTraceFile(trace_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 2;
    }
    store = std::move(loaded.value());
  }

  bdl::LintOptions options;
  options.store = store.get();

  size_t total_errors = 0;
  size_t total_warnings = 0;
  std::vector<bdl::FileDiagnostics> sarif_files;
  for (const std::string& path : scripts) {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "cannot open script: %s\n", path.c_str());
      return 2;
    }
    std::stringstream text;
    text << f.rdbuf();

    bdl::LintReport report = bdl::LintBdl(text.str(), options);
    if (werror) {
      for (bdl::Diagnostic& d : report.diagnostics) {
        if (d.severity == bdl::Severity::kWarning) {
          d.severity = bdl::Severity::kError;
          report.num_warnings--;
          report.num_errors++;
        }
      }
    }
    total_errors += report.num_errors;
    total_warnings += report.num_warnings;
    std::fputs(
        bdl::RenderHuman(text.str(), path, report.diagnostics).c_str(),
        stdout);
    sarif_files.push_back({path, std::move(report.diagnostics)});
  }

  if (!sarif_path.empty()) {
    const std::string sarif = bdl::RenderSarif(sarif_files);
    if (sarif_path == "-") {
      std::fputs(sarif.c_str(), stdout);
    } else {
      std::ofstream out(sarif_path);
      if (!out) {
        std::fprintf(stderr, "cannot write SARIF to %s\n",
                     sarif_path.c_str());
        return 2;
      }
      out << sarif;
    }
  }

  std::printf("%zu script%s checked: %zu error%s, %zu warning%s\n",
              scripts.size(), scripts.size() == 1 ? "" : "s", total_errors,
              total_errors == 1 ? "" : "s", total_warnings,
              total_warnings == 1 ? "" : "s");
  return total_errors > 0 ? 1 : 0;
}

}  // namespace
}  // namespace aptrace

int main(int argc, char** argv) { return aptrace::Main(argc, argv); }
