// aptrace_shardd — one shard's daemon in the distributed fabric.
//
//   aptrace_shardd --shard=N [options]
//       Host one raw StorageBackend (row or columnar — no catalog, no
//       sessions) behind the shard-RPC vocabulary (docs/distribution.md)
//       over the line-delimited JSON transport. The coordinator
//       (aptrace_serverd --shard-endpoint=...) loads rows into it, seals
//       it, and scatter-gathers scans across the fleet.
//         --shard=N           this daemon's shard number; the client
//                             verifies it at every connect (DST-E004)
//         --backend=row|columnar
//                             hosted backend kind (default:
//                             APTRACE_BACKEND env var, else row)
//         --port=N            loopback TCP listener; 0 = ephemeral
//         --socket=<path>     unix-domain listener (either or both)
//         --data-dir=<dir>    durable shard: accepted append batches are
//                             fsync'd to <dir>/wal.log before the ack,
//                             and boot replays the WAL back into the
//                             backend (same 36-byte codec as the
//                             coordinator's ingest WAL)
//         --partition-micros=N
//                             row-backend time-partition width (default:
//                             one simulated hour — must match the
//                             coordinator's store options)
//         --segment-rows=N    columnar segment rows (0 = backend default)
//
//   The same listeners answer HTTP GETs for /metrics and /healthz (no
//   sessions here, so /sessions 404s and /readyz mirrors liveness).
//
//   On start the daemon prints one machine-readable line to stdout:
//     shardd: ready shard=<n> tcp=127.0.0.1:<port>
//   (tools/aptrace_fleet and the fabric tests parse it to learn the
//   ephemeral port). SIGINT/SIGTERM or a `shard.shutdown` op drain
//   gracefully.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "dist/shard_service.h"
#include "obs/trace.h"
#include "service/server.h"
#include "storage/columnar_backend.h"
#include "storage/file_env.h"
#include "storage/row_store_backend.h"
#include "storage/wal.h"
#include "util/env.h"

namespace aptrace {
namespace {

struct Flags {
  long shard = -1;
  StorageBackendKind backend = DefaultStorageBackendKind();
  int tcp_port = -1;
  std::string socket_path;
  std::string data_dir;
  DurationMicros partition_micros = kMicrosPerHour;
  size_t segment_rows = 0;
  bool ok = true;
};

bool TakeValue(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

bool ParseCount(const char* flag, const std::string& value, long min,
                long* out) {
  char* end = nullptr;
  const long n = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || n < min) {
    std::fprintf(stderr,
                 "%s: error[CLI-E001]: expected an integer >= %ld, got "
                 "'%s'\n",
                 flag, min, value.c_str());
    return false;
  }
  *out = n;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: aptrace_shardd --shard=N [--backend=row|columnar] "
               "[--port=N] [--socket=<path>] [--data-dir=<dir>]\n"
               "  see the header comment of tools/aptrace_shardd.cc or "
               "docs/distribution.md\n");
  return 2;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  std::string v;
  long n = 0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (TakeValue(a, "--socket", &f.socket_path) ||
        TakeValue(a, "--data-dir", &f.data_dir)) {
      continue;
    }
    if (TakeValue(a, "--shard", &v)) {
      if (ParseCount("--shard", v, 0, &n) &&
          n < static_cast<long>(kMaxStoreShards)) {
        f.shard = n;
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--backend", &v)) {
      const auto parsed = ParseStorageBackendKind(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "--backend: error[CLI-E002]: expected 'row' or "
                     "'columnar', got '%s'\n",
                     v.c_str());
        f.ok = false;
      } else {
        f.backend = *parsed;
      }
    } else if (TakeValue(a, "--port", &v)) {
      if (!ParseCount("--port", v, 0, &n) || n > 65535) {
        f.ok = false;
      } else {
        f.tcp_port = static_cast<int>(n);
      }
    } else if (TakeValue(a, "--partition-micros", &v)) {
      if (ParseCount("--partition-micros", v, 1, &n)) {
        f.partition_micros = n;
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--segment-rows", &v)) {
      if (ParseCount("--segment-rows", v, 0, &n)) {
        f.segment_rows = static_cast<size_t>(n);
      } else {
        f.ok = false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      f.ok = false;
    }
  }
  return f;
}

volatile std::sig_atomic_t g_signalled = 0;

void OnSignal(int) { g_signalled = 1; }

int Main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  if (!flags.ok || flags.shard < 0) return Usage();
  if (flags.socket_path.empty() && flags.tcp_port < 0) {
    std::fprintf(stderr,
                 "error[CLI-E004]: no listener: pass --port=N (0 = "
                 "ephemeral) or --socket=<path>\n");
    return 2;
  }

  obs::Tracer::Global().SetEnabled(true);

  std::unique_ptr<StorageBackend> backend;
  if (flags.backend == StorageBackendKind::kColumnar) {
    backend = std::make_unique<ColumnarSegmentBackend>(CostModel{},
                                                       flags.segment_rows);
  } else {
    backend = std::make_unique<RowStoreBackend>(CostModel{},
                                                flags.partition_micros);
  }

  // Durable shard: replay the WAL into the backend (batches are in
  // sequence order, so the dense local ids come out identical to the
  // pre-crash assignment), then keep appending to it.
  std::unique_ptr<WalWriter> wal;
  FileEnv* env = FileEnv::Posix();
  if (!flags.data_dir.empty()) {
    if (!env->FileExists(flags.data_dir)) {
      if (auto s = env->CreateDir(flags.data_dir); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }
    const std::string wal_path = flags.data_dir + "/wal.log";
    uint64_t valid_bytes = 0;
    uint64_t next_seq = 1;
    if (env->FileExists(wal_path)) {
      auto bytes = env->ReadFileToString(wal_path);
      if (!bytes.ok()) {
        std::fprintf(stderr, "%s\n", bytes.status().ToString().c_str());
        return 1;
      }
      auto scan = ScanWalBytes(bytes.value());
      if (!scan.ok()) {
        std::fprintf(stderr, "%s\n", scan.status().ToString().c_str());
        return 1;
      }
      size_t replayed = 0;
      for (const WalBatch& batch : scan->batches) {
        for (const Event& e : batch.events) {
          backend->Append(e);
          replayed++;
        }
        next_seq = batch.seq + 1;
      }
      valid_bytes = scan->valid_bytes;
      std::fprintf(stderr, "shardd: replayed %zu events (%zu batches) from %s\n",
                   replayed, scan->batches.size(), wal_path.c_str());
      if (!scan->diagnostic.empty()) {
        std::fprintf(stderr, "shardd: wal repair: %s\n",
                     scan->diagnostic.c_str());
      }
    }
    auto writer = WalWriter::Open(env, wal_path, valid_bytes, next_seq);
    if (!writer.ok()) {
      std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
      return 1;
    }
    wal = std::move(writer).value();
  }

  dist::ShardService shard_service(static_cast<uint32_t>(flags.shard),
                                   std::move(backend), wal.get());

  service::ServerOptions server_options;
  server_options.unix_socket_path = flags.socket_path;
  server_options.tcp_port = flags.tcp_port;
  service::Server server(
      [&shard_service](const std::string& line, bool* shutdown_requested) {
        return shard_service.HandleLine(line, shutdown_requested);
      },
      /*manager=*/nullptr, server_options);
  if (auto s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::thread signal_watcher([&server] {
    while (g_signalled == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.RequestShutdown();
  });

  // Machine-readable ready line (tools/aptrace_fleet parses it).
  std::printf("shardd: ready shard=%ld", flags.shard);
  if (server.port() >= 0) std::printf(" tcp=127.0.0.1:%d", server.port());
  if (!flags.socket_path.empty()) {
    std::printf(" unix=%s", flags.socket_path.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);

  server.Wait();
  g_signalled = 1;
  signal_watcher.join();
  server.Shutdown();
  std::fprintf(stderr, "shardd: shard %ld drained (%zu events)\n",
               flags.shard, shard_service.backend().NumEvents());
  return 0;
}

}  // namespace
}  // namespace aptrace

int main(int argc, char** argv) { return aptrace::Main(argc, argv); }
