#ifndef APTRACE_TOOLS_APTRACE_SHELL_H_
#define APTRACE_TOOLS_APTRACE_SHELL_H_

#include <iosfwd>

#include "storage/event_store.h"

namespace aptrace::tools {

/// Execution knobs forwarded to every Session the shell creates.
struct ShellOptions {
  /// Scan worker threads for the responsive engine (1 = sequential, 0 =
  /// hardware concurrency). Results are identical either way.
  int scan_threads = 1;
};

/// The interactive analyst console (`aptrace shell --trace=...`): the
/// paper's monitor / pause / refine / resume loop at a prompt. Reads
/// commands from `in`, writes to `out`; returns the exit code. Scriptable
/// by piping commands (see tests/cli_smoke.cmake).
///
/// Commands:
///   start <file.bdl>     begin an analysis from a script file
///   refine <file.bdl>    pause + update the script through the Refiner
///   from <event-id>      begin an unconstrained backtrack from an event
///   step [n]             process until n more updates arrive (default 1)
///   run [duration]       run until done or simulated duration elapses
///   status               graph size, pending queue, elapsed, script
///   alerts [train-days]  run the anomaly detectors over the trace
///   path <object-id>     causal chain from the start to the object
///   dot <file>           write the graph as Graphviz DOT
///   json <file>          write the graph as JSON
///   fmt                  print the current script, canonically formatted
///   help                 this list
///   quit
int RunShell(EventStore* store, std::istream& in, std::ostream& out,
             ShellOptions options = {});

}  // namespace aptrace::tools

#endif  // APTRACE_TOOLS_APTRACE_SHELL_H_
