// aptrace — command-line front end for the APTrace library.
//
//   aptrace scenarios
//       List the built-in staged attack cases.
//
//   aptrace export --scenario=<name> --out=<trace.tsv> [--script-out=<f>]
//       Stage an attack case and save its audit trace (and the unguided
//       v1 BDL script) to disk.
//         --trace-format=v1|v2  container: v1 text (default) or the v2
//                             binary columnar container; `run`/`shell`/
//                             `detect` auto-detect either on load
//
//   aptrace run --trace=<trace.tsv> --script=<file.bdl> [options]
//       Load a trace, run a BDL script over it, stream graph updates,
//       and write the requested outputs.
//         --baseline          use the execute-to-complete engine
//         --k=N               execution-window count (default 8)
//         --threads=N         scan worker threads (default: hardware
//                             concurrency; 1 = sequential path; results
//                             are identical for any N)
//         --backend=row|columnar
//                             storage backend (default: APTRACE_BACKEND
//                             env var, else row); graph output is
//                             bit-identical across backends — only the
//                             simulated scan cost differs
//         --shards=N          store shard count in [1, 64] (default:
//                             APTRACE_SHARDS env var, else 1); N > 1
//                             partitions the store by (host, time) and
//                             scans scatter-gather — graph output is
//                             bit-identical at any shard count
//         --sim-limit=<dur>   stop after this much simulated time (2h...)
//         --max-updates=N     stop after N updates
//         --dot=<file>        write the graph as Graphviz DOT
//         --json=<file>       write the graph as JSON
//         --metrics-out=<f>   write a metrics snapshot ("-" = stdout,
//                             *.json selects the JSON export)
//         --trace-out=<f>     record spans; write Chrome trace JSON
//         --profile           after the run, print the per-hop /
//                             per-rule query profile table plus one
//                             `profile:` JSON line (the profile observes
//                             the run — graphs are bit-identical with or
//                             without it)
//         --quiet             no per-update lines
//         --lint              lint the script against the loaded trace
//                             before running; errors abort the run
//         --werror            with --lint (implied): treat lint warnings
//                             as errors and refuse to run
//
//   aptrace investigate --scenario=<name>
//       Replay the scripted blue-team refinement loop for a case and
//       report whether the ground-truth chain was recovered.
//
//   aptrace shell --trace=<trace.tsv>
//       Interactive analyst console: start/refine/step/run/path/alerts —
//       the paper's monitor-pause-refine-resume loop at a prompt.
//
//   aptrace fmt --script=<file.bdl>
//       Compile a BDL script and print its canonical formatted form
//       (errors report line/column).
//
//   aptrace detect --trace=<trace.tsv> [--train-days=N]
//       Run the standard anomaly detectors over a trace (the first N
//       days train the baselines; default 60% of the span) and print the
//       alerts — each is a valid starting point for `aptrace run`.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "bdl/formatter.h"
#include "bdl/lint.h"
#include "core/engine.h"
#include "core/query_profile.h"
#include "detect/detector.h"
#include "graph/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/trace_io.h"
#include "tools/aptrace_shell.h"
#include "util/string_util.h"
#include "util/worker_pool.h"
#include "workload/scenario.h"

namespace aptrace {
namespace {

struct Flags {
  std::string command;
  std::string scenario;
  std::string trace_path;
  std::string script_path;
  std::string out_path;
  std::string script_out_path;
  std::string dot_path;
  std::string json_path;
  std::string metrics_out;
  std::string trace_out;
  std::string sim_limit;
  size_t max_updates = 0;
  int k = 8;
  int threads = 0;  // scan workers; 0 = hardware concurrency
  int train_days = -1;
  StorageBackendKind backend = DefaultStorageBackendKind();
  size_t shards = DefaultShardCount();
  TraceFormat trace_format = TraceFormat::kTextV1;
  bool baseline = false;
  bool quiet = false;
  bool lint = false;
  bool werror = false;
  bool profile = false;
};

bool TakeValue(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

/// Validates a `--threads` value: a positive integer, clamped to the
/// worker pool's ceiling with a warning when larger. Scan workers
/// prefetch simulated I/O, so exceeding the machine's core count is
/// allowed (output is bit-identical at any thread count); only the pool
/// ceiling is enforced. Diagnostics follow the BDL renderer's
/// `severity[CODE]` convention so scripted callers can grep for the code.
bool ParseThreads(const std::string& value, int* out) {
  char* end = nullptr;
  const long n = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || n < 1) {
    std::fprintf(stderr,
                 "--threads: error[CLI-E001]: expected a positive integer "
                 "thread count, got '%s'\n",
                 value.c_str());
    return false;
  }
  constexpr long kCeiling = WorkerPool::kMaxThreads;
  if (n > kCeiling) {
    std::fprintf(stderr,
                 "--threads: warning[CLI-W001]: %ld exceeds the scan pool "
                 "ceiling of %ld thread(s); clamping to %ld\n",
                 n, kCeiling, kCeiling);
    *out = static_cast<int>(kCeiling);
  } else {
    *out = static_cast<int>(n);
  }
  return true;
}

/// Validates a `--backend` value against the storage layer's registry.
bool ParseBackend(const std::string& value, StorageBackendKind* out) {
  const auto parsed = ParseStorageBackendKind(value);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "--backend: error[CLI-E002]: expected 'row' or 'columnar', "
                 "got '%s'\n",
                 value.c_str());
    return false;
  }
  *out = *parsed;
  return true;
}

/// Validates a `--shards` value: an integer shard count in [1, 64]
/// (docs/sharding.md). Zero is rejected — a store needs at least one
/// shard — as is anything beyond the routing mask's 64-bit width.
bool ParseShards(const std::string& value, size_t* out) {
  char* end = nullptr;
  const long n = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || n < 1 ||
      n > static_cast<long>(kMaxStoreShards)) {
    std::fprintf(stderr,
                 "--shards: error[CLI-E005]: expected a shard count in "
                 "[1, 64], got '%s'\n",
                 value.c_str());
    return false;
  }
  *out = static_cast<size_t>(n);
  return true;
}

/// Validates a `--trace-format` value for `export`.
bool ParseTraceFormat(const std::string& value, TraceFormat* out) {
  if (value == "v1") {
    *out = TraceFormat::kTextV1;
    return true;
  }
  if (value == "v2") {
    *out = TraceFormat::kBinaryV2;
    return true;
  }
  std::fprintf(stderr,
               "--trace-format: error[CLI-E003]: expected 'v1' or 'v2', "
               "got '%s'\n",
               value.c_str());
  return false;
}

/// Store options shared by every command that loads a trace.
EventStoreOptions StoreOptions(const Flags& flags) {
  EventStoreOptions options;
  options.backend = flags.backend;
  options.shards = flags.shards;
  return options;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: aptrace <scenarios|export|run|investigate|detect|fmt|shell> [flags]\n"
      "  see the header comment of tools/aptrace_cli.cc or README.md\n");
  return 2;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  if (argc >= 2) f.command = argv[1];
  std::string v;
  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    if (TakeValue(a, "--scenario", &f.scenario) ||
        TakeValue(a, "--trace", &f.trace_path) ||
        TakeValue(a, "--script", &f.script_path) ||
        TakeValue(a, "--out", &f.out_path) ||
        TakeValue(a, "--script-out", &f.script_out_path) ||
        TakeValue(a, "--dot", &f.dot_path) ||
        TakeValue(a, "--json", &f.json_path) ||
        TakeValue(a, "--metrics-out", &f.metrics_out) ||
        TakeValue(a, "--trace-out", &f.trace_out) ||
        TakeValue(a, "--sim-limit", &f.sim_limit)) {
      continue;
    }
    if (TakeValue(a, "--max-updates", &v)) {
      f.max_updates = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (TakeValue(a, "--train-days", &v)) {
      f.train_days = std::atoi(v.c_str());
    } else if (TakeValue(a, "--k", &v)) {
      f.k = std::atoi(v.c_str());
    } else if (TakeValue(a, "--threads", &v)) {
      if (!ParseThreads(v, &f.threads)) f.command.clear();
    } else if (TakeValue(a, "--backend", &v)) {
      if (!ParseBackend(v, &f.backend)) f.command.clear();
    } else if (TakeValue(a, "--shards", &v)) {
      if (!ParseShards(v, &f.shards)) f.command.clear();
    } else if (TakeValue(a, "--trace-format", &v)) {
      if (!ParseTraceFormat(v, &f.trace_format)) f.command.clear();
    } else if (std::strcmp(a, "--baseline") == 0) {
      f.baseline = true;
    } else if (std::strcmp(a, "--quiet") == 0) {
      f.quiet = true;
    } else if (std::strcmp(a, "--lint") == 0) {
      f.lint = true;
    } else if (std::strcmp(a, "--werror") == 0) {
      f.lint = true;
      f.werror = true;
    } else if (std::strcmp(a, "--profile") == 0) {
      f.profile = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      f.command.clear();
    }
  }
  return f;
}

int CmdScenarios() {
  std::printf("%-18s %s\n", "name", "description");
  for (const std::string& name : workload::AttackCaseNames()) {
    auto built = workload::BuildAttackCase(name, workload::TraceConfig::Small());
    if (!built.ok()) continue;
    std::printf("%-18s %s\n", name.c_str(),
                built->scenario.description.c_str());
  }
  return 0;
}

int CmdExport(const Flags& flags) {
  if (flags.scenario.empty() || flags.out_path.empty()) return Usage();
  workload::TraceConfig config;
  config.backend = flags.backend;
  auto built = workload::BuildAttackCase(flags.scenario, config);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  if (auto s =
          SaveTraceFile(*built->store, flags.out_path, flags.trace_format);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu events / %zu objects to %s\n",
              built->store->NumEvents(), built->store->catalog().size(),
              flags.out_path.c_str());
  const std::string script_path =
      flags.script_out_path.empty() ? flags.out_path + ".bdl"
                                    : flags.script_out_path;
  std::ofstream sf(script_path);
  if (sf) {
    sf << built->scenario.bdl_scripts[0];
    std::printf("wrote the unguided v1 script to %s\n", script_path.c_str());
  }
  std::printf("alert event id %llu at %s; %zu refinement scripts staged\n",
              static_cast<unsigned long long>(built->scenario.alert_event),
              FormatBdlTime(built->scenario.alert.timestamp).c_str(),
              built->scenario.bdl_scripts.size());
  return 0;
}

int CmdRun(const Flags& flags) {
  if (flags.trace_path.empty() || flags.script_path.empty()) return Usage();

  // Enable span recording before the store loads so Seal and the scans
  // all land in the dump.
  if (!flags.trace_out.empty()) obs::Tracer::Global().SetEnabled(true);
  auto store = LoadTraceFile(flags.trace_path, StoreOptions(flags));
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  std::ifstream sf(flags.script_path);
  if (!sf) {
    std::fprintf(stderr, "cannot open script: %s\n",
                 flags.script_path.c_str());
    return 1;
  }
  std::stringstream script;
  script << sf.rdbuf();

  if (flags.lint) {
    bdl::LintOptions lint_options;
    lint_options.store = store.value().get();
    const bdl::LintReport report = bdl::LintBdl(script.str(), lint_options);
    if (!report.diagnostics.empty()) {
      std::fputs(bdl::RenderHuman(script.str(), flags.script_path,
                                  report.diagnostics)
                     .c_str(),
                 stderr);
    }
    if (!report.ok() || (flags.werror && report.num_warnings > 0)) {
      std::fprintf(stderr,
                   "lint: %zu error(s), %zu warning(s)%s — not running\n",
                   report.num_errors, report.num_warnings,
                   flags.werror && report.ok() ? " (warnings are errors)"
                                               : "");
      return 1;
    }
  }

  SimClock clock;
  SessionOptions options;
  options.use_baseline = flags.baseline;
  options.num_windows_k = flags.k;
  options.scan_threads = flags.threads;
  Session session(store.value().get(), &clock, options);
  if (auto s = session.Start(script.str()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("start point: event %llu, node %s\n",
              static_cast<unsigned long long>(
                  session.context().start_event.id),
              store.value()
                  ->catalog()
                  .Get(session.context().start_node)
                  .Label()
                  .c_str());

  RunLimits limits;
  limits.max_updates = flags.max_updates;
  if (!flags.sim_limit.empty()) {
    auto d = ParseBdlDuration(flags.sim_limit);
    if (!d.ok()) {
      std::fprintf(stderr, "%s\n", d.status().ToString().c_str());
      return 1;
    }
    limits.sim_time = d.value();
  }
  if (!flags.quiet) {
    limits.on_update = [&](const UpdateBatch& b) {
      std::printf("[%8s] +%zu edges (%zu new nodes) -> %zu edges / %zu "
                  "nodes\n",
                  FormatDuration(b.sim_time - session.stats().run_start)
                      .c_str(),
                  b.new_edges, b.new_nodes, b.total_edges, b.total_nodes);
    };
  }

  auto reason = session.Step(limits);
  if (!reason.ok()) {
    std::fprintf(stderr, "%s\n", reason.status().ToString().c_str());
    return 1;
  }
  if (auto s = session.Finish(); !s.ok()) {
    std::fprintf(stderr, "finish: %s\n", s.ToString().c_str());
  }
  std::printf(
      "\n%s after %s simulated: %zu edges / %zu nodes, %zu updates, "
      "max hop %d\n",
      StopReasonName(reason.value()),
      FormatDuration(clock.NowMicros() - session.stats().run_start).c_str(),
      session.graph().NumEdges(), session.graph().NumNodes(),
      session.update_log().size(), session.graph().MaxHop());

  if (flags.profile) {
    if (const QueryProfile* profile = session.profile();
        profile != nullptr) {
      std::fputs(
          RenderQueryProfileTable(
              *profile,
              store.value()->backend().capabilities().probe_unit)
              .c_str(),
          stdout);
      std::printf("profile: %s\n", QueryProfileToJson(*profile).c_str());
    } else {
      std::fprintf(stderr,
                   "--profile: warning[CLI-W002]: the baseline engine "
                   "keeps no query profile\n");
    }
  }

  if (!flags.dot_path.empty()) {
    DotOptions dot_options;
    dot_options.alert_event = session.context().start_event.id;
    if (auto s = WriteDotFile(session.graph(), store.value()->catalog(),
                              flags.dot_path, dot_options);
        s.ok()) {
      std::printf("DOT written to %s\n", flags.dot_path.c_str());
    }
  }
  if (!flags.json_path.empty()) {
    if (auto s = WriteGraphJsonFile(session.graph(),
                                    store.value()->catalog(),
                                    flags.json_path);
        s.ok()) {
      std::printf("JSON written to %s\n", flags.json_path.c_str());
    }
  }
  if (!flags.metrics_out.empty()) {
    if (auto s = obs::WriteMetricsFile(obs::Metrics(), flags.metrics_out);
        !s.ok()) {
      std::fprintf(stderr, "metrics: %s\n", s.ToString().c_str());
    } else if (flags.metrics_out != "-") {
      std::printf("metrics written to %s\n", flags.metrics_out.c_str());
    }
  }
  if (!flags.trace_out.empty()) {
    if (auto s = obs::Tracer::Global().WriteChromeTrace(flags.trace_out);
        !s.ok()) {
      std::fprintf(stderr, "trace: %s\n", s.ToString().c_str());
    } else if (flags.trace_out != "-") {
      std::printf("trace written to %s (load in ui.perfetto.dev)\n",
                  flags.trace_out.c_str());
    }
  }
  return 0;
}

int CmdInvestigate(const Flags& flags) {
  if (flags.scenario.empty()) return Usage();
  workload::TraceConfig investigate_config;
  investigate_config.backend = flags.backend;
  auto built = workload::BuildAttackCase(flags.scenario, investigate_config);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  const workload::AttackScenario& scenario = built->scenario;
  std::printf("%s — %s\n\n", scenario.title.c_str(),
              scenario.description.c_str());

  SimClock clock;
  SessionOptions options;
  options.num_windows_k = flags.k;
  options.scan_threads = flags.threads;
  Session session(built->store.get(), &clock, options);
  const auto found = [&] {
    return workload::ChainRecovered(session.graph(), scenario);
  };

  if (auto s = session.Start(scenario.bdl_scripts[0]); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  RunLimits peek;
  peek.max_updates = 5;
  peek.sim_time = 3 * kMicrosPerMinute;
  peek.should_stop = found;
  (void)session.Step(peek);
  std::printf("v1: %zu events after the first look (%s)\n",
              session.graph().NumEdges(),
              FormatDuration(clock.NowMicros()).c_str());

  for (size_t v = 1; v < scenario.bdl_scripts.size() && !found(); ++v) {
    (void)session.UpdateScript(scenario.bdl_scripts[v]);
    RunLimits limits;
    limits.should_stop = found;
    if (v + 1 < scenario.bdl_scripts.size()) {
      limits.max_updates = 10;
      limits.sim_time = 2 * kMicrosPerMinute;
    }
    (void)session.Step(limits);
    std::printf("v%zu: refiner=%s, %zu events (%s)\n", v + 1,
                RefineActionName(session.last_refine_action()),
                session.graph().NumEdges(),
                FormatDuration(clock.NowMicros()).c_str());
  }

  std::printf("\nchain recovered: %s; events checked: %zu\n",
              found() ? "yes" : "NO", session.graph().NumEdges());
  for (ObjectId id : scenario.ground_truth) {
    std::printf("  %-55s %s\n",
                built->store->catalog().Get(id).Label().c_str(),
                session.graph().HasNode(id) ? "found" : "missing");
  }
  return found() ? 0 : 1;
}

int CmdFmt(const Flags& flags) {
  if (flags.script_path.empty()) return Usage();
  std::ifstream sf(flags.script_path);
  if (!sf) {
    std::fprintf(stderr, "cannot open script: %s\n",
                 flags.script_path.c_str());
    return 1;
  }
  std::stringstream text;
  text << sf.rdbuf();
  auto spec = bdl::CompileBdl(text.str());
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::fputs(bdl::FormatSpec(spec.value()).c_str(), stdout);
  return 0;
}

int CmdDetect(const Flags& flags) {
  if (flags.trace_path.empty()) return Usage();
  auto store = LoadTraceFile(flags.trace_path, StoreOptions(flags));
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  const TimeMicros span =
      (*store)->MaxTime() - (*store)->MinTime();
  const TimeMicros train_until =
      flags.train_days >= 0
          ? (*store)->MinTime() + flags.train_days * kMicrosPerDay
          : (*store)->MinTime() + span * 6 / 10;
  std::printf("training on events before %s\n",
              FormatBdlTime(train_until).c_str());

  auto pipeline = detect::DetectorPipeline::Standard();
  const auto alerts = pipeline.Run(**store, train_until);
  std::printf("%zu alerts\n", alerts.size());
  for (const auto& a : alerts) {
    const Event& e = (*store)->Get(a.event);
    std::printf("[%.1f] %-20s event %-8llu %s  %s\n", a.severity,
                a.rule.c_str(), static_cast<unsigned long long>(a.event),
                FormatBdlTime(e.timestamp).c_str(), a.message.c_str());
  }
  return 0;
}

int CmdShell(const Flags& flags) {
  if (flags.trace_path.empty()) return Usage();
  auto store = LoadTraceFile(flags.trace_path, StoreOptions(flags));
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  tools::ShellOptions shell_options;
  shell_options.scan_threads = flags.threads;
  return tools::RunShell(store.value().get(), std::cin, std::cout,
                         shell_options);
}

int Main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  if (flags.command == "scenarios") return CmdScenarios();
  if (flags.command == "detect") return CmdDetect(flags);
  if (flags.command == "fmt") return CmdFmt(flags);
  if (flags.command == "shell") return CmdShell(flags);
  if (flags.command == "export") return CmdExport(flags);
  if (flags.command == "run") return CmdRun(flags);
  if (flags.command == "investigate") return CmdInvestigate(flags);
  return Usage();
}

}  // namespace
}  // namespace aptrace

int main(int argc, char** argv) { return aptrace::Main(argc, argv); }
