#!/usr/bin/env python3
"""Sync-discipline lint: raw standard-library locking is confined to the
annotated wrapper layer.

src/util/sync.{h,cc} is the only code allowed to name std::mutex,
std::lock_guard, std::unique_lock, std::condition_variable and friends
(or include their headers). Everything else must lock through
aptrace::Mutex / MutexLock / CondVar, which carry the Clang Thread Safety
annotations and the Debug lock-order checker — a raw primitive anywhere
else silently opts out of both. docs/concurrency.md states the policy;
CI runs this next to clang-tidy.

Usage: check_sync_discipline.py [repo_root]
Exits 0 when clean, 1 with file:line diagnostics otherwise.
"""

import os
import re
import sys

SCAN_DIRS = ("src", "tools", "bench", "tests")
EXTENSIONS = (".h", ".cc")
ALLOWED = {os.path.join("src", "util", "sync.h"),
           os.path.join("src", "util", "sync.cc")}

BANNED_TOKENS = re.compile(
    r"std\s*::\s*("
    r"mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable(_any)?"
    r")\b")
BANNED_INCLUDES = re.compile(
    r"#\s*include\s*<(mutex|condition_variable|shared_mutex)>")

# Comments and string/char literals can legitimately mention the banned
# names (e.g. sync.h's own documentation pattern, error messages); strip
# them before matching, preserving newlines so line numbers survive.
STRIP = re.compile(
    r"//[^\n]*"
    r"|/\*.*?\*/"
    r'|"(?:[^"\\\n]|\\.)*"'
    r"|'(?:[^'\\\n]|\\.)*'",
    re.DOTALL)


def stripped(text):
    return STRIP.sub(lambda m: re.sub(r"[^\n]", " ", m.group(0)), text)


def check_file(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8") as f:
        text = stripped(f.read())
    findings = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for pattern, why in ((BANNED_INCLUDES, "raw locking header"),
                             (BANNED_TOKENS, "raw locking primitive")):
            m = pattern.search(line)
            if m:
                findings.append((rel, lineno, m.group(0).strip(), why))
    return findings


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = []
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if not name.endswith(EXTENSIONS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                if rel in ALLOWED:
                    continue
                findings.extend(check_file(root, rel))
    for rel, lineno, token, why in findings:
        print(f"{rel}:{lineno}: {why} `{token}` outside src/util/sync.* "
              "— use aptrace::Mutex / MutexLock / CondVar (util/sync.h)")
    if findings:
        print(f"\ncheck_sync_discipline: {len(findings)} violation(s). "
              "The annotated wrappers in src/util/sync.h are the only "
              "sanctioned locking API; see docs/concurrency.md.")
        return 1
    print("check_sync_discipline: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
