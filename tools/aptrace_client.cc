// aptrace_client — command-line client for aptrace_serverd.
//
//   aptrace_client <op> [--socket=<path>] [--tcp-port=N] [flags]
//       Connects to the daemon (unix socket from --socket or the
//       APTRACE_SERVER_SOCKET env var; or loopback TCP) and speaks the
//       line-delimited JSON protocol of docs/service.md.
//
//   Ops:
//     open --script=<file.bdl> [--weight=N] [--threads=N]
//          [--window-budget=N] [--sim-budget-us=N] [--start-event=N]
//         Open a session; prints its id.
//     run --script=<file.bdl> [open flags] [--json=<file>] [--quiet]
//         [--profile]
//         Open a session, poll it to completion streaming update lines,
//         then fetch the final graph. --json writes the exact graph
//         bytes the daemon serves (byte-identical to `aptrace run
//         --json` on the same trace and script). --profile additionally
//         fetches the query profile and prints the per-hop / per-rule
//         breakdown table plus one machine-readable `profile:` line.
//         --resume=<ckpt> (alias --from=) resumes a checkpointed session
//         instead of opening a fresh script, then polls it to completion
//         the same way.
//     poll --session=N [--cursor=N] [--max=N]
//         One poll; prints the raw JSON response.
//     cancel --session=N
//     checkpoint --session=N --out=<file>
//     resume --from=<file> [open flags]
//     stats [--session=N]
//     profile --session=N
//         Query profile of a session: the rendered breakdown table plus
//         the raw response line (see docs/observability.md).
//     http --path=</metrics|/healthz|/readyz|/sessions>
//         One HTTP GET over the daemon socket — a curl-free scrape.
//         Prints the response body; exits nonzero unless the status is
//         200.
//     top [--interval-ms=N] [--iterations=N]
//         Refreshing per-session view over /sessions: scheduler state,
//         fair-share vtime, consumed sim time, and windows/s +
//         sim-micros/s rates from scrape deltas. --iterations=0 (the
//         default) refreshes until interrupted.
//     ingest --events=<file>       file holds a JSON array of events
//     shutdown                     ask the daemon to drain and exit
//     connect
//         Interactive shell: each line typed is sent as one protocol
//         request (raw JSON passes through; `ops` lists shorthand forms
//         like `poll 3` and `stats` that are expanded for you).
//
//   Every response is a single JSON line; errors carry an SRV-E0xx code
//   and the client exits nonzero.

#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "core/query_profile.h"
#include "obs/json_dict.h"
#include "service/json.h"
#include "util/env.h"
#include "util/string_util.h"

namespace aptrace {
namespace {

struct Flags {
  std::string op;
  std::string socket_path;
  int tcp_port = -1;
  std::string script_path;
  std::string json_path;
  std::string out_path;
  std::string from_path;
  std::string events_path;
  uint64_t session = 0;
  bool has_session = false;
  uint64_t cursor = 0;
  uint64_t max = 0;
  uint64_t weight = 1;
  int threads = 0;
  long window_budget = -1;
  long sim_budget_us = -1;
  long start_event = -1;
  bool quiet = false;
  bool profile = false;
  std::string http_path;
  uint64_t interval_ms = 1000;
  uint64_t iterations = 0;
  bool ok = true;
};

bool TakeValue(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

bool ParseU64(const char* flag, const std::string& value, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0') {
    std::fprintf(stderr,
                 "%s: error[CLI-E001]: expected a non-negative integer, "
                 "got '%s'\n",
                 flag, value.c_str());
    return false;
  }
  *out = n;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: aptrace_client "
      "<open|run|poll|cancel|checkpoint|resume|stats|profile|http|top|"
      "ingest|shutdown|connect> [flags]\n"
      "  see the header comment of tools/aptrace_client.cc or "
      "docs/service.md\n");
  return 2;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  if (argc >= 2) f.op = argv[1];
  if (auto s = GetValidatedEnv(
          kEnvServerSocket,
          [](const std::string& v) { return !v.empty(); },
          "a non-empty unix socket path")) {
    f.socket_path = *s;
  }
  std::string v;
  uint64_t n = 0;
  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    if (TakeValue(a, "--socket", &f.socket_path) ||
        TakeValue(a, "--script", &f.script_path) ||
        TakeValue(a, "--json", &f.json_path) ||
        TakeValue(a, "--out", &f.out_path) ||
        TakeValue(a, "--from", &f.from_path) ||
        TakeValue(a, "--resume", &f.from_path) ||  // alias of --from
        TakeValue(a, "--events", &f.events_path) ||
        TakeValue(a, "--path", &f.http_path)) {
      continue;
    }
    if (TakeValue(a, "--tcp-port", &v)) {
      if (ParseU64("--tcp-port", v, &n) && n <= 65535) {
        f.tcp_port = static_cast<int>(n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--session", &v)) {
      if (ParseU64("--session", v, &f.session)) {
        f.has_session = true;
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--cursor", &v)) {
      if (!ParseU64("--cursor", v, &f.cursor)) f.ok = false;
    } else if (TakeValue(a, "--max", &v)) {
      if (!ParseU64("--max", v, &f.max)) f.ok = false;
    } else if (TakeValue(a, "--weight", &v)) {
      if (!ParseU64("--weight", v, &f.weight)) f.ok = false;
    } else if (TakeValue(a, "--threads", &v)) {
      if (ParseU64("--threads", v, &n)) {
        f.threads = static_cast<int>(n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--window-budget", &v)) {
      if (ParseU64("--window-budget", v, &n)) {
        f.window_budget = static_cast<long>(n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--sim-budget-us", &v)) {
      if (ParseU64("--sim-budget-us", v, &n)) {
        f.sim_budget_us = static_cast<long>(n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--start-event", &v)) {
      if (ParseU64("--start-event", v, &n)) {
        f.start_event = static_cast<long>(n);
      } else {
        f.ok = false;
      }
    } else if (TakeValue(a, "--interval-ms", &v)) {
      if (!ParseU64("--interval-ms", v, &f.interval_ms)) {
        f.ok = false;
      } else if (f.interval_ms == 0) {
        std::fprintf(stderr,
                     "--interval-ms: error[CLI-E001]: expected a positive "
                     "integer\n");
        f.ok = false;
      }
    } else if (TakeValue(a, "--iterations", &v)) {
      if (!ParseU64("--iterations", v, &f.iterations)) f.ok = false;
    } else if (std::strcmp(a, "--quiet") == 0) {
      f.quiet = true;
    } else if (std::strcmp(a, "--profile") == 0) {
      f.profile = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      f.ok = false;
    }
  }
  return f;
}

/// One connection to the daemon: send a JSON line, read a JSON line.
class Connection {
 public:
  ~Connection() {
    if (fd_ >= 0) close(fd_);
  }

  bool Open(const Flags& flags) {
    if (!flags.socket_path.empty()) {
      fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd_ < 0) return Fail("socket");
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (flags.socket_path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "socket path too long: %s\n",
                     flags.socket_path.c_str());
        return false;
      }
      std::strncpy(addr.sun_path, flags.socket_path.c_str(),
                   sizeof(addr.sun_path) - 1);
      if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0) {
        return Fail(("connect " + flags.socket_path).c_str());
      }
      return true;
    }
    if (flags.tcp_port >= 0) {
      fd_ = socket(AF_INET, SOCK_STREAM, 0);
      if (fd_ < 0) return Fail("socket");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<uint16_t>(flags.tcp_port));
      if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0) {
        return Fail("connect 127.0.0.1");
      }
      return true;
    }
    std::fprintf(stderr,
                 "no daemon address: pass --socket=<path> (or set %s) or "
                 "--tcp-port=N\n",
                 kEnvServerSocket);
    return false;
  }

  /// Round trip: one request line out, one response line back.
  bool Call(const std::string& request, std::string* response) {
    if (!SendAll(request + "\n")) return false;
    size_t nl = 0;
    while ((nl = pending_.find('\n')) == std::string::npos) {
      char buf[4096];
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return Fail("recv (daemon closed the connection)");
      pending_.append(buf, static_cast<size_t>(n));
    }
    *response = pending_.substr(0, nl);
    pending_.erase(0, nl + 1);
    return true;
  }

  /// One HTTP GET over the same socket (the daemon sniffs the dialect):
  /// sends the request, reads to EOF — the server closes after one
  /// response — and splits status from body. Consumes the connection.
  bool HttpGet(const std::string& path, int* status, std::string* body) {
    if (!SendAll("GET " + path +
                 " HTTP/1.1\r\nHost: aptrace\r\nConnection: close\r\n\r\n")) {
      return false;
    }
    std::string raw;
    for (;;) {
      char buf[4096];
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) return Fail("recv");
      if (n == 0) break;
      raw.append(buf, static_cast<size_t>(n));
    }
    const size_t header_end = raw.find("\r\n\r\n");
    if (header_end == std::string::npos ||
        std::sscanf(raw.c_str(), "HTTP/%*s %d", status) != 1) {
      std::fprintf(stderr, "malformed HTTP response from daemon\n");
      return false;
    }
    *body = raw.substr(header_end + 4);
    return true;
  }

 private:
  bool SendAll(const std::string& out) {
    size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = send(fd_, out.data() + off, out.size() - off, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Fail("send");
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  static bool Fail(const char* what) {
    std::fprintf(stderr, "%s: %s\n", what,
                 aptrace::ErrnoMessage(errno).c_str());
    return false;
  }

  int fd_ = -1;
  std::string pending_;
};

/// Applies the shared open/resume flags to a request dict.
void AddOpenOptions(const Flags& flags, obs::JsonDict* d) {
  d->Add("weight", flags.weight);
  if (flags.threads > 0) {
    d->Add("scan_threads", static_cast<int64_t>(flags.threads));
  }
  if (flags.window_budget >= 0) {
    d->Add("window_budget", static_cast<uint64_t>(flags.window_budget));
  }
  if (flags.sim_budget_us >= 0) {
    d->Add("sim_budget", static_cast<int64_t>(flags.sim_budget_us));
  }
  if (flags.start_event >= 0) {
    d->Add("start_event", static_cast<uint64_t>(flags.start_event));
  }
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Parses a response line; exits with the server's error text on !ok.
service::JsonValue MustParse(const std::string& response) {
  auto parsed = service::ParseJson(response);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad response from daemon: %s\n",
                 response.c_str());
    // Single-threaded CLI; no other thread can race the exit handlers.
    std::exit(1);  // NOLINT(concurrency-mt-unsafe)
  }
  return std::move(parsed.value());
}

bool IsError(const service::JsonValue& resp) {
  return !resp.GetBool("ok", false);
}

int PrintError(const service::JsonValue& resp) {
  std::fprintf(stderr, "%s: %s\n", resp.GetString("code", "SRV-E001").c_str(),
               resp.GetString("error", "request failed").c_str());
  return 1;
}

/// `open` / `resume` round trip; returns the new session id or -1.
long OpenSession(Connection* conn, const Flags& flags) {
  obs::JsonDict d;
  if (flags.op == "resume" || !flags.from_path.empty()) {
    d.Add("op", "resume");
    d.Add("path", flags.from_path);
  } else {
    std::string script;
    if (!ReadFile(flags.script_path, &script)) return -1;
    d.Add("op", "open");
    d.Add("bdl", script);
  }
  AddOpenOptions(flags, &d);
  std::string response;
  if (!conn->Call(d.Str(), &response)) return -1;
  const auto resp = MustParse(response);
  if (IsError(resp)) {
    PrintError(resp);
    return -1;
  }
  return static_cast<long>(resp.GetUint("session"));
}

/// Polls `session` until a terminal state, streaming update lines.
/// Returns the terminal state name, or "" on a transport error.
std::string PollToEnd(Connection* conn, uint64_t session, bool quiet) {
  uint64_t cursor = 0;
  for (;;) {
    obs::JsonDict d;
    d.Add("op", "poll");
    d.Add("session", session);
    d.Add("cursor", cursor);
    std::string response;
    if (!conn->Call(d.Str(), &response)) return "";
    const auto resp = MustParse(response);
    if (IsError(resp)) {
      PrintError(resp);
      return "";
    }
    if (const service::JsonValue* batches = resp.Find("batches");
        batches != nullptr && batches->IsArray() && !quiet) {
      for (const service::JsonValue& b : batches->items) {
        std::printf("[seq %4llu] sim %lld: +%llu edges (%llu new nodes) "
                    "-> %llu edges / %llu nodes\n",
                    static_cast<unsigned long long>(b.GetUint("seq")),
                    static_cast<long long>(b.GetInt("sim_time")),
                    static_cast<unsigned long long>(b.GetUint("new_edges")),
                    static_cast<unsigned long long>(b.GetUint("new_nodes")),
                    static_cast<unsigned long long>(
                        b.GetUint("total_edges")),
                    static_cast<unsigned long long>(
                        b.GetUint("total_nodes")));
      }
    }
    cursor = resp.GetUint("next_cursor", cursor);
    if (resp.GetBool("terminal", false)) {
      const std::string state = resp.GetString("state");
      const std::string detail = resp.GetString("detail");
      if (!quiet) {
        std::printf("session %llu: %s%s%s\n",
                    static_cast<unsigned long long>(session), state.c_str(),
                    detail.empty() ? "" : " — ", detail.c_str());
      }
      return state;
    }
    // The daemon streams as it goes; a short client-side breather keeps
    // the poll loop from busy-spinning between quanta.
    usleep(2000);
  }
}

/// Fetches the final graph JSON; the value is the exact bytes the CLI's
/// --json output would contain.
bool FetchGraph(Connection* conn, uint64_t session, std::string* graph) {
  obs::JsonDict d;
  d.Add("op", "graph");
  d.Add("session", session);
  std::string response;
  if (!conn->Call(d.Str(), &response)) return false;
  const auto resp = MustParse(response);
  if (IsError(resp)) {
    PrintError(resp);
    return false;
  }
  *graph = resp.GetString("graph");
  return true;
}

ProfileBucket BucketFromJson(const service::JsonValue& v) {
  ProfileBucket b;
  b.windows = v.GetUint("windows");
  b.rows = v.GetUint("rows");
  b.rows_filtered = v.GetUint("rows_filtered");
  b.partitions_probed = v.GetUint("partitions_probed");
  b.segments_pruned = v.GetUint("segments_pruned");
  b.edges = v.GetUint("edges");
  b.sim_cost = static_cast<DurationMicros>(v.GetUint("sim_cost_micros"));
  b.wall_micros = v.GetUint("wall_micros");
  return b;
}

/// Rebuilds a QueryProfile from the daemon's profile JSON so the client
/// renders exactly the table `aptrace run --profile` prints locally.
QueryProfile ProfileFromJson(const service::JsonValue& p) {
  QueryProfile q;
  if (const service::JsonValue* total = p.Find("total")) {
    q.total = BucketFromJson(*total);
  }
  q.boosted_windows = p.GetUint("boosted_windows");
  if (const service::JsonValue* hops = p.Find("by_hop");
      hops != nullptr && hops->IsArray()) {
    for (const service::JsonValue& b : hops->items) {
      q.by_hop[static_cast<int>(b.GetInt("hop"))] = BucketFromJson(b);
    }
  }
  if (const service::JsonValue* states = p.Find("by_state");
      states != nullptr && states->IsArray()) {
    for (const service::JsonValue& b : states->items) {
      q.by_state[static_cast<int>(b.GetInt("state"))] = BucketFromJson(b);
    }
  }
  return q;
}

/// `profile` round trip: prints the rendered breakdown table, then the
/// raw response as one `profile:` line (it carries scan_cost_micros and
/// work_units, so scripts can reconcile totals without re-asking).
int CmdProfile(Connection* conn, uint64_t session) {
  obs::JsonDict d;
  d.Add("op", "profile");
  d.Add("session", session);
  std::string response;
  if (!conn->Call(d.Str(), &response)) return 1;
  const auto resp = MustParse(response);
  if (IsError(resp)) return PrintError(resp);
  const service::JsonValue* p = resp.Find("profile");
  if (p == nullptr || !p->IsObject()) {
    std::fprintf(stderr, "profile response carried no profile object\n");
    return 1;
  }
  const std::string unit = resp.GetString("probe_unit", "probe");
  std::fputs(
      RenderQueryProfileTable(ProfileFromJson(*p), unit.c_str()).c_str(),
      stdout);
  std::printf("profile: %s\n", response.c_str());
  return 0;
}

int CmdRun(Connection* conn, const Flags& flags) {
  if (flags.script_path.empty() && flags.from_path.empty()) return Usage();
  const long session = OpenSession(conn, flags);
  if (session < 0) return 1;
  if (!flags.quiet) std::printf("session %ld opened\n", session);
  const std::string state =
      PollToEnd(conn, static_cast<uint64_t>(session), flags.quiet);
  if (state.empty()) return 1;
  std::string graph;
  if (!FetchGraph(conn, static_cast<uint64_t>(session), &graph)) return 1;
  if (flags.json_path.empty()) {
    std::fputs(graph.c_str(), stdout);
    if (graph.empty() || graph.back() != '\n') std::fputc('\n', stdout);
  } else {
    std::ofstream out(flags.json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", flags.json_path.c_str());
      return 1;
    }
    out << graph;
    if (!flags.quiet) {
      std::printf("graph written to %s\n", flags.json_path.c_str());
    }
  }
  if (flags.profile &&
      CmdProfile(conn, static_cast<uint64_t>(session)) != 0) {
    return 1;
  }
  return state == "done" ? 0 : 1;
}

int CmdHttp(Connection* conn, const Flags& flags) {
  if (flags.http_path.empty() || flags.http_path.front() != '/') {
    std::fprintf(stderr,
                 "http: pass --path=</metrics|/healthz|/readyz|/sessions>\n");
    return 2;
  }
  int status = 0;
  std::string body;
  if (!conn->HttpGet(flags.http_path, &status, &body)) return 1;
  std::fputs(body.c_str(), stdout);
  if (status != 200) {
    std::fprintf(stderr, "http: %s -> %d\n", flags.http_path.c_str(),
                 status);
    return 1;
  }
  return 0;
}

/// What `top` remembers between refreshes to turn per-session counters
/// into rates.
struct TopPrev {
  uint64_t work_units = 0;
  int64_t sim_micros = 0;
};

/// Refreshing per-session monitor over /sessions. Each scrape is its own
/// connection (the daemon serves one HTTP response per connection);
/// windows/s and sim-micros/s come from deltas between scrapes divided
/// by the *measured* wall time between them (connect and scrape latency
/// would skew rates computed from the configured interval), so the
/// fair-share behavior of concurrent sessions is visible live. A counter
/// that went backwards — daemon restart — prints "-" for one refresh
/// instead of an underflowed rate.
int CmdTop(const Flags& flags) {
  std::map<uint64_t, TopPrev> prev;
  std::chrono::steady_clock::time_point prev_scrape{};
  const bool tty = isatty(fileno(stdout)) != 0;
  for (uint64_t i = 0; flags.iterations == 0 || i < flags.iterations; ++i) {
    if (i > 0) usleep(static_cast<useconds_t>(flags.interval_ms) * 1000);
    Connection conn;
    if (!conn.Open(flags)) return 1;
    int status = 0;
    std::string body;
    if (!conn.HttpGet("/sessions", &status, &body)) return 1;
    if (status != 200) {
      std::fprintf(stderr, "top: /sessions -> %d\n", status);
      return 1;
    }
    const auto scrape_time = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(scrape_time - prev_scrape).count();
    const auto doc = MustParse(body);
    const service::JsonValue* sessions = doc.Find("sessions");
    const bool have_rows = sessions != nullptr && sessions->IsArray();
    if (tty) std::fputs("\x1b[H\x1b[2J", stdout);
    std::printf("aptrace top — %zu session%s%s (refresh %llums)\n",
                have_rows ? sessions->items.size() : 0,
                have_rows && sessions->items.size() == 1 ? "" : "s",
                doc.GetBool("draining") ? ", DRAINING" : "",
                static_cast<unsigned long long>(flags.interval_ms));
    std::printf("%6s %-10s %4s %12s %12s %9s %9s %5s %9s %11s\n", "id",
                "state", "wt", "vtime", "sim_ms", "windows", "edges", "buf",
                "win/s", "sim_us/s");
    std::map<uint64_t, TopPrev> next;
    if (have_rows) {
      for (const service::JsonValue& row : sessions->items) {
        const uint64_t id = row.GetUint("id");
        std::string state = row.GetString("state");
        if (row.GetBool("stalled")) state += "!";
        const service::JsonValue* vt = row.Find("vtime");
        const uint64_t work = row.GetUint("work_units");
        const int64_t sim = row.GetInt("sim_micros");
        char win_rate[32] = "-";
        char sim_rate[32] = "-";
        if (const auto it = prev.find(id);
            it != prev.end() && secs > 0.0) {
          if (work >= it->second.work_units) {
            std::snprintf(win_rate, sizeof(win_rate), "%.1f",
                          static_cast<double>(work - it->second.work_units) /
                              secs);
          }
          if (sim >= it->second.sim_micros) {
            std::snprintf(sim_rate, sizeof(sim_rate), "%.0f",
                          static_cast<double>(sim - it->second.sim_micros) /
                              secs);
          }
        }
        std::printf("%6llu %-10s %4llu %12.0f %12.1f %9llu %9llu %5llu "
                    "%9s %11s\n",
                    static_cast<unsigned long long>(id), state.c_str(),
                    static_cast<unsigned long long>(row.GetUint("weight")),
                    vt != nullptr ? vt->num_v : 0.0,
                    static_cast<double>(sim) / 1000.0,
                    static_cast<unsigned long long>(work),
                    static_cast<unsigned long long>(
                        row.GetUint("graph_edges")),
                    static_cast<unsigned long long>(
                        row.GetUint("buffered_updates")),
                    win_rate, sim_rate);
        next[id] = TopPrev{work, sim};
      }
    }
    prev = std::move(next);
    prev_scrape = scrape_time;
    std::fflush(stdout);
  }
  return 0;
}

/// Expands the connect shell's shorthand lines into protocol requests;
/// raw JSON (a line starting with '{') passes through untouched.
std::string ExpandShorthand(const std::string& line) {
  std::istringstream in(line);
  std::string word;
  in >> word;
  obs::JsonDict d;
  uint64_t n = 0;
  if (word == "poll" || word == "cancel" || word == "graph") {
    d.Add("op", word);
    if (in >> n) d.Add("session", n);
    return d.Str();
  }
  if (word == "stats" || word == "shutdown") {
    d.Add("op", word);
    if (word == "stats" && in >> n) d.Add("session", n);
    return d.Str();
  }
  return "";
}

int CmdConnect(Connection* conn) {
  std::printf("aptrace_client: connected; raw JSON or shorthand "
              "(`ops` lists them, `quit` exits)\n");
  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    if (line == "ops") {
      std::printf("  poll <id> | cancel <id> | graph <id> | stats [id] | "
                  "shutdown | raw JSON request\n");
      continue;
    }
    std::string request = line;
    if (line[0] != '{') {
      request = ExpandShorthand(line);
      if (request.empty()) {
        std::printf("  unknown command (try `ops`)\n");
        continue;
      }
    }
    std::string response;
    if (!conn->Call(request, &response)) return 1;
    std::printf("%s\n", response.c_str());
    if (line == "shutdown") break;
  }
  return 0;
}

int Main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  if (!flags.ok || flags.op.empty()) return Usage();

  // `top` owns its connections: one scrape per connection, per refresh.
  if (flags.op == "top") return CmdTop(flags);

  Connection conn;
  if (!conn.Open(flags)) return 1;

  if (flags.op == "run") return CmdRun(&conn, flags);
  if (flags.op == "connect") return CmdConnect(&conn);
  if (flags.op == "http") return CmdHttp(&conn, flags);
  if (flags.op == "profile") {
    if (!flags.has_session) return Usage();
    return CmdProfile(&conn, flags.session);
  }

  obs::JsonDict d;
  if (flags.op == "open") {
    if (flags.script_path.empty()) return Usage();
    std::string script;
    if (!ReadFile(flags.script_path, &script)) return 1;
    d.Add("op", "open");
    d.Add("bdl", script);
    AddOpenOptions(flags, &d);
  } else if (flags.op == "resume") {
    if (flags.from_path.empty()) return Usage();
    d.Add("op", "resume");
    d.Add("path", flags.from_path);
    AddOpenOptions(flags, &d);
  } else if (flags.op == "poll") {
    if (!flags.has_session) return Usage();
    d.Add("op", "poll");
    d.Add("session", flags.session);
    d.Add("cursor", flags.cursor);
    if (flags.max > 0) d.Add("max", flags.max);
  } else if (flags.op == "cancel" || flags.op == "graph") {
    if (!flags.has_session) return Usage();
    d.Add("op", flags.op);
    d.Add("session", flags.session);
  } else if (flags.op == "checkpoint") {
    if (!flags.has_session || flags.out_path.empty()) return Usage();
    d.Add("op", "checkpoint");
    d.Add("session", flags.session);
    d.Add("path", flags.out_path);
  } else if (flags.op == "stats") {
    d.Add("op", "stats");
    if (flags.has_session) d.Add("session", flags.session);
  } else if (flags.op == "ingest") {
    if (flags.events_path.empty()) return Usage();
    std::string events;
    if (!ReadFile(flags.events_path, &events)) return 1;
    while (!events.empty() &&
           (events.back() == '\n' || events.back() == '\r' ||
            events.back() == ' ')) {
      events.pop_back();
    }
    d.Add("op", "ingest");
    d.AddRaw("events", events);
  } else if (flags.op == "shutdown") {
    d.Add("op", "shutdown");
  } else {
    return Usage();
  }

  std::string response;
  if (!conn.Call(d.Str(), &response)) return 1;
  std::printf("%s\n", response.c_str());
  return IsError(MustParse(response)) ? 1 : 0;
}

}  // namespace
}  // namespace aptrace

int main(int argc, char** argv) { return aptrace::Main(argc, argv); }
