// aptrace_fleet — one-command launcher for a distributed APTrace fleet:
// N shard daemons plus the coordinator, wired together, torn down as one.
//
//   aptrace_fleet --shardd=<bin> --serverd=<bin> --trace=<file> [options]
//       [-- <extra serverd flags>]
//     Launches --shards=N aptrace_shardd daemons on ephemeral loopback
//     ports, waits for each ready line, then runs aptrace_serverd with
//     one --shard-endpoint= per daemon (plus anything after `--`). The
//     coordinator's stdout/stderr pass through, so scripts can still
//     wait for its "serverd: ready" line. When the coordinator exits —
//     or the launcher gets SIGINT/SIGTERM, which it forwards — the whole
//     shard fleet is SIGTERMed, reaped with a short grace period, and
//     SIGKILLed if stuck. The launcher's exit code is the coordinator's.
//         --shardd=<bin>      path to aptrace_shardd (required)
//         --serverd=<bin>     path to aptrace_serverd (required unless
//                             --no-serverd)
//         --shards=N          fleet size (default 4)
//         --backend=row|columnar
//                             backend hosted by every shardd and assumed
//                             by the coordinator (default: APTRACE_BACKEND
//                             env var, else row)
//         --trace=<file>      trace the coordinator loads (forwarded)
//         --tcp-port=N        coordinator TCP listener (forwarded;
//                             default 0 = ephemeral)
//         --socket=<path>     coordinator unix listener (forwarded)
//         --data-dir=<dir>    per-shard durability: shard N journals to
//                             <dir>/shard<N>/wal.log
//         --pid-dir=<dir>     write shard<N>.pid files (cli_smoke's
//                             kill-one-shard test reads these)
//         --no-serverd        only launch the shard fleet; print the
//                             endpoint CSV on stdout and wait for a
//                             signal (CI uses this to compose its own
//                             coordinator invocation)
//
// CI's Release-distributed leg runs exactly this binary: 1 coordinator +
// 4 shardds (docs/distribution.md).

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dist/fleet.h"
#include "storage/storage_backend.h"

namespace aptrace {
namespace {

struct Flags {
  std::string shardd_bin;
  std::string serverd_bin;
  std::string trace_path;
  std::string socket_path;
  std::string data_dir;
  std::string pid_dir;
  int tcp_port = 0;
  size_t shards = 4;
  StorageBackendKind backend = DefaultStorageBackendKind();
  bool no_serverd = false;
  std::vector<std::string> serverd_extra;
  bool ok = true;
};

bool TakeValue(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(stderr,
               "usage: aptrace_fleet --shardd=<bin> --serverd=<bin> "
               "--trace=<file> [--shards=N] [--backend=row|columnar] "
               "[flags] [-- <serverd flags>]\n"
               "  see the header comment of tools/aptrace_fleet.cc or "
               "docs/distribution.md\n");
  return 2;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  std::string v;
  bool passthrough = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (passthrough) {
      f.serverd_extra.push_back(a);
      continue;
    }
    if (std::strcmp(a, "--") == 0) {
      passthrough = true;
      continue;
    }
    if (TakeValue(a, "--shardd", &f.shardd_bin) ||
        TakeValue(a, "--serverd", &f.serverd_bin) ||
        TakeValue(a, "--trace", &f.trace_path) ||
        TakeValue(a, "--socket", &f.socket_path) ||
        TakeValue(a, "--data-dir", &f.data_dir) ||
        TakeValue(a, "--pid-dir", &f.pid_dir)) {
      continue;
    }
    if (std::strcmp(a, "--no-serverd") == 0) {
      f.no_serverd = true;
    } else if (TakeValue(a, "--shards", &v)) {
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (v.empty() || *end != '\0' || n < 1 ||
          n > static_cast<long>(kMaxStoreShards)) {
        std::fprintf(stderr,
                     "--shards: error[CLI-E005]: expected a shard count in "
                     "[1, 64], got '%s'\n",
                     v.c_str());
        f.ok = false;
      } else {
        f.shards = static_cast<size_t>(n);
      }
    } else if (TakeValue(a, "--tcp-port", &v)) {
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (v.empty() || *end != '\0' || n < 0 || n > 65535) {
        std::fprintf(stderr,
                     "--tcp-port: error[CLI-E001]: '%s' is not a valid "
                     "TCP port\n",
                     v.c_str());
        f.ok = false;
      } else {
        f.tcp_port = static_cast<int>(n);
      }
    } else if (TakeValue(a, "--backend", &v)) {
      const auto parsed = ParseStorageBackendKind(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "--backend: error[CLI-E002]: expected 'row' or "
                     "'columnar', got '%s'\n",
                     v.c_str());
        f.ok = false;
      } else {
        f.backend = *parsed;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      f.ok = false;
    }
  }
  return f;
}

volatile std::sig_atomic_t g_signalled = 0;

void OnSignal(int sig) { g_signalled = sig; }

int Main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  if (!flags.ok || flags.shardd_bin.empty() ||
      (!flags.no_serverd && flags.serverd_bin.empty())) {
    return Usage();
  }

  dist::FleetOptions fleet_options;
  fleet_options.shardd_bin = flags.shardd_bin;
  fleet_options.shards = flags.shards;
  fleet_options.backend = flags.backend;
  fleet_options.data_dir = flags.data_dir;
  fleet_options.pid_dir = flags.pid_dir;
  auto fleet = dist::ShardFleet::Launch(fleet_options);
  if (!fleet.ok()) {
    std::fprintf(stderr, "fleet: %s\n", fleet.status().ToString().c_str());
    return 1;
  }
  const std::string endpoints = fleet.value()->EndpointsCsv();
  std::fprintf(stderr, "fleet: %zu shardd(s) ready: %s\n", flags.shards,
               endpoints.c_str());

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  if (flags.no_serverd) {
    // Endpoint CSV on stdout is the machine-readable contract here, the
    // same shape APTRACE_SHARD_ENDPOINTS consumes.
    std::printf("fleet: endpoints %s\n", endpoints.c_str());
    std::fflush(stdout);
    while (g_signalled == 0) usleep(100'000);
    return 0;  // ~ShardFleet tears the daemons down
  }

  // Coordinator argv: binary, fleet wiring, then the pass-through flags.
  std::vector<std::string> args;
  args.push_back(flags.serverd_bin);
  for (const auto& shard : fleet.value()->shards()) {
    args.push_back("--shard-endpoint=" + shard.endpoint);
  }
  args.push_back("--backend=" +
                 std::string(StorageBackendName(flags.backend)));
  if (!flags.trace_path.empty()) args.push_back("--trace=" + flags.trace_path);
  if (!flags.socket_path.empty()) {
    args.push_back("--socket=" + flags.socket_path);
  }
  args.push_back("--tcp-port=" + std::to_string(flags.tcp_port));
  for (const auto& extra : flags.serverd_extra) args.push_back(extra);

  const pid_t serverd_pid = fork();
  if (serverd_pid < 0) {
    std::fprintf(stderr, "fleet: fork: %s\n", std::strerror(errno));
    return 1;
  }
  if (serverd_pid == 0) {
    std::vector<char*> argv_exec;
    argv_exec.reserve(args.size() + 1);
    for (auto& s : args) argv_exec.push_back(s.data());
    argv_exec.push_back(nullptr);
    execv(argv_exec[0], argv_exec.data());
    std::fprintf(stderr, "fleet: exec %s: %s\n", argv_exec[0],
                 std::strerror(errno));
    _exit(127);
  }

  // Wait for the coordinator, forwarding any signal we get so its drain
  // (and the drain snapshot) runs before the shard fleet goes away.
  int wstatus = 0;
  for (;;) {
    if (g_signalled != 0) {
      kill(serverd_pid, static_cast<int>(g_signalled));
      g_signalled = 0;
    }
    const pid_t reaped = waitpid(serverd_pid, &wstatus, WNOHANG);
    if (reaped == serverd_pid) break;
    if (reaped < 0 && errno != EINTR) break;
    usleep(50'000);
  }
  fleet.value()->Terminate();
  if (WIFEXITED(wstatus)) return WEXITSTATUS(wstatus);
  if (WIFSIGNALED(wstatus)) return 128 + WTERMSIG(wstatus);
  return 1;
}

}  // namespace
}  // namespace aptrace

int main(int argc, char** argv) { return aptrace::Main(argc, argv); }
