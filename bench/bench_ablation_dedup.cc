// Ablation of per-object scan-coverage deduplication: when a frontier
// object is re-discovered through a later event, the executor clips the
// new execution windows against the object's coverage watermark so the
// same history is never scanned twice. Without the clip the result is
// identical (the graph dedups edges) but the database work balloons —
// this bench quantifies by how much.

#include "bench/bench_common.h"
#include "util/string_util.h"

namespace aptrace::bench {
namespace {

struct Outcome {
  uint64_t queries = 0;
  uint64_t rows = 0;
  size_t edges = 0;
  DurationMicros elapsed = 0;
  bool completed = false;
};

Outcome RunOnce(EventStore& store, const Event& alert, int k,
                bool dedup, DurationMicros cap) {
  SimClock clock;
  auto ctx = ResolveContext(store, workload::GenericSpecFor(store, alert),
                            &clock, alert);
  Outcome out;
  if (!ctx.ok()) return out;
  store.ResetStats();
  Executor exec(std::move(ctx.value()), &clock, k,
                /*temporal_priority=*/true, dedup);
  RunLimits limits;
  limits.sim_time = cap;
  const StopReason reason = exec.Run(limits);
  const StoreStats stats = store.stats();
  out.queries = stats.queries;
  out.rows = stats.rows_matched + stats.rows_filtered;
  out.edges = exec.graph().NumEdges();
  out.elapsed = clock.NowMicros();
  out.completed = reason == StopReason::kCompleted;
  return out;
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsRun obs_run(args, "bench_ablation_dedup");
  if (args.num_cases == 200) args.num_cases = 30;
  // A calmer fleet so runs complete and the full duplicate cost shows.
  if (args.num_hosts == 12) args.num_hosts = 4;
  auto store = workload::BuildEnterpriseTrace(args.ToConfig());
  PrintHeader(
      "Ablation: scan-coverage deduplication on vs off (same results, "
      "different work)",
      args, store->NumEvents());

  const auto alerts =
      workload::SampleAnomalyEvents(*store, args.num_cases, args.seed);
  const DurationMicros cap = 2 * kMicrosPerHour;

  uint64_t q_on = 0, q_off = 0, r_on = 0, r_off = 0;
  DurationMicros t_on = 0, t_off = 0;
  size_t mismatches = 0;
  size_t both_completed = 0;
  for (const Event& alert : alerts) {
    const Outcome on = RunOnce(*store, alert, args.windows_k, true, cap);
    const Outcome off = RunOnce(*store, alert, args.windows_k, false, cap);
    q_on += on.queries;
    q_off += off.queries;
    r_on += on.rows;
    r_off += off.rows;
    t_on += on.elapsed;
    t_off += off.elapsed;
    if (on.completed && off.completed) {
      both_completed++;
      if (on.edges != off.edges) mismatches++;
    }
  }

  std::printf("%-22s %14s %14s %10s\n", "", "dedup ON", "dedup OFF",
              "ratio");
  std::printf("%-22s %14llu %14llu %9.1fx\n", "window queries",
              static_cast<unsigned long long>(q_on),
              static_cast<unsigned long long>(q_off),
              q_on ? static_cast<double>(q_off) / q_on : 0.0);
  std::printf("%-22s %14llu %14llu %9.1fx\n", "index rows touched",
              static_cast<unsigned long long>(r_on),
              static_cast<unsigned long long>(r_off),
              r_on ? static_cast<double>(r_off) / r_on : 0.0);
  std::printf("%-22s %14s %14s %9.1fx\n", "simulated time",
              FormatDuration(t_on).c_str(), FormatDuration(t_off).c_str(),
              t_on ? static_cast<double>(t_off) / t_on : 0.0);
  std::printf(
      "\nidentical final graphs on all %zu runs completed by both variants"
      " (%zu mismatches)\n",
      both_completed, mismatches);
  obs_run.Finish(*store);
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace aptrace::bench

int main(int argc, char** argv) { return aptrace::bench::Main(argc, argv); }
