// Reproduces Figure 6 of the paper: average CPU and memory utilization of
// the APTrace server over the first ~30 minutes of responsive
// backtracking analysis. The shape to reproduce: memory peaks early
// (~15%: database init, BDL compilation, heuristics loading) and settles
// near 3%, while CPU ramps from ~3% toward ~11% as the search frontier
// widens. Utilization comes from the analytic resource model fed by live
// engine counters (see DESIGN.md's substitution table).

#include <array>

#include "bench/bench_common.h"
#include "util/stats.h"

namespace aptrace::bench {
namespace {

constexpr int kMinutes = 30;

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsRun obs_run(args, "bench_fig6");
  // Resource curves stabilize with fewer cases; keep the default modest.
  if (args.num_cases == 200) args.num_cases = 50;
  auto store = workload::BuildEnterpriseTrace(args.ToConfig());
  PrintHeader("Figure 6: CPU and memory usage of APTrace (simulated, %)",
              args, store->NumEvents());

  const auto alerts =
      workload::SampleAnomalyEvents(*store, args.num_cases, args.seed);
  const ResourceModel model;

  std::array<SampleStats, kMinutes> cpu;
  std::array<SampleStats, kMinutes> mem;
  for (const Event& alert : alerts) {
    SimClock clock;
    SessionOptions options;
    options.num_windows_k = args.windows_k;
    options.scan_threads = args.scan_threads;
    Session session(store.get(), &clock, options);
    const bdl::TrackingSpec spec = workload::GenericSpecFor(*store, alert);
    if (!session.StartWithSpec(spec, alert).ok()) continue;

    store->ResetStats();
    int next_minute = 1;
    ResourceInputs inputs;
    RunLimits limits;
    limits.sim_time = kMinutes * kMicrosPerMinute;
    limits.on_update = [&](const UpdateBatch& b) {
      const TimeMicros elapsed = clock.NowMicros();
      while (next_minute <= kMinutes &&
             elapsed > next_minute * kMicrosPerMinute) {
        inputs.elapsed = next_minute * kMicrosPerMinute;
        const ResourceSample s = model.Sample(inputs);
        cpu[next_minute - 1].Add(s.cpu_pct);
        mem[next_minute - 1].Add(s.mem_pct);
        next_minute++;
      }
      inputs.graph_nodes = b.total_nodes;
      inputs.graph_edges = b.total_edges;
      inputs.rows_matched = store->stats().rows_matched;
    };
    (void)session.Step(limits);
    // Runs that completed early hold their final state for the remaining
    // minutes.
    for (int m = next_minute; m <= kMinutes; ++m) {
      inputs.elapsed = m * kMicrosPerMinute;
      const ResourceSample s = model.Sample(inputs);
      cpu[m - 1].Add(s.cpu_pct);
      mem[m - 1].Add(s.mem_pct);
    }
  }

  std::printf("%7s %10s %10s\n", "minute", "cpu_pct", "mem_pct");
  for (int m = 0; m < kMinutes; ++m) {
    std::printf("%7d %10.2f %10.2f\n", m + 1, cpu[m].Mean(), mem[m].Mean());
  }
  std::printf(
      "\nshape to check: memory starts high (paper peak ~15%%) and decays "
      "to a low plateau (~3%%);\nCPU ramps from ~3%% toward ~11%% over the "
      "run.\n");
  obs_run.Finish(*store);
  return 0;
}

}  // namespace
}  // namespace aptrace::bench

int main(int argc, char** argv) { return aptrace::bench::Main(argc, argv); }
