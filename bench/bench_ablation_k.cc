// Ablation of the execution-window count k (the user-configurable
// parameter of the partitioning algorithm; the paper's blue team used the
// empirical value 8). k = 1 degenerates to the baseline's monolithic
// per-node scan; very large k multiplies per-query overhead. The metric
// is Table II's: waiting time between updates, over the same random
// alerts.

#include "bench/bench_common.h"
#include "util/stats.h"

namespace aptrace::bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsRun obs_run(args, "bench_ablation_k");
  if (args.num_cases == 200) args.num_cases = 60;  // per-k runs multiply
  auto store = workload::BuildEnterpriseTrace(args.ToConfig());
  PrintHeader("Ablation: window count k vs. update waiting time (seconds)",
              args, store->NumEvents());

  const auto alerts =
      workload::SampleAnomalyEvents(*store, args.num_cases, args.seed);
  const DurationMicros cap = 2 * kMicrosPerHour;

  std::printf("%6s %8s %8s %8s %8s %8s %10s\n", "k", "Average", "STD",
              "90%", "95%", "99%", "updates");
  for (int k : {1, 2, 4, 8, 12, 16, 24}) {
    std::vector<CaseRun> runs(alerts.size());
    ParallelFor(alerts.size(), args.threads, [&](size_t i) {
      runs[i] = RunCase(*store, alerts[i], /*use_baseline=*/false, k, cap, {},
                        args.scan_threads);
    });
    SampleStats waits;
    for (const CaseRun& run : runs) waits.AddAll(run.waits_seconds);
    std::printf("%6d %8.1f %8.1f %8.1f %8.1f %8.1f %10zu\n", k,
                waits.Mean(), waits.Stddev(), waits.Percentile(90),
                waits.Percentile(95), waits.Percentile(99), waits.count());
  }
  std::printf(
      "\nshape to check: the tail (p95/p99) shrinks sharply from k=1 to "
      "moderate k and\nflattens (or regresses via per-query overhead) "
      "beyond; k=8 is the paper's choice.\n");
  obs_run.Finish(*store);
  return 0;
}

}  // namespace
}  // namespace aptrace::bench

int main(int argc, char** argv) { return aptrace::bench::Main(argc, argv); }
