// Reproduces Table II of the paper: waiting time between dependency-graph
// updates (seconds) — average, standard deviation, and the 90/95/99
// percentiles — for the execute-to-complete baseline vs. APTrace's
// execution-window partitioning, over random anomaly alerts drawn from
// the enterprise trace. Each run is capped at two simulated hours, as in
// Section IV-B1.

#include "bench/bench_common.h"
#include "util/stats.h"

namespace aptrace::bench {
namespace {

// Methodology note. The unit of measurement is one backtracking analysis
// *case* (the paper ran 200). Average/STD are computed over all updates
// pooled; the percentile columns are computed over the per-case worst
// waits, i.e. "in 99% of cases the (longest) update wait is at most X" —
// this is the only reading under which the paper's own row (mean 7 s yet
// p95 = 613 s) is internally consistent (a pooled distribution with 5% of
// mass >= 613 cannot have mean 7), and it matches the paper's narrative:
// "nearly in every backtracking analysis, there will be at least one
// update being blocked for more than 20 minutes".
struct WaitAggregate {
  SampleStats pooled;
  SampleStats per_case_max;

  void AddCase(const std::vector<double>& waits) {
    double mx = 0;
    for (double w : waits) {
      pooled.Add(w);
      mx = std::max(mx, w);
    }
    if (!waits.empty()) per_case_max.Add(mx);
  }
};

void Report(const char* name, const WaitAggregate& agg) {
  std::printf("%-10s %8.0f %8.0f %8.0f %8.0f %8.0f   (updates=%zu)\n", name,
              agg.pooled.Mean(), agg.pooled.Stddev(),
              agg.per_case_max.Percentile(90),
              agg.per_case_max.Percentile(95),
              agg.per_case_max.Percentile(99), agg.pooled.count());
}

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsRun obs_run(args, "bench_table2");
  auto store = workload::BuildEnterpriseTrace(args.ToConfig());
  PrintHeader("Table II: waiting time between updates (unit: second)", args,
              store->NumEvents());

  const auto alerts =
      workload::SampleAnomalyEvents(*store, args.num_cases, args.seed);
  const DurationMicros cap = 2 * kMicrosPerHour;

  std::vector<CaseRun> baseline_runs(alerts.size());
  std::vector<CaseRun> aptrace_runs(alerts.size());
  ParallelFor(alerts.size(), args.threads, [&](size_t i) {
    baseline_runs[i] = RunCase(*store, alerts[i], /*use_baseline=*/true,
                               args.windows_k, cap);
    aptrace_runs[i] = RunCase(*store, alerts[i], /*use_baseline=*/false,
                              args.windows_k, cap, {}, args.scan_threads);
  });
  WaitAggregate baseline;
  WaitAggregate aptrace;
  for (size_t i = 0; i < alerts.size(); ++i) {
    baseline.AddCase(baseline_runs[i].waits_seconds);
    aptrace.AddCase(aptrace_runs[i].waits_seconds);
  }

  std::printf("%-10s %8s %8s %8s %8s %8s\n", "", "Average", "STD", "90%",
              "95%", "99%");
  Report("Baseline", baseline);
  Report("APTrace", aptrace);
  std::printf(
      "\n(Average/STD over all updates pooled; percentiles over the "
      "per-case worst waits.)\n");
  std::printf("paper reports: Baseline 7 / 210 / 58 / 613 / 1149,"
              " APTrace 2 / 20 / 4 / 9 / 19\n");
  const auto& bm = baseline.per_case_max;
  const auto& am = aptrace.per_case_max;
  if (am.Percentile(90) > 0 && am.Percentile(99) > 0) {
    std::printf(
        "reduction: p90 %.0fx, p95 %.0fx, p99 %.0fx (paper: 15x, 68x, 57x)\n",
        bm.Percentile(90) / am.Percentile(90),
        bm.Percentile(95) / am.Percentile(95),
        bm.Percentile(99) / am.Percentile(99));
  }
  obs_run.Finish(*store);
  return 0;
}

}  // namespace
}  // namespace aptrace::bench

int main(int argc, char** argv) { return aptrace::bench::Main(argc, argv); }
