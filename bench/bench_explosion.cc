// Reproduces the Section IV-B1 experiment ("Severity of Dependency
// Explosion"): backtrack from random events with the baseline engine,
// capped at two simulated hours, and report how often the runs take long
// and how large the dependency graphs grow. The paper reports: ~50% of
// executions over 20 minutes, 36% hitting the 2-hour cap; >36% of graphs
// over 1,000 events, 26% over 2,500, 17% over 5,000, max 35,288.

#include "bench/bench_common.h"
#include "util/stats.h"

namespace aptrace::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsRun obs_run(args, "bench_explosion");
  auto store = workload::BuildEnterpriseTrace(args.ToConfig());
  PrintHeader("Section IV-B1: severity of the dependency explosion", args,
              store->NumEvents());

  const auto alerts =
      workload::SampleAnomalyEvents(*store, args.num_cases, args.seed);
  const DurationMicros cap = 2 * kMicrosPerHour;

  std::vector<CaseRun> runs(alerts.size());
  ParallelFor(alerts.size(), args.threads, [&](size_t i) {
    runs[i] = RunCase(*store, alerts[i], /*use_baseline=*/true,
                      args.windows_k, cap);
  });
  size_t over_20min = 0;
  size_t hit_cap = 0;
  SampleStats sizes;
  size_t max_size = 0;
  for (const CaseRun& run : runs) {
    if (run.elapsed > 20 * kMicrosPerMinute) over_20min++;
    if (run.reason == StopReason::kExternalLimit) hit_cap++;
    sizes.Add(static_cast<double>(run.graph_edges));
    max_size = std::max(max_size, run.graph_edges);
  }

  const double n = static_cast<double>(alerts.size());
  std::printf("executions over 20 minutes : %5.1f%%   (paper: ~50%%)\n",
              100.0 * over_20min / n);
  std::printf("executions hitting 2h cap  : %5.1f%%   (paper: 36%%)\n",
              100.0 * hit_cap / n);
  size_t over1000 = 0;
  size_t over2500 = 0;
  size_t over5000 = 0;
  for (double s : sizes.samples()) {
    over1000 += s > 1000;
    over2500 += s > 2500;
    over5000 += s > 5000;
  }
  std::printf("graphs with > 1000 events  : %5.1f%%   (paper: >36%%)\n",
              100.0 * over1000 / n);
  std::printf("graphs with > 2500 events  : %5.1f%%   (paper: 26%%)\n",
              100.0 * over2500 / n);
  std::printf("graphs with > 5000 events  : %5.1f%%   (paper: 17%%)\n",
              100.0 * over5000 / n);
  std::printf("largest dependency graph   : %zu events (paper: 35,288)\n",
              max_size);
  std::printf("median / mean graph size   : %.0f / %.0f events\n",
              sizes.Median(), sizes.Mean());
  obs_run.Finish(*store);
  return 0;
}

}  // namespace
}  // namespace aptrace::bench

int main(int argc, char** argv) { return aptrace::bench::Main(argc, argv); }
