// A/B harness for the pluggable storage backends: builds the Table II
// enterprise workload twice from the same seed — once on the row store,
// once on the columnar segment store — runs the same backtracking cases
// on both, and reports rows-touched and simulated-cost deltas. The run
// fails (non-zero exit) if any case's dependency graph differs between
// backends, or if the columnar store does not probe strictly fewer
// storage units than the row store: identical answers, cheaper scans is
// the whole point of zone-map pruning.
//
// Cases run uncapped: simulated time advances at different rates on the
// two backends (that is the measured effect), so a sim-time cap would
// cut the runs at different points and void the identity check.

#include <fstream>
#include <set>

#include "bench/bench_common.h"
#include "obs/json_dict.h"

namespace aptrace::bench {
namespace {

/// One backtracking case plus the final edge set, for cross-backend
/// graph comparison (RunCase only keeps counts).
struct CompareRun {
  CaseRun run;
  std::set<EventId> edges;
};

CompareRun RunCompareCase(const EventStore& store, const Event& alert,
                          int windows_k, int scan_threads) {
  SimClock clock;
  SessionOptions options;
  options.use_baseline = false;
  options.num_windows_k = windows_k;
  options.scan_threads = scan_threads;
  Session session(&store, &clock, options);

  const bdl::TrackingSpec spec = workload::GenericSpecFor(store, alert);
  CompareRun out;
  if (!session.StartWithSpec(spec, alert).ok()) return out;

  auto reason = session.Step(RunLimits{});  // uncapped: run to completion
  out.run.reason = reason.ok() ? reason.value() : StopReason::kStopped;
  out.run.graph_edges = session.graph().NumEdges();
  out.run.graph_nodes = session.graph().NumNodes();
  out.run.elapsed = clock.NowMicros() - session.stats().run_start;
  session.graph().ForEachEdge(
      [&](const DepGraph::Edge& e) { out.edges.insert(e.event); });
  return out;
}

struct BackendResult {
  const EventStore* store = nullptr;
  std::vector<CompareRun> cases;
  StoreStats stats;  // one snapshot after all cases
  double wall_seconds = 0;
};

BackendResult RunAll(EventStore& store, const std::vector<Event>& alerts,
                     const BenchArgs& args) {
  BackendResult result;
  result.store = &store;
  result.cases.resize(alerts.size());
  store.ResetStats();
  const TimeMicros wall_start = MonotonicNowMicros();
  ParallelFor(alerts.size(), args.threads, [&](size_t i) {
    result.cases[i] = RunCompareCase(store, alerts[i], args.windows_k,
                                     args.scan_threads);
  });
  result.wall_seconds =
      MicrosToSeconds(MonotonicNowMicros() - wall_start);
  result.stats = store.stats();
  return result;
}

std::string StatsJson(const StoreStats& s, double wall_seconds) {
  obs::JsonDict d;
  d.Add("queries", s.queries);
  d.Add("rows_matched", s.rows_matched);
  d.Add("rows_filtered", s.rows_filtered);
  d.Add("partitions_probed", s.partitions_probed);
  d.Add("partitions_seeked", s.partitions_seeked);
  d.Add("segments_pruned", s.segments_pruned);
  d.Add("simulated_cost_us", static_cast<uint64_t>(s.simulated_cost));
  d.Add("wall_seconds", wall_seconds);
  return d.Str();
}

/// `--bench-json=F`: the machine-readable twin of the printed table, so
/// the A/B lane leaves a perf-trajectory artifact like
/// BENCH_shard_scaling.json does.
bool WriteBenchJson(const std::string& path, const BenchArgs& args,
                    const BackendResult& row, const BackendResult& columnar,
                    size_t cases, size_t mismatches) {
  obs::JsonDict top;
  top.Add("bench", "backend_compare");
  top.Add("cases", static_cast<uint64_t>(cases));
  top.Add("hosts", static_cast<int64_t>(args.num_hosts));
  top.Add("days", static_cast<int64_t>(args.days));
  top.Add("seed", args.seed);
  top.Add("shards", static_cast<uint64_t>(args.shards));
  top.Add("identical_graphs", mismatches == 0);
  top.AddRaw("row", StatsJson(row.stats, row.wall_seconds));
  top.AddRaw("columnar",
             StatsJson(columnar.stats, columnar.wall_seconds));
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  out << top.Str() << "\n";
  return true;
}

void ReportRow(const char* label, uint64_t row, uint64_t columnar) {
  const double ratio =
      columnar > 0 ? static_cast<double>(row) / static_cast<double>(columnar)
                   : 0.0;
  std::printf("%-18s %14llu %14llu", label,
              static_cast<unsigned long long>(row),
              static_cast<unsigned long long>(columnar));
  if (columnar > 0 && row > 0) {
    std::printf("   %6.2fx\n", ratio);
  } else {
    std::printf("        -\n");
  }
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsRun obs_run(args, "bench_backend_compare");

  // Same seed, same generator: the two stores hold identical events in
  // identical order; only the physical layout differs.
  workload::TraceConfig row_config = args.ToConfig();
  row_config.backend = StorageBackendKind::kRow;
  workload::TraceConfig columnar_config = args.ToConfig();
  columnar_config.backend = StorageBackendKind::kColumnar;
  auto row_store = workload::BuildEnterpriseTrace(row_config);
  auto columnar_store = workload::BuildEnterpriseTrace(columnar_config);

  PrintHeader("Backend A/B: row store vs. columnar segments + zone maps",
              args, row_store->NumEvents());
  if (row_store->NumEvents() != columnar_store->NumEvents()) {
    std::fprintf(stderr, "store size mismatch: row=%zu columnar=%zu\n",
                 row_store->NumEvents(), columnar_store->NumEvents());
    return 1;
  }

  const auto alerts =
      workload::SampleAnomalyEvents(*row_store, args.num_cases, args.seed);
  const BackendResult row = RunAll(*row_store, alerts, args);
  const BackendResult columnar = RunAll(*columnar_store, alerts, args);

  // Identity check: every case must produce the same dependency graph.
  size_t mismatches = 0;
  for (size_t i = 0; i < alerts.size(); ++i) {
    if (row.cases[i].edges != columnar.cases[i].edges ||
        row.cases[i].run.graph_nodes != columnar.cases[i].run.graph_nodes) {
      if (++mismatches <= 5) {
        std::fprintf(stderr,
                     "case %zu: graph mismatch (row %zu edges / %zu nodes, "
                     "columnar %zu edges / %zu nodes)\n",
                     i, row.cases[i].edges.size(),
                     row.cases[i].run.graph_nodes,
                     columnar.cases[i].edges.size(),
                     columnar.cases[i].run.graph_nodes);
      }
    }
  }

  std::printf("graphs: %zu/%zu cases identical across backends\n",
              alerts.size() - mismatches, alerts.size());
  std::printf("probe unit: row = %s, columnar = %s\n\n",
              row_store->backend().capabilities().probe_unit,
              columnar_store->backend().capabilities().probe_unit);

  std::printf("%-18s %14s %14s %9s\n", "", "row", "columnar", "row/col");
  ReportRow("queries", row.stats.queries, columnar.stats.queries);
  ReportRow("rows_matched", row.stats.rows_matched,
            columnar.stats.rows_matched);
  ReportRow("rows_filtered", row.stats.rows_filtered,
            columnar.stats.rows_filtered);
  ReportRow("units_probed", row.stats.partitions_probed,
            columnar.stats.partitions_probed);
  ReportRow("units_seeked", row.stats.partitions_seeked,
            columnar.stats.partitions_seeked);
  ReportRow("segments_pruned", row.stats.segments_pruned,
            columnar.stats.segments_pruned);
  ReportRow("simulated_cost_us",
            static_cast<uint64_t>(row.stats.simulated_cost),
            static_cast<uint64_t>(columnar.stats.simulated_cost));
  std::printf("\nwall seconds: row %.2f, columnar %.2f\n", row.wall_seconds,
              columnar.wall_seconds);

  bool failed = false;
  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: %zu cases diverged across backends\n",
                 mismatches);
    failed = true;
  }
  if (columnar.stats.partitions_probed >= row.stats.partitions_probed) {
    std::fprintf(stderr,
                 "FAIL: columnar probed %llu units, expected strictly "
                 "fewer than the row store's %llu\n",
                 static_cast<unsigned long long>(
                     columnar.stats.partitions_probed),
                 static_cast<unsigned long long>(
                     row.stats.partitions_probed));
    failed = true;
  }
  if (!failed) {
    std::printf("\nPASS: identical graphs, columnar probed %.2fx fewer "
                "units at %.2fx lower simulated cost\n",
                static_cast<double>(row.stats.partitions_probed) /
                    static_cast<double>(
                        std::max<uint64_t>(1,
                                           columnar.stats.partitions_probed)),
                static_cast<double>(row.stats.simulated_cost) /
                    std::max<double>(
                        1.0,
                        static_cast<double>(columnar.stats.simulated_cost)));
  }
  if (!args.bench_json.empty() &&
      !WriteBenchJson(args.bench_json, args, row, columnar, alerts.size(),
                      mismatches)) {
    failed = true;
  }
  obs_run.Finish(*row_store);
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace aptrace::bench

int main(int argc, char** argv) { return aptrace::bench::Main(argc, argv); }
