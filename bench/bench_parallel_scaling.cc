// Scaling of the parallel scan pipeline: runs the Table-II workload
// (random anomaly alerts over the enterprise trace, two simulated hours
// per case) at a ladder of scan-thread counts and reports, per rung:
//
//   - the modeled scan speedup: total simulated scan cost divided by the
//     ScanOverlapModel makespan of the same scans on N parallel servers,
//     summed over cases. This is the headline number — deterministic for
//     a given trace/seed, independent of the machine the bench runs on,
//     and exactly the overlap a real scan backend would deliver (scans
//     are I/O-bound database range queries).
//   - wall-clock per rung, for reference only (a 1-core CI box shows no
//     wall speedup; that is expected and not what the pipeline targets).
//
// Every rung must produce identical graphs — the bench exits nonzero if
// edge/node totals diverge anywhere, making it a cheap determinism smoke
// test on top of tests/executor_differential_test.cc.
//
//   --max-threads=N   highest ladder rung (default 8, ladder 1/2/4/8)
//   --json-out=FILE   machine-readable results for CI trend tracking
//   --bench-json=FILE alias for --json-out following the BENCH_*.json
//                     artifact convention (CI uploads these)

#include <cstring>
#include <fstream>

#include "bench/bench_common.h"
#include "obs/json_dict.h"

namespace aptrace::bench {
namespace {

struct RungResult {
  int scan_threads = 0;
  size_t edges = 0;
  size_t nodes = 0;
  DurationMicros scan_cost = 0;  // summed over cases
  DurationMicros makespan = 0;   // summed over cases
  double wall_seconds = 0;

  double ModeledSpeedup() const {
    return makespan > 0 ? static_cast<double>(scan_cost) /
                              static_cast<double>(makespan)
                        : 1.0;
  }
};

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  int max_threads = 8;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--max-threads=", 14) == 0) {
      max_threads = std::atoi(a + 14);
    } else if (std::strncmp(a, "--json-out=", 11) == 0) {
      json_out = a + 11;
    }
  }
  if (json_out.empty()) json_out = args.bench_json;

  ObsRun obs_run(args, "bench_parallel_scaling");
  auto store = workload::BuildEnterpriseTrace(args.ToConfig());
  PrintHeader("Parallel scan pipeline: modeled speedup vs scan threads",
              args, store->NumEvents());

  const auto alerts =
      workload::SampleAnomalyEvents(*store, args.num_cases, args.seed);
  const DurationMicros cap = 2 * kMicrosPerHour;

  std::vector<RungResult> rungs;
  for (const int n : {1, 2, 4, 8}) {
    if (n > max_threads && n != 1) continue;
    RungResult rung;
    rung.scan_threads = n;
    const TimeMicros wall_start = MonotonicNowMicros();
    // Cases run one at a time: the rung's parallelism is *inside* each
    // executor, and wall-clock per rung should measure exactly that.
    for (const Event& alert : alerts) {
      const CaseRun run = RunCase(*store, alert, /*use_baseline=*/false,
                                  args.windows_k, cap, {}, n);
      rung.edges += run.graph_edges;
      rung.nodes += run.graph_nodes;
      rung.scan_cost += run.scan_cost_total;
      rung.makespan += run.modeled_scan_makespan;
    }
    rung.wall_seconds = MicrosToSeconds(MonotonicNowMicros() - wall_start);
    rungs.push_back(rung);
  }

  std::printf("%8s %10s %10s %14s %14s %9s %9s\n", "threads", "edges",
              "nodes", "scan_cost_us", "makespan_us", "speedup", "wall_s");
  bool identical = true;
  for (const RungResult& rung : rungs) {
    std::printf("%8d %10zu %10zu %14llu %14llu %8.2fx %9.2f\n",
                rung.scan_threads, rung.edges, rung.nodes,
                static_cast<unsigned long long>(rung.scan_cost),
                static_cast<unsigned long long>(rung.makespan),
                rung.ModeledSpeedup(), rung.wall_seconds);
    identical = identical && rung.edges == rungs.front().edges &&
                rung.nodes == rungs.front().nodes &&
                rung.scan_cost == rungs.front().scan_cost;
  }
  std::printf("\n(modeled speedup = scan cost / makespan on N virtual scan "
              "servers; wall-clock\n depends on host cores and is "
              "informational — see docs/parallel_execution.md)\n");
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: graph or scan-cost totals differ across thread "
                 "counts — the parallel pipeline broke determinism\n");
    return 1;
  }

  if (!json_out.empty()) {
    std::string entries = "[";
    for (size_t i = 0; i < rungs.size(); ++i) {
      if (i) entries += ",";
      obs::JsonDict entry;
      entry.Add("scan_threads", static_cast<uint64_t>(rungs[i].scan_threads));
      entry.Add("edges", static_cast<uint64_t>(rungs[i].edges));
      entry.Add("nodes", static_cast<uint64_t>(rungs[i].nodes));
      entry.Add("scan_cost_micros", static_cast<uint64_t>(rungs[i].scan_cost));
      entry.Add("modeled_makespan_micros",
                static_cast<uint64_t>(rungs[i].makespan));
      entry.Add("modeled_speedup", rungs[i].ModeledSpeedup());
      entry.Add("wall_seconds", rungs[i].wall_seconds);
      entries += entry.Str();
    }
    entries += "]";
    obs::JsonDict root;
    root.Add("bench", std::string_view("bench_parallel_scaling"));
    root.Add("cases", static_cast<uint64_t>(alerts.size()));
    root.Add("seed", args.seed);
    root.Add("identical_graphs", identical);
    root.AddRaw("rungs", entries);
    std::ofstream f(json_out);
    if (!f) {
      std::fprintf(stderr, "cannot open for write: %s\n", json_out.c_str());
      return 1;
    }
    f << root.Str() << "\n";
    std::printf("JSON written to %s\n", json_out.c_str());
  }

  obs_run.Finish(*store);
  return 0;
}

}  // namespace
}  // namespace aptrace::bench

int main(int argc, char** argv) { return aptrace::bench::Main(argc, argv); }
