// Scaling lane for the sharded store engine (docs/sharding.md): builds
// the Table II enterprise workload at shard counts {1, 2, 4, 8} from the
// same seed, runs the same backtracking cases on each, and emits
// BENCH_shard_scaling.json — the wall-clock / scan-work trajectory the
// ROADMAP asks for. Two invariants are enforced on every rung, and the
// run fails (non-zero exit) if either breaks:
//
//  * identity — every case's dependency graph, and the store-wide
//    rows_matched / queries totals, must equal the shards=1 rung's
//    (scatter-gather is an implementation detail, not an answer change);
//  * reconciliation — within a rung, the per-shard rows / probe / prune
//    counters must sum *exactly* to that rung's store totals (the
//    single-snapshot-lock contract of ShardedStore::TakeSnapshot).
//
// Partition-probe counts are NOT compared across rungs: a time slice
// whose matching rows span two hosts occupies one partition in a
// monolithic store but up to two across shards, so the fan-out cost is
// reported per rung instead (that is the measured effect).
//
// Cases run uncapped for the same reason as bench_backend_compare: a
// sim-time cap would cut rungs at different points and void the
// identity check.

#include <fstream>
#include <iterator>
#include <set>

#include "bench/bench_common.h"
#include "obs/json_dict.h"

namespace aptrace::bench {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 4, 8};

/// One rung of the shard ladder: the per-case edge sets (for the
/// cross-rung identity check) and one consistent store snapshot.
struct ShardRun {
  size_t shards = 0;
  double wall_seconds = 0;
  std::vector<std::set<EventId>> case_edges;
  std::vector<size_t> case_nodes;
  ShardedStore::Snapshot snapshot;
};

ShardRun RunLadderRung(size_t shards, const BenchArgs& args) {
  workload::TraceConfig config = args.ToConfig();
  config.shards = shards;
  auto store = workload::BuildEnterpriseTrace(config);
  const auto alerts =
      workload::SampleAnomalyEvents(*store, args.num_cases, args.seed);

  ShardRun run;
  run.shards = shards;
  run.case_edges.resize(alerts.size());
  run.case_nodes.resize(alerts.size());
  store->ResetStats();
  const TimeMicros wall_start = MonotonicNowMicros();
  ParallelFor(alerts.size(), args.threads, [&](size_t i) {
    SimClock clock;
    SessionOptions options;
    options.use_baseline = false;
    options.num_windows_k = args.windows_k;
    options.scan_threads = args.scan_threads;
    Session session(store.get(), &clock, options);
    const bdl::TrackingSpec spec =
        workload::GenericSpecFor(*store, alerts[i]);
    if (!session.StartWithSpec(spec, alerts[i]).ok()) return;
    const auto reason = session.Step(RunLimits{});  // uncapped
    (void)reason;
    run.case_nodes[i] = session.graph().NumNodes();
    session.graph().ForEachEdge([&](const DepGraph::Edge& e) {
      run.case_edges[i].insert(e.event);
    });
  });
  run.wall_seconds = MicrosToSeconds(MonotonicNowMicros() - wall_start);
  run.snapshot = store->ShardSnapshot();
  return run;
}

/// Per-shard counters must sum exactly to the rung's totals — the
/// snapshot contract (docs/sharding.md). simulated_cost is excluded:
/// the per-query overhead term is charged once per scan, not per shard.
bool Reconciles(const ShardedStore::Snapshot& snap) {
  StoreStats sum;
  for (const auto& row : snap.shards) {
    sum.rows_matched += row.stats.rows_matched;
    sum.rows_filtered += row.stats.rows_filtered;
    sum.partitions_probed += row.stats.partitions_probed;
    sum.partitions_seeked += row.stats.partitions_seeked;
    sum.segments_pruned += row.stats.segments_pruned;
  }
  return sum.rows_matched == snap.total.rows_matched &&
         sum.rows_filtered == snap.total.rows_filtered &&
         sum.partitions_probed == snap.total.partitions_probed &&
         sum.partitions_seeked == snap.total.partitions_seeked &&
         sum.segments_pruned == snap.total.segments_pruned;
}

std::string TotalsJson(const StoreStats& s) {
  obs::JsonDict d;
  d.Add("queries", s.queries);
  d.Add("rows_matched", s.rows_matched);
  d.Add("rows_filtered", s.rows_filtered);
  d.Add("partitions_probed", s.partitions_probed);
  d.Add("partitions_seeked", s.partitions_seeked);
  d.Add("segments_pruned", s.segments_pruned);
  d.Add("simulated_cost_us", static_cast<uint64_t>(s.simulated_cost));
  return d.Str();
}

std::string RunJson(const ShardRun& run, bool identical, bool reconciled) {
  std::string shards = "[";
  for (size_t i = 0; i < run.snapshot.shards.size(); ++i) {
    const auto& row = run.snapshot.shards[i];
    if (i) shards += ",";
    obs::JsonDict d;
    d.Add("shard", static_cast<uint64_t>(row.shard));
    d.Add("resident_rows", row.resident_rows);
    d.Add("scans", row.stats.queries);
    d.Add("rows_matched", row.stats.rows_matched);
    d.Add("rows_filtered", row.stats.rows_filtered);
    d.Add("partitions_probed", row.stats.partitions_probed);
    d.Add("partitions_seeked", row.stats.partitions_seeked);
    d.Add("segments_pruned", row.stats.segments_pruned);
    d.Add("boundary_rows", row.boundary_rows);
    d.Add("sim_cost_us",
          static_cast<uint64_t>(row.stats.simulated_cost));
    shards += d.Str();
  }
  shards += "]";
  obs::JsonDict d;
  d.Add("shards", static_cast<uint64_t>(run.shards));
  d.Add("wall_seconds", run.wall_seconds);
  d.Add("identical_graphs", identical);
  d.Add("reconciliation_ok", reconciled);
  d.AddRaw("total", TotalsJson(run.snapshot.total));
  d.AddRaw("per_shard", shards);
  return d.Str();
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.bench_json.empty()) args.bench_json = "BENCH_shard_scaling.json";
  ObsRun obs_run(args, "bench_shard_scaling");

  // No PrintHeader: the trace is rebuilt per rung (same seed, different
  // shard count), so there is no single store to quote an event count
  // from yet — the per-rung lines carry the sizes instead.
  std::printf(
      "==============================================================\n"
      "Shard scaling: scatter-gather scans vs. the monolithic store\n"
      "trace: %d hosts, %d days | cases: %zu | seed: %llu | k: %d\n"
      "==============================================================\n",
      args.num_hosts, args.days, args.num_cases,
      static_cast<unsigned long long>(args.seed), args.windows_k);
  std::printf("backend: %s | rungs:", StorageBackendName(args.backend));
  for (size_t n : kShardCounts) std::printf(" %zu", n);
  std::printf(" shards\n\n");

  std::vector<ShardRun> runs;
  runs.reserve(std::size(kShardCounts));
  for (size_t n : kShardCounts) runs.push_back(RunLadderRung(n, args));
  const ShardRun& base = runs.front();

  bool failed = false;
  std::string runs_json = "[";
  for (size_t r = 0; r < runs.size(); ++r) {
    const ShardRun& run = runs[r];
    // Identity vs. the shards=1 rung: graphs and delivered-row totals.
    size_t mismatches = 0;
    for (size_t i = 0; i < run.case_edges.size(); ++i) {
      if (run.case_edges[i] != base.case_edges[i] ||
          run.case_nodes[i] != base.case_nodes[i]) {
        ++mismatches;
      }
    }
    const bool identical =
        mismatches == 0 &&
        run.snapshot.total.rows_matched == base.snapshot.total.rows_matched &&
        run.snapshot.total.queries == base.snapshot.total.queries;
    const bool reconciled = Reconciles(run.snapshot);
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: shards=%zu diverged from shards=1 "
                   "(%zu case graphs differ)\n",
                   run.shards, mismatches);
      failed = true;
    }
    if (!reconciled) {
      std::fprintf(stderr,
                   "FAIL: shards=%zu per-shard counters do not sum to "
                   "the store totals\n",
                   run.shards);
      failed = true;
    }

    uint64_t max_rows = 0;
    uint64_t boundary = 0;
    for (const auto& row : run.snapshot.shards) {
      max_rows = std::max(max_rows, row.stats.rows_matched);
      boundary += row.boundary_rows;
    }
    const double balance =
        run.snapshot.total.rows_matched > 0 && !run.snapshot.shards.empty()
            ? static_cast<double>(max_rows) * run.snapshot.shards.size() /
                  static_cast<double>(run.snapshot.total.rows_matched)
            : 1.0;
    std::printf(
        "shards=%zu  wall %6.2fs  probed %10llu  pruned %10llu  "
        "boundary %8llu  hottest-shard %.2fx  %s\n",
        run.shards, run.wall_seconds,
        static_cast<unsigned long long>(run.snapshot.total.partitions_probed),
        static_cast<unsigned long long>(run.snapshot.total.segments_pruned),
        static_cast<unsigned long long>(boundary), balance,
        identical && reconciled ? "ok" : "FAIL");

    if (r) runs_json += ",";
    runs_json += RunJson(run, identical, reconciled);
  }
  runs_json += "]";

  obs::JsonDict top;
  top.Add("bench", "shard_scaling");
  top.Add("backend", StorageBackendName(args.backend));
  top.Add("cases", static_cast<uint64_t>(args.num_cases));
  top.Add("hosts", static_cast<int64_t>(args.num_hosts));
  top.Add("days", static_cast<int64_t>(args.days));
  top.Add("seed", args.seed);
  top.Add("k", static_cast<int64_t>(args.windows_k));
  top.Add("scan_threads", static_cast<int64_t>(args.scan_threads));
  top.Add("ok", !failed);
  top.AddRaw("runs", runs_json);
  std::ofstream out(args.bench_json);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", args.bench_json.c_str());
    return 1;
  }
  out << top.Str() << "\n";
  out.close();
  std::printf("\n%s: wrote %s\n", failed ? "FAIL" : "PASS",
              args.bench_json.c_str());
  obs_run.Finish();
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace aptrace::bench

int main(int argc, char** argv) { return aptrace::bench::Main(argc, argv); }
