// Reproduces Table I of the paper: the five staged attack cases, with the
// size of the dependency graph without heuristics (No Opt), the number of
// events checked with the BDL refinement sequence applied (Opt), the
// number of heuristics, and the total (simulated) analysis time.
//
// The Opt column drives the exact blue-team workflow of Section IV-D:
// start the unguided script, watch the first updates, pause, add each
// heuristic through the Refiner, resume, and stop as soon as the whole
// ground-truth chain is visible in the graph.

#include "bench/bench_common.h"
#include "util/string_util.h"

namespace aptrace::bench {
namespace {

struct CaseRow {
  std::string title;
  size_t no_opt = 0;
  bool no_opt_capped = false;
  size_t opt = 0;
  size_t heuristics = 0;
  DurationMicros time = 0;
  bool recovered = false;
};

CaseRow RunAttackCase(const std::string& name, const BenchArgs& args) {
  workload::TraceConfig config = args.ToConfig();
  auto built = workload::BuildAttackCase(name, config);
  CaseRow row;
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return row;
  }
  const workload::AttackScenario& scenario = built->scenario;
  const EventStore& store = *built->store;
  row.title = scenario.title;
  row.heuristics = scenario.num_heuristics;

  // ---- No Opt: unguided backtracking, capped at 4 simulated hours (the
  // paper terminated every unguided run past the four-hour mark).
  {
    SimClock clock;
    Session session(&store, &clock);
    if (session.Start(scenario.bdl_scripts[0]).ok()) {
      RunLimits limits;
      limits.sim_time = 4 * kMicrosPerHour;
      auto reason = session.Step(limits);
      row.no_opt = session.graph().NumEdges();
      row.no_opt_capped =
          reason.ok() && reason.value() == StopReason::kExternalLimit;
    }
  }

  // ---- Opt: the interactive refinement loop.
  {
    SimClock clock;
    SessionOptions options;
    options.num_windows_k = args.windows_k;
    options.scan_threads = args.scan_threads;
    Session session(&store, &clock, options);
    if (!session.Start(scenario.bdl_scripts[0]).ok()) return row;
    const auto found = [&] {
      return workload::ChainRecovered(session.graph(), scenario);
    };
    RunLimits peek;
    peek.max_updates = 5;
    peek.sim_time = 3 * kMicrosPerMinute;  // "after viewing two events in
                                           // less than three minutes"
    peek.should_stop = found;
    (void)session.Step(peek);
    for (size_t v = 1; v < scenario.bdl_scripts.size() && !found(); ++v) {
      if (!session.UpdateScript(scenario.bdl_scripts[v]).ok()) break;
      RunLimits limits;
      limits.should_stop = found;
      if (v + 1 < scenario.bdl_scripts.size()) {
        // Between refinements the analyst watches only a couple of
        // minutes of updates before estimating the next heuristic
        // (Section IV-D: "after viewing eight more events in two
        // minutes...").
        limits.max_updates = 10;
        limits.sim_time = 2 * kMicrosPerMinute;
      }
      (void)session.Step(limits);
    }
    row.recovered = found();
    row.opt = session.graph().NumEdges();
    row.time = clock.NowMicros() - session.stats().run_start;
  }
  return row;
}

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsRun obs_run(args, "bench_table1");
  std::printf(
      "==============================================================\n"
      "Table I: the five attack cases (sizes in events; time simulated)\n"
      "==============================================================\n");
  std::printf("%-22s %10s %7s %12s %10s %10s\n", "Attack", "No Opt", "Opt",
              "# Heuristics", "Time", "Recovered");

  struct PaperRow {
    const char* no_opt;
    const char* opt;
    const char* h;
    const char* t;
  };
  const std::vector<PaperRow> paper = {{"30.75K", "140", "2", "10m"},
                                       {"5.34K", "45", "3", "10m"},
                                       {"32.25K", "154", "2", "5m"},
                                       {"43.64K", "152", "3", "9m"},
                                       {"121.26K", "75", "2", "10m"}};
  const auto names = workload::AttackCaseNames();
  for (size_t i = 0; i < names.size(); ++i) {
    const CaseRow row = RunAttackCase(names[i], args);
    std::string no_opt = std::to_string(row.no_opt);
    if (row.no_opt_capped) no_opt += "+";  // still growing at the 4h cap
    std::printf("%-22s %10s %7zu %12zu %10s %10s\n", row.title.c_str(),
                no_opt.c_str(), row.opt, row.heuristics,
                FormatDuration(row.time).c_str(),
                row.recovered ? "yes" : "NO");
    std::printf("%-22s %10s %7s %12s %10s   (paper)\n", "", paper[i].no_opt,
                paper[i].opt, paper[i].h, paper[i].t);
  }
  std::printf(
      "\n'+' marks runs still exploring when the 4h no-heuristics cap "
      "fired.\nShapes to check: Opt is orders of magnitude below No Opt; "
      "2-3 heuristics per case;\nanalysis finishes within the scripts' "
      "10-minute budget with the chain recovered.\n");
  obs_run.Finish();
  return 0;
}

}  // namespace
}  // namespace aptrace::bench

int main(int argc, char** argv) { return aptrace::bench::Main(argc, argv); }
