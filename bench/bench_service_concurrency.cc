// Multi-tenant responsiveness of the daemon's fair-share scheduler: one
// large (unconstrained, full-trace) tracking session plus several small
// (hop-limited) ones share a SessionManager, and the report shows how
// quickly each small session saw service — its first update batch or
// completion — relative to the large session's completion.
//
// The fairness claim under test: no small session waits for the large
// closure to finish. The bench exits nonzero if any small session's
// first service arrives after the large session completes, making it a
// CI-runnable fairness gate on top of
// tests/service_test.cc (FairShareServesSmallSessionsUnderALargeOne).
//
//   --small=N         number of small sessions (default 3)
//   --large-budget=N  window budget for the large session (default
//                     20000; 0 = unbounded). An unconstrained backward
//                     closure from a hot file on the full enterprise
//                     trace is exactly the dependency explosion the
//                     paper warns about — bounding it keeps the bench
//                     CI-runnable while still dwarfing the smalls.
//   --json-out=F      machine-readable results
//   --bench-json=F    alias for --json-out following the BENCH_*.json
//                     artifact convention (CI uploads these)

#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>

#include "bench/bench_common.h"
#include "obs/json_dict.h"
#include "service/session_manager.h"

namespace aptrace::bench {
namespace {

struct SessionReport {
  uint64_t id = 0;
  bool small = false;
  uint64_t cursor = 0;           // acks delivered batches (keeps the
                                 // buffer draining so the scheduler
                                 // never parks us on backpressure)
  double first_service_ms = -1;  // wall ms from open to first batch/done
  double done_ms = -1;           // wall ms from open to terminal
  size_t edges = 0;
};

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  int num_small = 3;
  uint64_t large_budget = 20000;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--small=", 8) == 0) {
      num_small = std::atoi(a + 8);
    } else if (std::strncmp(a, "--large-budget=", 15) == 0) {
      large_budget = std::strtoull(a + 15, nullptr, 10);
    } else if (std::strncmp(a, "--json-out=", 11) == 0) {
      json_out = a + 11;
    }
  }
  if (json_out.empty()) json_out = args.bench_json;

  workload::TraceConfig config = workload::TraceConfig::Small();
  config.num_hosts = args.num_hosts;
  config.days = args.days;
  config.seed = args.seed;
  config.backend = args.backend;
  auto store = workload::BuildEnterpriseTrace(config);
  const auto alerts =
      workload::SampleAnomalyEvents(*store, 1 + num_small, args.seed);
  if (alerts.size() < static_cast<size_t>(1 + num_small)) {
    std::fprintf(stderr, "not enough anomaly events sampled\n");
    return 2;
  }

  service::ServiceLimits limits;
  limits.max_live_sessions = 1 + num_small;
  limits.scan_threads = args.threads;
  limits.session_scan_threads = args.scan_threads;
  service::SessionManager manager(store.get(), limits);

  const auto script_for = [&](const Event& alert, bool small) {
    const ObjectType type = store->catalog().Get(alert.FlowDest()).type();
    std::string script =
        std::string("backward ") + ObjectTypeName(type) + " x[] -> *";
    if (small) script += " where hop <= 1";
    return script;
  };

  const TimeMicros t0 = MonotonicNowMicros();
  std::vector<SessionReport> reports;
  // The large session first, then the smalls arriving behind it — the
  // adversarial order for a FIFO scheduler.
  for (int i = 0; i < 1 + num_small; ++i) {
    const bool small = i > 0;
    service::OpenOptions opts;
    opts.start_event = alerts[i].id;
    if (!small && large_budget > 0) opts.window_budget = large_budget;
    auto id = manager.Open(script_for(alerts[i], small), opts);
    if (!id.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   id.status().message().c_str());
      return 2;
    }
    SessionReport r;
    r.id = id.value();
    r.small = small;
    reports.push_back(r);
  }

  // Poll everything until all terminal, recording first-service times.
  const auto ms_since_open = [&] {
    return static_cast<double>(MonotonicNowMicros() - t0) / 1000.0;
  };
  bool all_terminal = false;
  while (!all_terminal) {
    all_terminal = true;
    for (SessionReport& r : reports) {
      if (r.done_ms >= 0) continue;
      auto p = manager.Poll(r.id, r.cursor, 0);
      if (!p.ok()) return 2;
      r.cursor = p->next_cursor;
      if (r.first_service_ms < 0 && (!p->batches.empty() || p->terminal)) {
        r.first_service_ms = ms_since_open();
      }
      if (p->terminal) {
        r.done_ms = ms_since_open();
        r.edges = p->snapshot.graph_edges;
      } else {
        all_terminal = false;
      }
    }
    // Yield between rounds: polling is cheap, the scans are not, and on
    // a small machine a hot poll loop steals cycles from the scheduler.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const SessionReport& large = reports.front();
  std::printf("service fairness: 1 large + %d small sessions, "
              "%zu events, backend=%s\n",
              num_small, store->NumEvents(),
              StorageBackendName(args.backend));
  std::printf("%-8s %-6s %18s %14s %10s\n", "session", "kind",
              "first_service_ms", "done_ms", "edges");
  bool fair = true;
  for (const SessionReport& r : reports) {
    std::printf("%-8llu %-6s %18.2f %14.2f %10zu\n",
                static_cast<unsigned long long>(r.id),
                r.small ? "small" : "large", r.first_service_ms, r.done_ms,
                r.edges);
    if (r.small && r.first_service_ms > large.done_ms) fair = false;
  }
  std::printf("large done at %.2f ms; fairness %s\n", large.done_ms,
              fair ? "OK" : "VIOLATED");

  if (!json_out.empty()) {
    obs::JsonDict root;
    root.Add("bench", "service_concurrency");
    root.Add("num_small", static_cast<int64_t>(num_small));
    root.Add("large_done_ms", large.done_ms);
    root.Add("fair", fair);
    std::string sessions;
    for (const SessionReport& r : reports) {
      obs::JsonDict d;
      d.Add("id", r.id);
      d.Add("kind", r.small ? "small" : "large");
      d.Add("first_service_ms", r.first_service_ms);
      d.Add("done_ms", r.done_ms);
      d.Add("edges", static_cast<uint64_t>(r.edges));
      if (!sessions.empty()) sessions += ',';
      sessions += d.Str();
    }
    root.AddRaw("sessions", "[" + sessions + "]");
    std::ofstream out(json_out);
    out << root.Str() << "\n";
  }
  return fair ? 0 : 1;
}

}  // namespace
}  // namespace aptrace::bench

int main(int argc, char** argv) { return aptrace::bench::Main(argc, argv); }
