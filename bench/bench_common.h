#ifndef APTRACE_BENCH_BENCH_COMMON_H_
#define APTRACE_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "obs/metrics.h"
#include "obs/run_metadata.h"
#include "obs/trace.h"
#include "workload/enterprise.h"
#include "workload/scenario.h"

namespace aptrace::bench {

/// Command-line knobs shared by the experiment binaries. All experiments
/// are deterministic for a given seed.
struct BenchArgs {
  size_t num_cases = 200;  // random starting events (paper: 200)
  int num_hosts = 12;      // enterprise fleet size (paper: 256, scaled)
  int days = 30;
  uint64_t seed = 42;
  int windows_k = 8;       // the paper's empirical k
  int threads = 0;         // 0 = hardware concurrency (results identical)
  int scan_threads = 1;    // executor scan workers per case (1 = sequential)
  /// Storage backend (default: APTRACE_BACKEND env var, else row).
  /// Results are identical across backends; only simulated cost differs.
  StorageBackendKind backend = DefaultStorageBackendKind();
  /// Store shard count (default: APTRACE_SHARDS env var, else 1).
  /// Results are identical at any count; only scan fan-out differs.
  size_t shards = DefaultShardCount();
  std::string bench_json;  // machine-readable result file (BENCH_*.json)
  std::string metrics_out;  // "-" = stdout, *.json = JSON export
  std::string trace_out;    // Chrome trace JSON; enables span recording
  std::string meta_out;     // run metadata JSON (default: <metrics>.meta.json)
  std::string invocation;   // argv joined, recorded in the run metadata

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 0; i < argc; ++i) {
      if (i) args.invocation += ' ';
      args.invocation += argv[i];
    }
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--cases=", 8) == 0) {
        args.num_cases = static_cast<size_t>(std::atoll(a + 8));
      } else if (std::strncmp(a, "--hosts=", 8) == 0) {
        args.num_hosts = std::atoi(a + 8);
      } else if (std::strncmp(a, "--days=", 7) == 0) {
        args.days = std::atoi(a + 7);
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        args.seed = static_cast<uint64_t>(std::atoll(a + 7));
      } else if (std::strncmp(a, "--k=", 4) == 0) {
        args.windows_k = std::atoi(a + 4);
      } else if (std::strncmp(a, "--threads=", 10) == 0) {
        args.threads = std::atoi(a + 10);
      } else if (std::strncmp(a, "--scan-threads=", 15) == 0) {
        args.scan_threads = std::atoi(a + 15);
      } else if (std::strncmp(a, "--backend=", 10) == 0) {
        const auto parsed = ParseStorageBackendKind(a + 10);
        if (!parsed.has_value()) {
          std::fprintf(stderr,
                       "--backend: expected 'row' or 'columnar', got '%s'\n",
                       a + 10);
          // Single-threaded flag parsing at process start.
          std::exit(2);  // NOLINT(concurrency-mt-unsafe)
        }
        args.backend = *parsed;
      } else if (std::strncmp(a, "--shards=", 9) == 0) {
        const long n = std::atol(a + 9);
        if (n < 1 || n > static_cast<long>(kMaxStoreShards)) {
          std::fprintf(stderr,
                       "--shards: expected a shard count in [1, %d], "
                       "got '%s'\n",
                       static_cast<int>(kMaxStoreShards), a + 9);
          // Single-threaded flag parsing at process start.
          std::exit(2);  // NOLINT(concurrency-mt-unsafe)
        }
        args.shards = static_cast<size_t>(n);
      } else if (std::strncmp(a, "--bench-json=", 13) == 0) {
        args.bench_json = a + 13;
      } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
        args.metrics_out = a + 14;
      } else if (std::strncmp(a, "--trace-out=", 12) == 0) {
        args.trace_out = a + 12;
      } else if (std::strncmp(a, "--meta-out=", 11) == 0) {
        args.meta_out = a + 11;
      } else if (std::strcmp(a, "--help") == 0) {
        std::printf(
            "flags: --cases=N --hosts=N --days=N --seed=N --k=N "
            "--threads=N --scan-threads=N --backend=row|columnar "
            "--shards=N --bench-json=F "
            "--metrics-out=F --trace-out=F --meta-out=F\n");
        // Single-threaded flag parsing at process start.
        std::exit(0);  // NOLINT(concurrency-mt-unsafe)
      }
    }
    return args;
  }

  workload::TraceConfig ToConfig() const {
    workload::TraceConfig config;
    config.num_hosts = num_hosts;
    config.days = days;
    config.seed = seed;
    config.backend = backend;
    config.shards = shards;
    return config;
  }
};

/// Result of one backtracking run over the enterprise trace.
struct CaseRun {
  StopReason reason = StopReason::kCompleted;
  std::vector<double> waits_seconds;  // between consecutive updates
  size_t graph_edges = 0;
  size_t graph_nodes = 0;
  DurationMicros elapsed = 0;  // simulated
  /// Deterministic scan totals from the responsive engine (0 on the
  /// baseline): summed simulated scan cost, and the modeled makespan of
  /// those scans on scan_threads parallel servers (ScanOverlapModel).
  DurationMicros scan_cost_total = 0;
  DurationMicros modeled_scan_makespan = 0;
};

/// Backtracks from `alert` with either engine, capped at `sim_cap`
/// simulated time (negative = uncapped). `on_update` is optional;
/// `scan_threads` selects the executor's parallel scan pipeline (results
/// are identical for any value).
inline CaseRun RunCase(const EventStore& store, const Event& alert,
                       bool use_baseline, int windows_k,
                       DurationMicros sim_cap,
                       const std::function<void(const UpdateBatch&,
                                                Clock&)>& on_update = {},
                       int scan_threads = 1) {
  SimClock clock;
  SessionOptions options;
  options.use_baseline = use_baseline;
  options.num_windows_k = windows_k;
  options.scan_threads = scan_threads;
  Session session(&store, &clock, options);

  const bdl::TrackingSpec spec = workload::GenericSpecFor(store, alert);
  CaseRun run;
  if (!session.StartWithSpec(spec, alert).ok()) return run;

  RunLimits limits;
  limits.sim_time = sim_cap;
  if (on_update) {
    limits.on_update = [&](const UpdateBatch& b) { on_update(b, clock); };
  }
  auto reason = session.Step(limits);
  run.reason = reason.ok() ? reason.value() : StopReason::kStopped;
  run.waits_seconds = session.update_log().WaitingTimesSeconds();
  run.graph_edges = session.graph().NumEdges();
  run.graph_nodes = session.graph().NumNodes();
  run.elapsed = clock.NowMicros() - session.stats().run_start;
  if (const auto* executor = dynamic_cast<Executor*>(session.engine())) {
    run.scan_cost_total = executor->scan_cost_total();
    run.modeled_scan_makespan = executor->modeled_scan_makespan();
  }
  return run;
}

/// Runs fn(i) for every i in [0, n) across worker threads (the store is
/// safe for concurrent read-only sessions). Each i must write only its own
/// pre-sized result slot; aggregation stays serial and deterministic.
inline void ParallelFor(size_t n, int requested_threads,
                        const std::function<void(size_t)>& fn) {
  int threads = requested_threads > 0
                    ? requested_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::max(1, std::min<int>(threads, 32));
  if (threads == 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

/// Observability bracket around one experiment binary: construct right
/// after BenchArgs::Parse (enables span recording if --trace-out was
/// given), call Finish once the store exists and the runs are done —
/// it writes the metrics snapshot, the Chrome trace, and a run-metadata
/// JSON next to the metrics file.
class ObsRun {
 public:
  ObsRun(const BenchArgs& args, const char* bench_name)
      : args_(args),
        bench_name_(bench_name),
        wall_start_(MonotonicNowMicros()) {
    if (!args_.trace_out.empty()) obs::Tracer::Global().SetEnabled(true);
  }

  /// For binaries without one shared store (per-scenario traces).
  void Finish() { FinishImpl(0, 0); }

  void Finish(const EventStore& store) {
    FinishImpl(store.NumEvents(), store.catalog().size());
  }

 private:
  void FinishImpl(uint64_t store_events, uint64_t store_objects) {
    if (!args_.metrics_out.empty()) {
      if (auto s = obs::WriteMetricsFile(obs::Metrics(), args_.metrics_out);
          !s.ok()) {
        std::fprintf(stderr, "metrics: %s\n", s.ToString().c_str());
      }
    }
    if (!args_.trace_out.empty()) {
      if (auto s = obs::Tracer::Global().WriteChromeTrace(args_.trace_out);
          !s.ok()) {
        std::fprintf(stderr, "trace: %s\n", s.ToString().c_str());
      }
    }
    std::string meta_path = args_.meta_out;
    if (meta_path.empty() && !args_.metrics_out.empty() &&
        args_.metrics_out != "-") {
      meta_path = args_.metrics_out + ".meta.json";
    }
    if (meta_path.empty()) return;
    obs::RunMetadata meta;
    meta.name = bench_name_;
    meta.invocation = args_.invocation;
    meta.store_events = store_events;
    meta.store_objects = store_objects;
    meta.wall_seconds =
        MicrosToSeconds(MonotonicNowMicros() - wall_start_);
    meta.extra.emplace_back("cases", std::to_string(args_.num_cases));
    meta.extra.emplace_back("hosts", std::to_string(args_.num_hosts));
    meta.extra.emplace_back("days", std::to_string(args_.days));
    meta.extra.emplace_back("seed", std::to_string(args_.seed));
    meta.extra.emplace_back("k", std::to_string(args_.windows_k));
    if (auto s = obs::WriteRunMetadata(meta, obs::Metrics(), meta_path);
        !s.ok()) {
      std::fprintf(stderr, "run metadata: %s\n", s.ToString().c_str());
    }
  }

  const BenchArgs& args_;
  const char* bench_name_;
  TimeMicros wall_start_;
};

inline void PrintHeader(const char* title, const BenchArgs& args,
                        size_t store_events) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf(
      "trace: %d hosts, %d days, %zu events | cases: %zu | seed: %llu | "
      "k: %d\n",
      args.num_hosts, args.days, store_events, args.num_cases,
      static_cast<unsigned long long>(args.seed), args.windows_k);
  std::printf("==============================================================\n");
}

}  // namespace aptrace::bench

#endif  // APTRACE_BENCH_BENCH_COMMON_H_
