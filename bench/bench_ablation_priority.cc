// Ablation of the Executor's window ordering: Algorithm 1 prioritizes
// execution windows whose end time is closest to the starting point
// (exploiting the temporal locality of system events); the ablated
// variant pops windows FIFO. Metric: simulated time and events examined
// until the staged attack chain is fully recovered, across the five
// Table I cases (same guided refinement workflow as bench_table1).

#include "bench/bench_common.h"
#include "util/string_util.h"

namespace aptrace::bench {
namespace {

struct Outcome {
  bool recovered = false;
  DurationMicros time = 0;
  size_t events = 0;
};

Outcome Investigate(const EventStore& store,
                    const workload::AttackScenario& scenario,
                    bool temporal, int k) {
  SimClock clock;
  SessionOptions options;
  options.num_windows_k = k;
  options.temporal_priority = temporal;
  Session session(&store, &clock, options);
  Outcome out;
  if (!session.Start(scenario.bdl_scripts[0]).ok()) return out;
  const auto found = [&] {
    return workload::ChainRecovered(session.graph(), scenario);
  };
  RunLimits peek;
  peek.max_updates = 5;
  peek.sim_time = 3 * kMicrosPerMinute;
  peek.should_stop = found;
  (void)session.Step(peek);
  for (size_t v = 1; v < scenario.bdl_scripts.size() && !found(); ++v) {
    if (!session.UpdateScript(scenario.bdl_scripts[v]).ok()) break;
    RunLimits limits;
    limits.should_stop = found;
    if (v + 1 < scenario.bdl_scripts.size()) {
      limits.max_updates = 10;
      limits.sim_time = 2 * kMicrosPerMinute;
    }
    (void)session.Step(limits);
  }
  out.recovered = found();
  out.time = clock.NowMicros() - session.stats().run_start;
  out.events = session.graph().NumEdges();
  return out;
}

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsRun obs_run(args, "bench_ablation_priority");
  std::printf(
      "==============================================================\n"
      "Ablation: temporal (nearest-first) vs FIFO window ordering\n"
      "metric: guided investigation to full chain recovery (Table I flow)\n"
      "==============================================================\n");
  std::printf("%-22s | %10s %8s %5s | %10s %8s %5s\n", "",
              "time", "events", "ok", "time", "events", "ok");
  std::printf("%-22s | %25s | %25s\n", "Attack", "temporal (Algorithm 1)",
              "FIFO (ablation)");

  for (const std::string& name : workload::AttackCaseNames()) {
    auto built = workload::BuildAttackCase(name, args.ToConfig());
    if (!built.ok()) continue;
    const Outcome t = Investigate(*built->store, built->scenario, true,
                                  args.windows_k);
    const Outcome f = Investigate(*built->store, built->scenario, false,
                                  args.windows_k);
    std::printf("%-22s | %10s %8zu %5s | %10s %8zu %5s\n",
                built->scenario.title.c_str(),
                FormatDuration(t.time).c_str(), t.events,
                t.recovered ? "yes" : "NO",
                FormatDuration(f.time).c_str(), f.events,
                f.recovered ? "yes" : "NO");
  }
  std::printf(
      "\nshape to check: FIFO wastes the budget on temporally distant "
      "windows, taking longer\n(or failing the 10-minute budget) and "
      "examining more events before the chain appears.\n");
  obs_run.Finish();
  return 0;
}

}  // namespace
}  // namespace aptrace::bench

int main(int argc, char** argv) { return aptrace::bench::Main(argc, argv); }
