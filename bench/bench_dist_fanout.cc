// Distributed fan-out cost: the same enterprise workload backtracked
// over (a) the in-process sharded store and (b) the distributed shard
// fabric — a fleet of real aptrace_shardd daemons on loopback TCP, one
// per shard, driven through RemoteShardBackend (docs/distribution.md).
//
// The simulated scan cost and every graph must be identical between the
// two configurations — the fabric changes where rows live, never what a
// query returns — so the bench doubles as a process-level determinism
// gate and exits nonzero on any divergence. The interesting number is
// the wall-clock ratio: what RPC fan-out over loopback costs relative
// to an in-process index walk, with the store's dedicated fan-out
// threads overlapping the per-shard round-trips.
//
//   --shardd=PATH     shard daemon binary (default: the build-tree
//                     aptrace_shardd; empty or missing path = SKIP,
//                     exit 0, so the bench degrades gracefully outside
//                     a full build tree)
//   --bench-json=F    machine-readable results
//                     (default BENCH_dist_fanout.json)
//
// Standard knobs (--cases, --seed, --backend, --shards, --scan-threads)
// apply; --shards picks the shard/daemon count (default 4).

#include <unistd.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dist/fleet.h"
#include "dist/remote_backend.h"
#include "dist/shard_client.h"
#include "obs/json_dict.h"

#ifndef APTRACE_SHARDD_BIN
#define APTRACE_SHARDD_BIN ""
#endif

namespace aptrace::bench {
namespace {

/// Totals of one configuration's pass over all cases.
struct ConfigResult {
  size_t edges = 0;
  size_t nodes = 0;
  DurationMicros scan_cost = 0;
  double wall_seconds = 0;
};

ConfigResult RunAll(const EventStore& store,
                    const std::vector<Event>& alerts, const BenchArgs& args) {
  ConfigResult r;
  const TimeMicros start = MonotonicNowMicros();
  for (const Event& alert : alerts) {
    const CaseRun run =
        RunCase(store, alert, /*use_baseline=*/false, args.windows_k,
                /*sim_cap=*/-1, /*on_update=*/{},
                std::max(1, args.scan_threads));
    r.edges += run.graph_edges;
    r.nodes += run.graph_nodes;
    r.scan_cost += run.scan_cost_total;
  }
  r.wall_seconds = MicrosToSeconds(MonotonicNowMicros() - start);
  return r;
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.bench_json.empty()) args.bench_json = "BENCH_dist_fanout.json";
  std::string shardd = APTRACE_SHARDD_BIN;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shardd=", 9) == 0) shardd = argv[i] + 9;
  }
  if (shardd.empty() || access(shardd.c_str(), X_OK) != 0) {
    std::printf("SKIP: no shard daemon binary (%s); pass --shardd=PATH\n",
                shardd.empty() ? "unset" : shardd.c_str());
    return 0;
  }
  const size_t shards = args.shards > 1 ? args.shards : 4;

  ObsRun obs_run(args, "bench_dist_fanout");

  // Small per-host rates keep the trace CI-sized; the daemons' default
  // layout knobs (partition width, segment rows) already match the
  // coordinator's defaults, so probe structure is identical.
  workload::TraceConfig config = workload::TraceConfig::Small();
  config.num_hosts = args.num_hosts;
  config.days = args.days;
  config.seed = args.seed;
  config.backend = args.backend;
  config.shards = shards;
  auto local = workload::BuildEnterpriseTrace(config);

  dist::FleetOptions fleet_options;
  fleet_options.shardd_bin = shardd;
  fleet_options.shards = shards;
  fleet_options.backend = args.backend;
  auto fleet = dist::ShardFleet::Launch(fleet_options);
  if (!fleet.ok()) {
    std::fprintf(stderr, "fleet launch failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }
  std::vector<dist::ShardEndpoint> endpoints;
  for (const dist::ShardProcess& p : fleet.value()->shards()) {
    auto ep = dist::ParseShardEndpoint(p.endpoint);
    if (!ep.ok()) {
      std::fprintf(stderr, "bad fleet endpoint '%s': %s\n",
                   p.endpoint.c_str(), ep.status().ToString().c_str());
      return 1;
    }
    endpoints.push_back(std::move(ep).value());
  }

  // Same generator, same seed — but every shard is a daemon.
  config.store_tweak = [&endpoints, shards](EventStoreOptions& options) {
    options.dist_fanout_threads = shards;
    options.shard_backend_factory =
        [&endpoints](size_t shard, const EventStoreOptions& o)
        -> std::unique_ptr<StorageBackend> {
      dist::ShardClientOptions client_options;
      client_options.deadline_micros = 30'000'000;
      auto client = std::make_shared<dist::ShardClient>(
          endpoints[shard], static_cast<uint32_t>(shard), o.backend,
          client_options);
      return std::make_unique<dist::RemoteShardBackend>(
          std::move(client), o.backend, o.cost_model);
    };
  };
  const TimeMicros ingest_start = MonotonicNowMicros();
  auto remote = workload::BuildEnterpriseTrace(config);
  const double ingest_seconds =
      MicrosToSeconds(MonotonicNowMicros() - ingest_start);

  PrintHeader("Distributed fan-out: in-process shards vs shardd fleet",
              args, local->NumEvents());
  std::printf("fleet: %zu daemon(s), backend %s, ingest %.2f s\n", shards,
              StorageBackendName(args.backend), ingest_seconds);

  const std::vector<Event> alerts =
      workload::SampleAnomalyEvents(*local, args.num_cases, args.seed);
  const ConfigResult in_process = RunAll(*local, alerts, args);
  const ConfigResult distributed = RunAll(*remote, alerts, args);

  const bool identical = in_process.edges == distributed.edges &&
                         in_process.nodes == distributed.nodes &&
                         in_process.scan_cost == distributed.scan_cost;
  const double overhead = in_process.wall_seconds > 0
                              ? distributed.wall_seconds /
                                    in_process.wall_seconds
                              : 0;
  std::printf("%-12s %10s %10s %14s %10s\n", "config", "edges", "nodes",
              "scan cost", "wall s");
  std::printf("%-12s %10zu %10zu %14lld %10.3f\n", "in-process",
              in_process.edges, in_process.nodes,
              static_cast<long long>(in_process.scan_cost),
              in_process.wall_seconds);
  std::printf("%-12s %10zu %10zu %14lld %10.3f\n", "distributed",
              distributed.edges, distributed.nodes,
              static_cast<long long>(distributed.scan_cost),
              distributed.wall_seconds);
  std::printf("wall overhead: %.2fx | results %s\n", overhead,
              identical ? "identical" : "DIVERGED");
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: distributed results diverged from in-process — "
                 "the fabric changed query answers\n");
    return 1;
  }

  {
    obs::JsonDict root;
    root.Add("bench", std::string_view("dist_fanout"));
    root.Add("shards", static_cast<uint64_t>(shards));
    root.Add("backend", std::string_view(StorageBackendName(args.backend)));
    root.Add("events", local->NumEvents());
    root.Add("cases", static_cast<uint64_t>(alerts.size()));
    root.Add("seed", args.seed);
    root.Add("identical_results", identical);
    root.Add("ingest_wall_seconds", ingest_seconds);
    root.Add("scan_cost_total", static_cast<int64_t>(in_process.scan_cost));
    root.Add("local_wall_seconds", in_process.wall_seconds);
    root.Add("dist_wall_seconds", distributed.wall_seconds);
    root.Add("dist_overhead", overhead);
    std::ofstream f(args.bench_json);
    if (!f) {
      std::fprintf(stderr, "cannot open for write: %s\n",
                   args.bench_json.c_str());
      return 1;
    }
    f << root.Str() << "\n";
    std::printf("JSON written to %s\n", args.bench_json.c_str());
  }

  obs_run.Finish(*local);
  return 0;
}

}  // namespace
}  // namespace aptrace::bench

int main(int argc, char** argv) { return aptrace::bench::Main(argc, argv); }
