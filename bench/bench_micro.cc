// Microbenchmarks (google-benchmark) of the building blocks: storage
// backward-dependency scans, execution-window generation, BDL
// compilation, wildcard matching, and graph insertion. These quantify the
// real (not simulated) cost of the engine itself — the paper's Section
// IV-F argues the runtime overhead is moderate.

#include <benchmark/benchmark.h>

#include "bdl/analyzer.h"
#include "core/engine.h"
#include "workload/scenario.h"
#include "core/exec_window.h"
#include "graph/dep_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/event_store.h"
#include "util/rng.h"
#include "util/wildcard.h"

namespace aptrace {
namespace {

std::unique_ptr<EventStore> BuildScanStore(size_t num_events) {
  EventStoreOptions options;
  options.cost_model = CostModel::Free();
  auto store = std::make_unique<EventStore>(options);
  auto& c = store->catalog();
  const HostId h = c.InternHost("h");
  std::vector<ObjectId> procs;
  std::vector<ObjectId> files;
  for (int i = 0; i < 64; ++i) {
    procs.push_back(c.AddProcess(h, {.exename = "p" + std::to_string(i)}));
  }
  for (int i = 0; i < 512; ++i) {
    files.push_back(c.AddFile(h, {.path = "/f" + std::to_string(i)}));
  }
  Rng rng(7);
  for (size_t i = 0; i < num_events; ++i) {
    Event e;
    e.subject = procs[rng.Zipf(procs.size(), 1.0)];
    e.object = files[rng.Zipf(files.size(), 1.0)];
    e.timestamp = static_cast<TimeMicros>(rng.Uniform(30 * kMicrosPerDay));
    e.action = rng.Bernoulli(0.5) ? ActionType::kWrite : ActionType::kRead;
    e.direction = ActionDefaultDirection(e.action);
    e.host = h;
    store->Append(e);
  }
  store->Seal();
  return store;
}

void BM_StorageScanDest(benchmark::State& state) {
  static const auto store = BuildScanStore(1 << 20);
  // The hottest process: Zipf rank 0.
  const ObjectId hot = 0;
  size_t rows = 0;
  for (auto _ : state) {
    rows += store->ScanDest(hot, 0, 30 * kMicrosPerDay, nullptr,
                            [](const Event&) {});
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows));
}
BENCHMARK(BM_StorageScanDest);

void BM_StorageScanWindow(benchmark::State& state) {
  static const auto store = BuildScanStore(1 << 20);
  const ObjectId hot = 0;
  // A one-hour window, like the executor's near windows.
  size_t rows = 0;
  TimeMicros begin = 12 * kMicrosPerDay;
  for (auto _ : state) {
    rows += store->ScanDest(hot, begin, begin + kMicrosPerHour, nullptr,
                            [](const Event&) {});
    begin += kMicrosPerHour;
    if (begin > 29 * kMicrosPerDay) begin = 0;
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows));
}
BENCHMARK(BM_StorageScanWindow);

void BM_GenExeWindows(benchmark::State& state) {
  Event e;
  e.id = 1;
  e.subject = 1;
  e.object = 2;
  e.timestamp = 30 * kMicrosPerDay;
  e.action = ActionType::kWrite;
  e.direction = FlowDirection::kSubjectToObject;
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenExeWindows(e, 0, 0, k));
  }
}
BENCHMARK(BM_GenExeWindows)->Arg(1)->Arg(8)->Arg(16)->Arg(32);

void BM_BdlCompile(benchmark::State& state) {
  constexpr char kScript[] = R"(
from "04/02/2019" to "05/01/2019"
in "desktop1", "desktop2"
backward file f[path = "C://Sensitive/important.doc" and event_time = "04/16/2019:06:15:14" and type = "write"]
  -> proc p[exename = "malware1" or exename = "malware2" and event_id = 12]
  -> ip i[dstip = "168.120.11.118"]
where time < 10mins and hop < 25 and proc.exename != "explorer"
output = "./result.dot")";
  for (auto _ : state) {
    auto spec = bdl::CompileBdl(kScript);
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_BdlCompile);

void BM_WildcardMatch(benchmark::State& state) {
  const WildcardMatcher matcher("*.dll");
  const std::string hit = "C://Windows/System32/kernel32.dll";
  const std::string miss = "C://Users/victim/Documents/report.doc";
  bool acc = false;
  for (auto _ : state) {
    acc ^= matcher.Matches(hit);
    acc ^= matcher.Matches(miss);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_WildcardMatch);

void BM_GraphAddEdges(benchmark::State& state) {
  Rng rng(3);
  std::vector<Event> events;
  for (int i = 0; i < 10000; ++i) {
    Event e;
    e.id = static_cast<EventId>(i);
    e.subject = rng.Uniform(512);
    e.object = 512 + rng.Uniform(2048);
    e.timestamp = i;
    e.action = ActionType::kWrite;
    e.direction = FlowDirection::kSubjectToObject;
    events.push_back(e);
  }
  for (auto _ : state) {
    DepGraph graph;
    graph.SetStart(events[0].FlowDest());
    for (const Event& e : events) graph.AddEventEdge(e);
    benchmark::DoNotOptimize(graph.NumEdges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_GraphAddEdges);

void BM_ConditionEval(benchmark::State& state) {
  auto spec = bdl::CompileBdl(
      "backward proc p[] -> * where file.path != \"*.dll\" and "
      "proc.exename != \"findstr.exe\" and subject_pid > 100");
  ObjectCatalog catalog;
  const HostId h = catalog.InternHost("h");
  const ObjectId proc = catalog.AddProcess(h, {.exename = "java.exe",
                                               .pid = 4121});
  const ObjectId file = catalog.AddFile(
      h, {.path = "C://Windows/System32/kernel32.dll"});
  Event e;
  e.subject = proc;
  e.object = file;
  e.action = ActionType::kRead;
  e.direction = FlowDirection::kObjectToSubject;
  bdl::EvalContext ctx;
  ctx.object = &catalog.Get(file);
  ctx.event = &e;
  ctx.catalog = &catalog;
  bool acc = false;
  for (auto _ : state) {
    acc ^= bdl::ConditionKeeps(spec->where.get(), ctx);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ConditionEval);

void BM_EndToEndBacktrack(benchmark::State& state) {
  // Real (wall-clock) cost of a complete small analysis: engine overhead
  // only, the cost model charged to a SimClock.
  static const auto built = [] {
    return workload::BuildAttackCase("excel_macro",
                                     workload::TraceConfig::Small());
  }();
  if (!built.ok()) {
    state.SkipWithError("case build failed");
    return;
  }
  const auto& scenario = built->scenario;
  for (auto _ : state) {
    SimClock clock;
    Session session(built->store.get(), &clock);
    if (!session.Start(scenario.bdl_scripts.back()).ok()) {
      state.SkipWithError("start failed");
      return;
    }
    RunLimits limits;
    limits.sim_time = 10 * kMicrosPerMinute;
    (void)session.Step(limits);
    benchmark::DoNotOptimize(session.graph().NumEdges());
  }
}
BENCHMARK(BM_EndToEndBacktrack);

// --- Observability overhead: these bound what the instrumentation adds
// to the hot paths above.

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::Counter* c =
      obs::Metrics().FindOrCreateCounter("bench_micro_counter_total");
  for (auto _ : state) c->Add();
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::LatencyHistogram* h =
      obs::Metrics().FindOrCreateHistogram("bench_micro_histogram");
  double v = 0.0001;
  for (auto _ : state) {
    h->Observe(v);
    v = v < 100 ? v * 1.0001 : 0.0001;
  }
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::Tracer::Global().SetEnabled(false);
  for (auto _ : state) {
    APTRACE_SPAN("bench/disabled");
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::Tracer::Global().SetEnabled(true);
  for (auto _ : state) {
    APTRACE_SPAN("bench/enabled");
  }
  obs::Tracer::Global().SetEnabled(false);
  obs::Tracer::Global().Clear();
}
BENCHMARK(BM_ObsSpanEnabled);

}  // namespace
}  // namespace aptrace

BENCHMARK_MAIN();
