// Reproduces Figure 4 of the paper: the distribution (box plot) of
// dependency-graph sizes when the execute-to-complete baseline is
// terminated after k = 1..30 minutes. The paper's point: within every
// time-limit column the sizes span orders of magnitude (on average the
// largest point is 15,079x the smallest; the top 10% are 2,857x the
// bottom 10%), so no good global time limit exists.
//
// Implementation note: instead of re-running each case 30 times, each
// case runs once for 30 simulated minutes while we record the graph size
// at every minute boundary.

#include <array>
#include <vector>

#include "bench/bench_common.h"
#include "util/stats.h"

namespace aptrace::bench {
namespace {

constexpr int kMaxMinutes = 30;

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsRun obs_run(args, "bench_fig4");
  auto store = workload::BuildEnterpriseTrace(args.ToConfig());
  PrintHeader(
      "Figure 4: graph size vs. time limit (baseline, box plot per minute)",
      args, store->NumEvents());

  const auto alerts =
      workload::SampleAnomalyEvents(*store, args.num_cases, args.seed);

  // per_case[i][m] = graph size had run i been stopped after m+1 minutes.
  std::vector<std::array<size_t, kMaxMinutes>> per_case(alerts.size());
  ParallelFor(alerts.size(), args.threads, [&](size_t i) {
    std::array<size_t, kMaxMinutes> sizes{};
    size_t latest = 1;  // the alert edge itself
    int next_minute = 1;
    const auto sampler = [&](const UpdateBatch& b, Clock& clock) {
      const TimeMicros elapsed = clock.NowMicros();
      while (next_minute <= kMaxMinutes &&
             elapsed > next_minute * kMicrosPerMinute) {
        sizes[next_minute - 1] = latest;
        next_minute++;
      }
      latest = b.total_edges;
    };
    RunCase(*store, alerts[i], /*use_baseline=*/true, args.windows_k,
            kMaxMinutes * kMicrosPerMinute, sampler);
    // Fill the remaining minutes (run completed early or no more updates).
    for (int m = next_minute; m <= kMaxMinutes; ++m) sizes[m - 1] = latest;
    per_case[i] = sizes;
  });
  std::array<SampleStats, kMaxMinutes> sizes_at;
  for (const auto& sizes : per_case) {
    for (int m = 0; m < kMaxMinutes; ++m) {
      sizes_at[m].Add(static_cast<double>(sizes[m]));
    }
  }

  std::printf("%7s %8s %8s %8s %8s %8s %8s %10s\n", "minute", "min", "q1",
              "median", "q3", "whisk_hi", "max", "#outliers");
  double ratio_sum = 0;
  double decile_ratio_sum = 0;
  int ratio_count = 0;
  for (int m = 0; m < kMaxMinutes; ++m) {
    const auto box = sizes_at[m].Box();
    std::printf("%7d %8.0f %8.0f %8.0f %8.0f %8.0f %8.0f %10zu\n", m + 1,
                box.min, box.q1, box.median, box.q3, box.whisker_hi, box.max,
                box.outliers.size());
    if (box.min > 0) {
      ratio_sum += box.max / box.min;
      const double p10 = sizes_at[m].Percentile(10);
      const double p90 = sizes_at[m].Percentile(90);
      if (p10 > 0) decile_ratio_sum += p90 / p10;
      ratio_count++;
    }
  }
  if (ratio_count > 0) {
    std::printf(
        "\navg largest/smallest per column : %.0fx (paper: 15,079x)\n",
        ratio_sum / ratio_count);
    std::printf(
        "avg top-10%%/bottom-10%% per column: %.0fx (paper: 2,857x)\n",
        decile_ratio_sum / ratio_count);
  }
  std::printf(
      "conclusion: every column spans orders of magnitude -> no usable "
      "global time limit\n");
  obs_run.Finish(*store);
  return 0;
}

}  // namespace
}  // namespace aptrace::bench

int main(int argc, char** argv) { return aptrace::bench::Main(argc, argv); }
