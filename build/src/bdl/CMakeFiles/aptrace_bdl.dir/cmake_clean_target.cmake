file(REMOVE_RECURSE
  "libaptrace_bdl.a"
)
