file(REMOVE_RECURSE
  "CMakeFiles/aptrace_bdl.dir/analyzer.cc.o"
  "CMakeFiles/aptrace_bdl.dir/analyzer.cc.o.d"
  "CMakeFiles/aptrace_bdl.dir/condition.cc.o"
  "CMakeFiles/aptrace_bdl.dir/condition.cc.o.d"
  "CMakeFiles/aptrace_bdl.dir/formatter.cc.o"
  "CMakeFiles/aptrace_bdl.dir/formatter.cc.o.d"
  "CMakeFiles/aptrace_bdl.dir/lexer.cc.o"
  "CMakeFiles/aptrace_bdl.dir/lexer.cc.o.d"
  "CMakeFiles/aptrace_bdl.dir/parser.cc.o"
  "CMakeFiles/aptrace_bdl.dir/parser.cc.o.d"
  "libaptrace_bdl.a"
  "libaptrace_bdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptrace_bdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
