
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdl/analyzer.cc" "src/bdl/CMakeFiles/aptrace_bdl.dir/analyzer.cc.o" "gcc" "src/bdl/CMakeFiles/aptrace_bdl.dir/analyzer.cc.o.d"
  "/root/repo/src/bdl/condition.cc" "src/bdl/CMakeFiles/aptrace_bdl.dir/condition.cc.o" "gcc" "src/bdl/CMakeFiles/aptrace_bdl.dir/condition.cc.o.d"
  "/root/repo/src/bdl/formatter.cc" "src/bdl/CMakeFiles/aptrace_bdl.dir/formatter.cc.o" "gcc" "src/bdl/CMakeFiles/aptrace_bdl.dir/formatter.cc.o.d"
  "/root/repo/src/bdl/lexer.cc" "src/bdl/CMakeFiles/aptrace_bdl.dir/lexer.cc.o" "gcc" "src/bdl/CMakeFiles/aptrace_bdl.dir/lexer.cc.o.d"
  "/root/repo/src/bdl/parser.cc" "src/bdl/CMakeFiles/aptrace_bdl.dir/parser.cc.o" "gcc" "src/bdl/CMakeFiles/aptrace_bdl.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/event/CMakeFiles/aptrace_event.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aptrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
