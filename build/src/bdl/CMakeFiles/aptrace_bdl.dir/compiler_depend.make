# Empty compiler generated dependencies file for aptrace_bdl.
# This may be replaced when dependencies are built.
