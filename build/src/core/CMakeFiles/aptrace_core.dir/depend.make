# Empty dependencies file for aptrace_core.
# This may be replaced when dependencies are built.
