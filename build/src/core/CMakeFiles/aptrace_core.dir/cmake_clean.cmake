file(REMOVE_RECURSE
  "CMakeFiles/aptrace_core.dir/baseline_executor.cc.o"
  "CMakeFiles/aptrace_core.dir/baseline_executor.cc.o.d"
  "CMakeFiles/aptrace_core.dir/checkpoint.cc.o"
  "CMakeFiles/aptrace_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/aptrace_core.dir/context.cc.o"
  "CMakeFiles/aptrace_core.dir/context.cc.o.d"
  "CMakeFiles/aptrace_core.dir/derived_attrs.cc.o"
  "CMakeFiles/aptrace_core.dir/derived_attrs.cc.o.d"
  "CMakeFiles/aptrace_core.dir/engine.cc.o"
  "CMakeFiles/aptrace_core.dir/engine.cc.o.d"
  "CMakeFiles/aptrace_core.dir/exec_window.cc.o"
  "CMakeFiles/aptrace_core.dir/exec_window.cc.o.d"
  "CMakeFiles/aptrace_core.dir/executor.cc.o"
  "CMakeFiles/aptrace_core.dir/executor.cc.o.d"
  "CMakeFiles/aptrace_core.dir/maintainer.cc.o"
  "CMakeFiles/aptrace_core.dir/maintainer.cc.o.d"
  "CMakeFiles/aptrace_core.dir/refiner.cc.o"
  "CMakeFiles/aptrace_core.dir/refiner.cc.o.d"
  "CMakeFiles/aptrace_core.dir/resource_model.cc.o"
  "CMakeFiles/aptrace_core.dir/resource_model.cc.o.d"
  "CMakeFiles/aptrace_core.dir/session.cc.o"
  "CMakeFiles/aptrace_core.dir/session.cc.o.d"
  "libaptrace_core.a"
  "libaptrace_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptrace_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
