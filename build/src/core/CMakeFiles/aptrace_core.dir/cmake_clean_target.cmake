file(REMOVE_RECURSE
  "libaptrace_core.a"
)
