
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_executor.cc" "src/core/CMakeFiles/aptrace_core.dir/baseline_executor.cc.o" "gcc" "src/core/CMakeFiles/aptrace_core.dir/baseline_executor.cc.o.d"
  "/root/repo/src/core/checkpoint.cc" "src/core/CMakeFiles/aptrace_core.dir/checkpoint.cc.o" "gcc" "src/core/CMakeFiles/aptrace_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/core/context.cc" "src/core/CMakeFiles/aptrace_core.dir/context.cc.o" "gcc" "src/core/CMakeFiles/aptrace_core.dir/context.cc.o.d"
  "/root/repo/src/core/derived_attrs.cc" "src/core/CMakeFiles/aptrace_core.dir/derived_attrs.cc.o" "gcc" "src/core/CMakeFiles/aptrace_core.dir/derived_attrs.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/aptrace_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/aptrace_core.dir/engine.cc.o.d"
  "/root/repo/src/core/exec_window.cc" "src/core/CMakeFiles/aptrace_core.dir/exec_window.cc.o" "gcc" "src/core/CMakeFiles/aptrace_core.dir/exec_window.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/core/CMakeFiles/aptrace_core.dir/executor.cc.o" "gcc" "src/core/CMakeFiles/aptrace_core.dir/executor.cc.o.d"
  "/root/repo/src/core/maintainer.cc" "src/core/CMakeFiles/aptrace_core.dir/maintainer.cc.o" "gcc" "src/core/CMakeFiles/aptrace_core.dir/maintainer.cc.o.d"
  "/root/repo/src/core/refiner.cc" "src/core/CMakeFiles/aptrace_core.dir/refiner.cc.o" "gcc" "src/core/CMakeFiles/aptrace_core.dir/refiner.cc.o.d"
  "/root/repo/src/core/resource_model.cc" "src/core/CMakeFiles/aptrace_core.dir/resource_model.cc.o" "gcc" "src/core/CMakeFiles/aptrace_core.dir/resource_model.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/aptrace_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/aptrace_core.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdl/CMakeFiles/aptrace_bdl.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/aptrace_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aptrace_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/aptrace_event.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aptrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
