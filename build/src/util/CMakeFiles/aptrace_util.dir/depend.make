# Empty dependencies file for aptrace_util.
# This may be replaced when dependencies are built.
