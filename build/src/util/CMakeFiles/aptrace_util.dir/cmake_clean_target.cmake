file(REMOVE_RECURSE
  "libaptrace_util.a"
)
