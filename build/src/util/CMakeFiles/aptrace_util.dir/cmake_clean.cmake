file(REMOVE_RECURSE
  "CMakeFiles/aptrace_util.dir/clock.cc.o"
  "CMakeFiles/aptrace_util.dir/clock.cc.o.d"
  "CMakeFiles/aptrace_util.dir/logging.cc.o"
  "CMakeFiles/aptrace_util.dir/logging.cc.o.d"
  "CMakeFiles/aptrace_util.dir/rng.cc.o"
  "CMakeFiles/aptrace_util.dir/rng.cc.o.d"
  "CMakeFiles/aptrace_util.dir/stats.cc.o"
  "CMakeFiles/aptrace_util.dir/stats.cc.o.d"
  "CMakeFiles/aptrace_util.dir/status.cc.o"
  "CMakeFiles/aptrace_util.dir/status.cc.o.d"
  "CMakeFiles/aptrace_util.dir/string_util.cc.o"
  "CMakeFiles/aptrace_util.dir/string_util.cc.o.d"
  "CMakeFiles/aptrace_util.dir/wildcard.cc.o"
  "CMakeFiles/aptrace_util.dir/wildcard.cc.o.d"
  "libaptrace_util.a"
  "libaptrace_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptrace_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
