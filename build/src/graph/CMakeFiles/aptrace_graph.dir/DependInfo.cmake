
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dep_graph.cc" "src/graph/CMakeFiles/aptrace_graph.dir/dep_graph.cc.o" "gcc" "src/graph/CMakeFiles/aptrace_graph.dir/dep_graph.cc.o.d"
  "/root/repo/src/graph/dot_writer.cc" "src/graph/CMakeFiles/aptrace_graph.dir/dot_writer.cc.o" "gcc" "src/graph/CMakeFiles/aptrace_graph.dir/dot_writer.cc.o.d"
  "/root/repo/src/graph/json_writer.cc" "src/graph/CMakeFiles/aptrace_graph.dir/json_writer.cc.o" "gcc" "src/graph/CMakeFiles/aptrace_graph.dir/json_writer.cc.o.d"
  "/root/repo/src/graph/path.cc" "src/graph/CMakeFiles/aptrace_graph.dir/path.cc.o" "gcc" "src/graph/CMakeFiles/aptrace_graph.dir/path.cc.o.d"
  "/root/repo/src/graph/summarize.cc" "src/graph/CMakeFiles/aptrace_graph.dir/summarize.cc.o" "gcc" "src/graph/CMakeFiles/aptrace_graph.dir/summarize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/event/CMakeFiles/aptrace_event.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aptrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
