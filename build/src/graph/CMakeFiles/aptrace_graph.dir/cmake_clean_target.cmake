file(REMOVE_RECURSE
  "libaptrace_graph.a"
)
