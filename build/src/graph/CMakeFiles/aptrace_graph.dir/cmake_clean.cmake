file(REMOVE_RECURSE
  "CMakeFiles/aptrace_graph.dir/dep_graph.cc.o"
  "CMakeFiles/aptrace_graph.dir/dep_graph.cc.o.d"
  "CMakeFiles/aptrace_graph.dir/dot_writer.cc.o"
  "CMakeFiles/aptrace_graph.dir/dot_writer.cc.o.d"
  "CMakeFiles/aptrace_graph.dir/json_writer.cc.o"
  "CMakeFiles/aptrace_graph.dir/json_writer.cc.o.d"
  "CMakeFiles/aptrace_graph.dir/path.cc.o"
  "CMakeFiles/aptrace_graph.dir/path.cc.o.d"
  "CMakeFiles/aptrace_graph.dir/summarize.cc.o"
  "CMakeFiles/aptrace_graph.dir/summarize.cc.o.d"
  "libaptrace_graph.a"
  "libaptrace_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptrace_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
