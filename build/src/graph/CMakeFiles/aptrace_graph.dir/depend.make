# Empty dependencies file for aptrace_graph.
# This may be replaced when dependencies are built.
