file(REMOVE_RECURSE
  "libaptrace_workload.a"
)
