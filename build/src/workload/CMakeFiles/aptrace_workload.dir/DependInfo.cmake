
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/attacks/attack_common.cc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/attack_common.cc.o" "gcc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/attack_common.cc.o.d"
  "/root/repo/src/workload/attacks/cheating_student.cc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/cheating_student.cc.o" "gcc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/cheating_student.cc.o.d"
  "/root/repo/src/workload/attacks/excel_macro.cc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/excel_macro.cc.o" "gcc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/excel_macro.cc.o.d"
  "/root/repo/src/workload/attacks/phishing.cc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/phishing.cc.o" "gcc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/phishing.cc.o.d"
  "/root/repo/src/workload/attacks/registry.cc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/registry.cc.o" "gcc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/registry.cc.o.d"
  "/root/repo/src/workload/attacks/shellshock.cc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/shellshock.cc.o" "gcc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/shellshock.cc.o.d"
  "/root/repo/src/workload/attacks/wget_gcc.cc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/wget_gcc.cc.o" "gcc" "src/workload/CMakeFiles/aptrace_workload.dir/attacks/wget_gcc.cc.o.d"
  "/root/repo/src/workload/enterprise.cc" "src/workload/CMakeFiles/aptrace_workload.dir/enterprise.cc.o" "gcc" "src/workload/CMakeFiles/aptrace_workload.dir/enterprise.cc.o.d"
  "/root/repo/src/workload/noise.cc" "src/workload/CMakeFiles/aptrace_workload.dir/noise.cc.o" "gcc" "src/workload/CMakeFiles/aptrace_workload.dir/noise.cc.o.d"
  "/root/repo/src/workload/trace_builder.cc" "src/workload/CMakeFiles/aptrace_workload.dir/trace_builder.cc.o" "gcc" "src/workload/CMakeFiles/aptrace_workload.dir/trace_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdl/CMakeFiles/aptrace_bdl.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/aptrace_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aptrace_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/aptrace_event.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aptrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
