file(REMOVE_RECURSE
  "CMakeFiles/aptrace_workload.dir/attacks/attack_common.cc.o"
  "CMakeFiles/aptrace_workload.dir/attacks/attack_common.cc.o.d"
  "CMakeFiles/aptrace_workload.dir/attacks/cheating_student.cc.o"
  "CMakeFiles/aptrace_workload.dir/attacks/cheating_student.cc.o.d"
  "CMakeFiles/aptrace_workload.dir/attacks/excel_macro.cc.o"
  "CMakeFiles/aptrace_workload.dir/attacks/excel_macro.cc.o.d"
  "CMakeFiles/aptrace_workload.dir/attacks/phishing.cc.o"
  "CMakeFiles/aptrace_workload.dir/attacks/phishing.cc.o.d"
  "CMakeFiles/aptrace_workload.dir/attacks/registry.cc.o"
  "CMakeFiles/aptrace_workload.dir/attacks/registry.cc.o.d"
  "CMakeFiles/aptrace_workload.dir/attacks/shellshock.cc.o"
  "CMakeFiles/aptrace_workload.dir/attacks/shellshock.cc.o.d"
  "CMakeFiles/aptrace_workload.dir/attacks/wget_gcc.cc.o"
  "CMakeFiles/aptrace_workload.dir/attacks/wget_gcc.cc.o.d"
  "CMakeFiles/aptrace_workload.dir/enterprise.cc.o"
  "CMakeFiles/aptrace_workload.dir/enterprise.cc.o.d"
  "CMakeFiles/aptrace_workload.dir/noise.cc.o"
  "CMakeFiles/aptrace_workload.dir/noise.cc.o.d"
  "CMakeFiles/aptrace_workload.dir/trace_builder.cc.o"
  "CMakeFiles/aptrace_workload.dir/trace_builder.cc.o.d"
  "libaptrace_workload.a"
  "libaptrace_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptrace_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
