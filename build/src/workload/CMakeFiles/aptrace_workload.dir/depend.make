# Empty dependencies file for aptrace_workload.
# This may be replaced when dependencies are built.
