file(REMOVE_RECURSE
  "libaptrace_detect.a"
)
