file(REMOVE_RECURSE
  "CMakeFiles/aptrace_detect.dir/detector.cc.o"
  "CMakeFiles/aptrace_detect.dir/detector.cc.o.d"
  "libaptrace_detect.a"
  "libaptrace_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptrace_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
