# Empty dependencies file for aptrace_detect.
# This may be replaced when dependencies are built.
