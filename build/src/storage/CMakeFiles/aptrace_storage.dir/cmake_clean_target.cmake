file(REMOVE_RECURSE
  "libaptrace_storage.a"
)
