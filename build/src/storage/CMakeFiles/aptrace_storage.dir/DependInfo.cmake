
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/event_store.cc" "src/storage/CMakeFiles/aptrace_storage.dir/event_store.cc.o" "gcc" "src/storage/CMakeFiles/aptrace_storage.dir/event_store.cc.o.d"
  "/root/repo/src/storage/trace_io.cc" "src/storage/CMakeFiles/aptrace_storage.dir/trace_io.cc.o" "gcc" "src/storage/CMakeFiles/aptrace_storage.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/event/CMakeFiles/aptrace_event.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aptrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
