# Empty compiler generated dependencies file for aptrace_storage.
# This may be replaced when dependencies are built.
