file(REMOVE_RECURSE
  "CMakeFiles/aptrace_storage.dir/event_store.cc.o"
  "CMakeFiles/aptrace_storage.dir/event_store.cc.o.d"
  "CMakeFiles/aptrace_storage.dir/trace_io.cc.o"
  "CMakeFiles/aptrace_storage.dir/trace_io.cc.o.d"
  "libaptrace_storage.a"
  "libaptrace_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptrace_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
