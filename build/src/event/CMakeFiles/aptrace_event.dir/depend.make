# Empty dependencies file for aptrace_event.
# This may be replaced when dependencies are built.
