file(REMOVE_RECURSE
  "libaptrace_event.a"
)
