file(REMOVE_RECURSE
  "CMakeFiles/aptrace_event.dir/catalog.cc.o"
  "CMakeFiles/aptrace_event.dir/catalog.cc.o.d"
  "CMakeFiles/aptrace_event.dir/event.cc.o"
  "CMakeFiles/aptrace_event.dir/event.cc.o.d"
  "CMakeFiles/aptrace_event.dir/object.cc.o"
  "CMakeFiles/aptrace_event.dir/object.cc.o.d"
  "CMakeFiles/aptrace_event.dir/schema.cc.o"
  "CMakeFiles/aptrace_event.dir/schema.cc.o.d"
  "libaptrace_event.a"
  "libaptrace_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptrace_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
