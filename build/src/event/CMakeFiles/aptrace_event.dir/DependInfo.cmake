
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/event/catalog.cc" "src/event/CMakeFiles/aptrace_event.dir/catalog.cc.o" "gcc" "src/event/CMakeFiles/aptrace_event.dir/catalog.cc.o.d"
  "/root/repo/src/event/event.cc" "src/event/CMakeFiles/aptrace_event.dir/event.cc.o" "gcc" "src/event/CMakeFiles/aptrace_event.dir/event.cc.o.d"
  "/root/repo/src/event/object.cc" "src/event/CMakeFiles/aptrace_event.dir/object.cc.o" "gcc" "src/event/CMakeFiles/aptrace_event.dir/object.cc.o.d"
  "/root/repo/src/event/schema.cc" "src/event/CMakeFiles/aptrace_event.dir/schema.cc.o" "gcc" "src/event/CMakeFiles/aptrace_event.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aptrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
