# Empty dependencies file for bdl_formatter_test.
# This may be replaced when dependencies are built.
