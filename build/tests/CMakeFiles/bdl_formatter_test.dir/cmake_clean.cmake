file(REMOVE_RECURSE
  "CMakeFiles/bdl_formatter_test.dir/bdl_formatter_test.cc.o"
  "CMakeFiles/bdl_formatter_test.dir/bdl_formatter_test.cc.o.d"
  "bdl_formatter_test"
  "bdl_formatter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdl_formatter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
