
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/executor_test.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/executor_test.dir/executor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tools/CMakeFiles/aptrace_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/aptrace_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aptrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/aptrace_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aptrace_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/aptrace_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/bdl/CMakeFiles/aptrace_bdl.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/aptrace_event.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aptrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
