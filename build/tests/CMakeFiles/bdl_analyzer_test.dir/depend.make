# Empty dependencies file for bdl_analyzer_test.
# This may be replaced when dependencies are built.
