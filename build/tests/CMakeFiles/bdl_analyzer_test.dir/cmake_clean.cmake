file(REMOVE_RECURSE
  "CMakeFiles/bdl_analyzer_test.dir/bdl_analyzer_test.cc.o"
  "CMakeFiles/bdl_analyzer_test.dir/bdl_analyzer_test.cc.o.d"
  "bdl_analyzer_test"
  "bdl_analyzer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdl_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
