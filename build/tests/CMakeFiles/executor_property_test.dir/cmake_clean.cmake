file(REMOVE_RECURSE
  "CMakeFiles/executor_property_test.dir/executor_property_test.cc.o"
  "CMakeFiles/executor_property_test.dir/executor_property_test.cc.o.d"
  "executor_property_test"
  "executor_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
