# Empty dependencies file for executor_property_test.
# This may be replaced when dependencies are built.
