# Empty compiler generated dependencies file for bdl_robustness_test.
# This may be replaced when dependencies are built.
