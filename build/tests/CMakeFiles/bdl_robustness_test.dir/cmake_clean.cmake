file(REMOVE_RECURSE
  "CMakeFiles/bdl_robustness_test.dir/bdl_robustness_test.cc.o"
  "CMakeFiles/bdl_robustness_test.dir/bdl_robustness_test.cc.o.d"
  "bdl_robustness_test"
  "bdl_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdl_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
