file(REMOVE_RECURSE
  "CMakeFiles/streaming_test.dir/streaming_test.cc.o"
  "CMakeFiles/streaming_test.dir/streaming_test.cc.o.d"
  "streaming_test"
  "streaming_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
