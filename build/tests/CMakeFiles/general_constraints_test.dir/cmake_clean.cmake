file(REMOVE_RECURSE
  "CMakeFiles/general_constraints_test.dir/general_constraints_test.cc.o"
  "CMakeFiles/general_constraints_test.dir/general_constraints_test.cc.o.d"
  "general_constraints_test"
  "general_constraints_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_constraints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
