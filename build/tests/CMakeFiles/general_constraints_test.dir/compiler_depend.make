# Empty compiler generated dependencies file for general_constraints_test.
# This may be replaced when dependencies are built.
