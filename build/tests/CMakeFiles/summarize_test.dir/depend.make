# Empty dependencies file for summarize_test.
# This may be replaced when dependencies are built.
