file(REMOVE_RECURSE
  "CMakeFiles/summarize_test.dir/summarize_test.cc.o"
  "CMakeFiles/summarize_test.dir/summarize_test.cc.o.d"
  "summarize_test"
  "summarize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summarize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
