# Empty dependencies file for maintainer_test.
# This may be replaced when dependencies are built.
