file(REMOVE_RECURSE
  "CMakeFiles/maintainer_test.dir/maintainer_test.cc.o"
  "CMakeFiles/maintainer_test.dir/maintainer_test.cc.o.d"
  "maintainer_test"
  "maintainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
