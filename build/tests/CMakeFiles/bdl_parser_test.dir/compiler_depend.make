# Empty compiler generated dependencies file for bdl_parser_test.
# This may be replaced when dependencies are built.
