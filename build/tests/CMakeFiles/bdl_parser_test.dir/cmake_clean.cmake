file(REMOVE_RECURSE
  "CMakeFiles/bdl_parser_test.dir/bdl_parser_test.cc.o"
  "CMakeFiles/bdl_parser_test.dir/bdl_parser_test.cc.o.d"
  "bdl_parser_test"
  "bdl_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
