# Empty compiler generated dependencies file for json_writer_test.
# This may be replaced when dependencies are built.
