# Empty dependencies file for refiner_test.
# This may be replaced when dependencies are built.
