file(REMOVE_RECURSE
  "CMakeFiles/refiner_test.dir/refiner_test.cc.o"
  "CMakeFiles/refiner_test.dir/refiner_test.cc.o.d"
  "refiner_test"
  "refiner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
