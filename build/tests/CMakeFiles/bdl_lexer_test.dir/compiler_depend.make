# Empty compiler generated dependencies file for bdl_lexer_test.
# This may be replaced when dependencies are built.
