file(REMOVE_RECURSE
  "CMakeFiles/bdl_lexer_test.dir/bdl_lexer_test.cc.o"
  "CMakeFiles/bdl_lexer_test.dir/bdl_lexer_test.cc.o.d"
  "bdl_lexer_test"
  "bdl_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdl_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
