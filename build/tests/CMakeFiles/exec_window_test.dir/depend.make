# Empty dependencies file for exec_window_test.
# This may be replaced when dependencies are built.
