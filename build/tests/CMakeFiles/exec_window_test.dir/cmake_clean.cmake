file(REMOVE_RECURSE
  "CMakeFiles/exec_window_test.dir/exec_window_test.cc.o"
  "CMakeFiles/exec_window_test.dir/exec_window_test.cc.o.d"
  "exec_window_test"
  "exec_window_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
