# Empty dependencies file for forward_test.
# This may be replaced when dependencies are built.
