file(REMOVE_RECURSE
  "CMakeFiles/forward_test.dir/forward_test.cc.o"
  "CMakeFiles/forward_test.dir/forward_test.cc.o.d"
  "forward_test"
  "forward_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
