file(REMOVE_RECURSE
  "CMakeFiles/derived_attrs_test.dir/derived_attrs_test.cc.o"
  "CMakeFiles/derived_attrs_test.dir/derived_attrs_test.cc.o.d"
  "derived_attrs_test"
  "derived_attrs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derived_attrs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
