# Empty dependencies file for derived_attrs_test.
# This may be replaced when dependencies are built.
