# Empty dependencies file for aptrace_cli.
# This may be replaced when dependencies are built.
