file(REMOVE_RECURSE
  "CMakeFiles/aptrace_cli.dir/aptrace_cli.cc.o"
  "CMakeFiles/aptrace_cli.dir/aptrace_cli.cc.o.d"
  "aptrace"
  "aptrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptrace_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
