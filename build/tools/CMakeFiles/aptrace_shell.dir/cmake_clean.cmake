file(REMOVE_RECURSE
  "CMakeFiles/aptrace_shell.dir/aptrace_shell.cc.o"
  "CMakeFiles/aptrace_shell.dir/aptrace_shell.cc.o.d"
  "libaptrace_shell.a"
  "libaptrace_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptrace_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
