file(REMOVE_RECURSE
  "libaptrace_shell.a"
)
