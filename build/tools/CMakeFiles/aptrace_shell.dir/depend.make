# Empty dependencies file for aptrace_shell.
# This may be replaced when dependencies are built.
