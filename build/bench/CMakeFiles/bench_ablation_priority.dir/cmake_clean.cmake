file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_priority.dir/bench_ablation_priority.cc.o"
  "CMakeFiles/bench_ablation_priority.dir/bench_ablation_priority.cc.o.d"
  "bench_ablation_priority"
  "bench_ablation_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
