# Empty compiler generated dependencies file for bench_ablation_priority.
# This may be replaced when dependencies are built.
