# Empty compiler generated dependencies file for bench_ablation_dedup.
# This may be replaced when dependencies are built.
