file(REMOVE_RECURSE
  "CMakeFiles/bench_explosion.dir/bench_explosion.cc.o"
  "CMakeFiles/bench_explosion.dir/bench_explosion.cc.o.d"
  "bench_explosion"
  "bench_explosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_explosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
