# Empty dependencies file for bench_explosion.
# This may be replaced when dependencies are built.
