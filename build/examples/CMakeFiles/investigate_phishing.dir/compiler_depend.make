# Empty compiler generated dependencies file for investigate_phishing.
# This may be replaced when dependencies are built.
