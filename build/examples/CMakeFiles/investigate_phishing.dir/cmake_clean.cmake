file(REMOVE_RECURSE
  "CMakeFiles/investigate_phishing.dir/investigate_phishing.cpp.o"
  "CMakeFiles/investigate_phishing.dir/investigate_phishing.cpp.o.d"
  "investigate_phishing"
  "investigate_phishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/investigate_phishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
