file(REMOVE_RECURSE
  "CMakeFiles/impact_analysis.dir/impact_analysis.cpp.o"
  "CMakeFiles/impact_analysis.dir/impact_analysis.cpp.o.d"
  "impact_analysis"
  "impact_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impact_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
