file(REMOVE_RECURSE
  "CMakeFiles/investigate_excel_macro.dir/investigate_excel_macro.cpp.o"
  "CMakeFiles/investigate_excel_macro.dir/investigate_excel_macro.cpp.o.d"
  "investigate_excel_macro"
  "investigate_excel_macro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/investigate_excel_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
