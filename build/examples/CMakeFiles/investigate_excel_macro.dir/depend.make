# Empty dependencies file for investigate_excel_macro.
# This may be replaced when dependencies are built.
