file(REMOVE_RECURSE
  "CMakeFiles/responsive_monitoring.dir/responsive_monitoring.cpp.o"
  "CMakeFiles/responsive_monitoring.dir/responsive_monitoring.cpp.o.d"
  "responsive_monitoring"
  "responsive_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/responsive_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
