# Empty compiler generated dependencies file for responsive_monitoring.
# This may be replaced when dependencies are built.
